//! Incremental builders used when a column's bitmaps are produced by a single
//! sequential pass over rows (the CODS mergence algorithms and column loads).

use crate::wah::Wah;

/// Builds a bitmap by being told only where the ones are, in ascending order.
/// Zero gaps are appended as runs, so the construction cost is proportional
/// to the number of ones plus the number of compressed words — never to the
/// number of rows.
///
/// ```
/// use cods_bitmap::OneStreamBuilder;
/// let mut b = OneStreamBuilder::new();
/// b.push_one(10);
/// b.push_one(1_000_000);
/// let bitmap = b.finish(2_000_000);
/// assert_eq!(bitmap.count_ones(), 2);
/// assert!(bitmap.get(1_000_000));
/// ```
#[derive(Clone, Debug, Default)]
pub struct OneStreamBuilder {
    wah: Wah,
    next_row: u64,
}

impl OneStreamBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a set bit at `row`. Rows must be pushed in strictly ascending
    /// order.
    ///
    /// # Panics
    /// Panics if `row` is not beyond every previously pushed row.
    #[inline]
    pub fn push_one(&mut self, row: u64) {
        assert!(
            row >= self.next_row,
            "rows must be strictly ascending: got {row} after {}",
            self.next_row
        );
        self.wah.append_run(false, row - self.next_row);
        self.wah.push(true);
        self.next_row = row + 1;
    }

    /// Records `count` consecutive set bits starting at `row`.
    #[inline]
    pub fn push_run(&mut self, row: u64, count: u64) {
        assert!(row >= self.next_row, "rows must be strictly ascending");
        self.wah.append_run(false, row - self.next_row);
        self.wah.append_run(true, count);
        self.next_row = row + count;
    }

    /// Number of ones recorded so far.
    pub fn ones(&self) -> u64 {
        self.wah.count_ones()
    }

    /// Highest row index that may still be pushed plus zero (i.e. the next
    /// admissible row).
    pub fn next_row(&self) -> u64 {
        self.next_row
    }

    /// Pads with zeros up to total length `len` and returns the bitmap.
    ///
    /// # Panics
    /// Panics if `len` is smaller than the last pushed row + 1.
    pub fn finish(mut self, len: u64) -> Wah {
        assert!(
            len >= self.next_row,
            "finish length {len} shorter than pushed rows ({})",
            self.next_row
        );
        self.wah.append_run(false, len - self.next_row);
        self.wah
    }
}

/// Builds one bitmap per value id from a stream of `(row, value_id)` pairs in
/// ascending row order — the single-pass construction used whenever CODS
/// materializes a changed column. Rows not mentioned are zero in every
/// bitmap (useful for nullable columns).
#[derive(Clone, Debug)]
pub struct ValueStreamBuilder {
    builders: Vec<OneStreamBuilder>,
    rows_seen: u64,
}

impl ValueStreamBuilder {
    /// Creates a builder for `num_values` distinct value ids.
    pub fn new(num_values: usize) -> Self {
        ValueStreamBuilder {
            builders: vec![OneStreamBuilder::new(); num_values],
            rows_seen: 0,
        }
    }

    /// Number of value slots.
    pub fn num_values(&self) -> usize {
        self.builders.len()
    }

    /// Appends the next row carrying value `value_id`. Rows are implicit and
    /// sequential: the first call is row 0, the second row 1, and so on.
    ///
    /// # Panics
    /// Panics if `value_id` is out of range.
    #[inline]
    pub fn push_row(&mut self, value_id: usize) {
        self.builders[value_id].push_one(self.rows_seen);
        self.rows_seen += 1;
    }

    /// Appends `count` consecutive rows all carrying `value_id`.
    #[inline]
    pub fn push_rows(&mut self, value_id: usize, count: u64) {
        self.builders[value_id].push_run(self.rows_seen, count);
        self.rows_seen += count;
    }

    /// Appends a row carrying *no* value (null slot in every bitmap).
    #[inline]
    pub fn push_empty_row(&mut self) {
        self.rows_seen += 1;
    }

    /// Rows appended so far.
    pub fn rows(&self) -> u64 {
        self.rows_seen
    }

    /// Finishes all bitmaps at the current row count.
    pub fn finish(self) -> Vec<Wah> {
        let rows = self.rows_seen;
        self.builders.into_iter().map(|b| b.finish(rows)).collect()
    }

    /// Finishes all bitmaps padded to `len` rows.
    pub fn finish_with_len(self, len: u64) -> Vec<Wah> {
        assert!(len >= self.rows_seen);
        self.builders.into_iter().map(|b| b.finish(len)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_stream_matches_from_positions() {
        let pos = vec![0u64, 63, 64, 1000, 99_999];
        let mut b = OneStreamBuilder::new();
        for &p in &pos {
            b.push_one(p);
        }
        assert_eq!(b.ones(), pos.len() as u64);
        let w = b.finish(100_000);
        assert_eq!(w, Wah::from_sorted_positions(pos.into_iter(), 100_000));
    }

    #[test]
    fn one_stream_push_run() {
        let mut b = OneStreamBuilder::new();
        b.push_run(10, 5);
        b.push_run(100, 63);
        let w = b.finish(200);
        assert_eq!(w.count_ones(), 68);
        assert_eq!(
            w,
            Wah::ones_run(10, 5, 200).or(&Wah::ones_run(100, 63, 200))
        );
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn one_stream_rejects_regression() {
        let mut b = OneStreamBuilder::new();
        b.push_one(5);
        b.push_one(5);
    }

    #[test]
    #[should_panic(expected = "shorter than pushed rows")]
    fn one_stream_rejects_short_finish() {
        let mut b = OneStreamBuilder::new();
        b.push_one(10);
        let _ = b.finish(5);
    }

    #[test]
    fn value_stream_partitions_rows() {
        let ids = [0usize, 1, 0, 2, 1, 1, 0];
        let mut b = ValueStreamBuilder::new(3);
        for &id in &ids {
            b.push_row(id);
        }
        let maps = b.finish();
        assert_eq!(maps.len(), 3);
        for (row, &id) in ids.iter().enumerate() {
            for (v, m) in maps.iter().enumerate() {
                assert_eq!(m.get(row as u64), v == id, "row {row} value {v}");
            }
        }
        // Exactly one bitmap is set per row (partition invariant).
        let total: u64 = maps.iter().map(|m| m.count_ones()).sum();
        assert_eq!(total, ids.len() as u64);
    }

    #[test]
    fn value_stream_with_nulls_and_runs() {
        let mut b = ValueStreamBuilder::new(2);
        b.push_rows(0, 100);
        b.push_empty_row();
        b.push_rows(1, 50);
        let maps = b.finish_with_len(200);
        assert_eq!(maps[0].len(), 200);
        assert_eq!(maps[0].count_ones(), 100);
        assert_eq!(maps[1].count_ones(), 50);
        assert!(!maps[0].get(100));
        assert!(!maps[1].get(100));
        assert!(maps[1].get(101));
    }
}
