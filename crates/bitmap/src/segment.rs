//! Segment-bounded helpers: splitting a bitmap into fixed-size row-range
//! chunks and reassembling chunks into one bitmap. These are the kernel
//! primitives under the column store's segmented layout — `split_into` is a
//! single pass over the compressed runs (fills are cut arithmetically, so a
//! terabit fill splits in O(segments), not O(bits)), and `concat_many`
//! splices compressed words without decompressing.

use crate::iter::Run;
use crate::wah::{lsb_mask, Wah};

impl Wah {
    /// Splits the bitmap into consecutive chunks of `chunk_len` bits (the
    /// last chunk may be shorter). One pass over the compressed form.
    ///
    /// # Panics
    /// Panics if `chunk_len == 0`.
    pub fn split_into(&self, chunk_len: u64) -> Vec<Wah> {
        assert!(chunk_len > 0, "chunk length must be positive");
        if self.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.len().div_ceil(chunk_len) as usize);
        let mut cur = Wah::new();
        let mut room = chunk_len;
        for run in self.iter_runs() {
            let mut run = run;
            loop {
                let len = run.len();
                if len <= room {
                    append_run_piece(&mut cur, &run);
                    room -= len;
                    if room == 0 {
                        out.push(std::mem::take(&mut cur));
                        room = chunk_len;
                    }
                    break;
                }
                // Cut the run at the chunk boundary.
                let (head, tail) = split_run(&run, room);
                append_run_piece(&mut cur, &head);
                out.push(std::mem::take(&mut cur));
                room = chunk_len;
                run = tail;
            }
        }
        if !cur.is_empty() {
            out.push(cur);
        }
        out
    }

    /// Splits the bitmap into consecutive chunks of the given sizes, which
    /// must sum to the bitmap's length. One pass over the compressed form;
    /// used to split a selection mask along a column's (possibly irregular)
    /// segment boundaries.
    ///
    /// # Panics
    /// Panics if any size is zero or the sizes do not sum to `len()`.
    pub fn split_sizes(&self, sizes: &[u64]) -> Vec<Wah> {
        assert_eq!(
            sizes.iter().sum::<u64>(),
            self.len(),
            "chunk sizes must cover the bitmap exactly"
        );
        let mut out = Vec::with_capacity(sizes.len());
        let mut sizes = sizes.iter().copied();
        let mut cur = Wah::new();
        let mut room = match sizes.next() {
            Some(first) => first,
            None => return out,
        };
        assert!(room > 0, "zero-size chunk");
        for run in self.iter_runs() {
            let mut run = run;
            loop {
                let len = run.len();
                if len <= room {
                    append_run_piece(&mut cur, &run);
                    room -= len;
                    if room == 0 {
                        out.push(std::mem::take(&mut cur));
                        match sizes.next() {
                            Some(next) => {
                                assert!(next > 0, "zero-size chunk");
                                room = next;
                            }
                            None => room = u64::MAX, // covered exactly; loop ends
                        }
                    }
                    break;
                }
                let (head, tail) = split_run(&run, room);
                append_run_piece(&mut cur, &head);
                out.push(std::mem::take(&mut cur));
                let next = sizes.next().expect("sizes exhausted before bitmap");
                assert!(next > 0, "zero-size chunk");
                room = next;
                run = tail;
            }
        }
        out
    }

    /// Concatenates `parts` in order into one bitmap.
    pub fn concat_many<'a, I: IntoIterator<Item = &'a Wah>>(parts: I) -> Wah {
        let mut out = Wah::new();
        for p in parts {
            out.append_bitmap(p);
        }
        out
    }
}

fn append_run_piece(dst: &mut Wah, run: &Run) {
    match *run {
        Run::Fill { bit, len } => dst.append_run(bit, len),
        Run::Literal { word, len } => dst.push_bits(word, len),
    }
}

/// Splits `run` after `at` positions (`0 < at < run.len()`).
fn split_run(run: &Run, at: u64) -> (Run, Run) {
    match *run {
        Run::Fill { bit, len } => (Run::Fill { bit, len: at }, Run::Fill { bit, len: len - at }),
        Run::Literal { word, len } => (
            Run::Literal {
                word: word & lsb_mask(at),
                len: at,
            },
            Run::Literal {
                word: word >> at,
                len: len - at,
            },
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Wah {
        let mut w = Wah::new();
        w.append_run(false, 100);
        w.append_run(true, 200);
        for i in 0..500 {
            w.push(i % 3 == 0);
        }
        w.append_run(false, 1_000_000);
        w.push(true);
        w
    }

    #[test]
    fn split_concat_round_trip() {
        let w = sample();
        for chunk in [1u64, 7, 63, 64, 65_536, 1 << 40] {
            let parts = w.split_into(chunk);
            for (i, p) in parts.iter().enumerate() {
                p.check_invariants().unwrap();
                let expect = if i + 1 < parts.len() {
                    chunk
                } else {
                    w.len() - chunk * (parts.len() as u64 - 1)
                };
                assert_eq!(p.len(), expect, "chunk {chunk}, part {i}");
            }
            let back = Wah::concat_many(&parts);
            assert_eq!(back, w, "chunk {chunk}");
        }
    }

    #[test]
    fn split_preserves_bits() {
        let w = sample();
        let chunk = 97u64;
        let parts = w.split_into(chunk);
        for pos in [0u64, 99, 100, 299, 300, 302, 799, 800, 1_000_800] {
            let part = &parts[(pos / chunk) as usize];
            assert_eq!(part.get(pos % chunk), w.get(pos), "pos {pos}");
        }
    }

    #[test]
    fn split_counts_partition_ones() {
        let w = sample();
        let parts = w.split_into(1000);
        let total: u64 = parts.iter().map(Wah::count_ones).sum();
        assert_eq!(total, w.count_ones());
    }

    #[test]
    fn giant_fill_splits_cheaply() {
        let w = Wah::zeros(1 << 40);
        let parts = w.split_into(1 << 36);
        assert_eq!(parts.len(), 16);
        assert!(parts.iter().all(|p| p.size_bytes() < 64));
    }

    #[test]
    fn split_sizes_irregular_round_trip() {
        let w = sample();
        let n = w.len();
        let sizes = [1u64, 62, 64, 1000, n - 1127];
        let parts = w.split_sizes(&sizes);
        assert_eq!(parts.len(), sizes.len());
        for (p, &s) in parts.iter().zip(&sizes) {
            p.check_invariants().unwrap();
            assert_eq!(p.len(), s);
        }
        assert_eq!(Wah::concat_many(&parts), w);
    }

    #[test]
    #[should_panic(expected = "cover the bitmap exactly")]
    fn split_sizes_rejects_bad_total() {
        Wah::ones(10).split_sizes(&[4, 4]);
    }

    #[test]
    fn empty_and_exact() {
        assert!(Wah::new().split_into(10).is_empty());
        let w = Wah::ones(128);
        let parts = w.split_into(64);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0], Wah::ones(64));
        assert_eq!(parts[1], Wah::ones(64));
    }
}
