//! The [`Wah`] compressed bitmap type.
//!
//! `Wah` stores a bit vector as canonical WAH words (see [`crate::word`]) plus
//! an *active* partial group for the trailing `len % 63` bits. The canonical
//! form guarantees:
//!
//! * no literal word in `words` is all-zero or all-one (those are fills),
//! * no two adjacent fill words share the same fill value,
//! * `active` only carries bits below `active_bits`, and `active_bits < 63`.
//!
//! Because the form is canonical, two `Wah` values are equal as bit vectors
//! iff they are structurally equal, so `PartialEq`/`Hash` can be derived.

use crate::word::*;

/// A WAH-compressed bitmap (64-bit words, 63-bit groups).
///
/// All mutating operations keep the representation canonical and maintain a
/// cached population count, so [`Wah::count_ones`] is O(1).
///
/// ```
/// use cods_bitmap::Wah;
/// let mut b = Wah::new();
/// b.append_run(false, 1_000_000);
/// b.push(true);
/// b.append_run(true, 500);
/// assert_eq!(b.len(), 1_000_501);
/// assert_eq!(b.count_ones(), 501);
/// assert!(b.get(1_000_000));
/// assert!(!b.get(999_999));
/// // Compressed size is tiny compared to the million-bit logical size.
/// assert!(b.size_bytes() < 64);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Wah {
    /// Canonical compressed words covering complete 63-bit groups.
    pub(crate) words: Vec<u64>,
    /// Trailing partial group (LSB-first), bits `>= active_bits` are zero.
    pub(crate) active: u64,
    /// Number of valid bits in `active` (`0..63`).
    pub(crate) active_bits: u32,
    /// Total logical length in bits.
    pub(crate) len: u64,
    /// Cached number of set bits.
    pub(crate) ones: u64,
}

impl Wah {
    /// Creates an empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a bitmap of `len` zero bits.
    pub fn zeros(len: u64) -> Self {
        let mut w = Self::new();
        w.append_run(false, len);
        w
    }

    /// Creates a bitmap of `len` one bits.
    pub fn ones(len: u64) -> Self {
        let mut w = Self::new();
        w.append_run(true, len);
        w
    }

    /// Logical length in bits.
    #[inline]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Returns `true` if the bitmap has no bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of set bits (O(1), cached).
    #[inline]
    pub fn count_ones(&self) -> u64 {
        self.ones
    }

    /// Number of clear bits.
    #[inline]
    pub fn count_zeros(&self) -> u64 {
        self.len - self.ones
    }

    /// Returns `true` if at least one bit is set.
    #[inline]
    pub fn any(&self) -> bool {
        self.ones > 0
    }

    /// The compressed words (without the active tail). Exposed for size
    /// accounting and serialization.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Approximate heap size of the compressed representation in bytes.
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 8 + 24
    }

    /// Number of physical 64-bit words used (including the active tail word
    /// when non-empty).
    pub fn physical_words(&self) -> usize {
        self.words.len() + usize::from(self.active_bits > 0)
    }

    // ------------------------------------------------------------------
    // Canonical append primitives
    // ------------------------------------------------------------------

    /// Appends `groups` complete fill groups of value `bit`, merging with a
    /// trailing fill of the same value. Must only be called when the active
    /// tail is empty.
    pub(crate) fn push_fill(&mut self, bit: bool, mut groups: u64) {
        debug_assert_eq!(self.active_bits, 0);
        if groups == 0 {
            return;
        }
        self.len += groups * GROUP_BITS;
        self.ones += groups * fill_ones_per_group(bit);
        if let Some(last) = self.words.last_mut() {
            if is_fill(*last) && fill_bit(*last) == bit {
                let have = fill_groups(*last);
                let take = groups.min(MAX_FILL_GROUPS - have);
                *last = make_fill(bit, have + take);
                groups -= take;
            }
        }
        while groups > 0 {
            let take = groups.min(MAX_FILL_GROUPS);
            self.words.push(make_fill(bit, take));
            groups -= take;
        }
    }

    /// Appends one complete 63-bit group (canonicalizing all-zero/all-one
    /// groups into fills). Must only be called when the active tail is empty.
    pub(crate) fn push_group(&mut self, group: u64) {
        debug_assert_eq!(self.active_bits, 0);
        debug_assert_eq!(group & !LIT_MASK, 0);
        if group == 0 {
            self.push_fill(false, 1);
        } else if group == ALL_ONES_LITERAL {
            self.push_fill(true, 1);
        } else {
            self.words.push(group);
            self.len += GROUP_BITS;
            self.ones += u64::from(group.count_ones());
        }
    }

    /// Appends a single bit.
    #[inline]
    pub fn push(&mut self, bit: bool) {
        if bit {
            self.active |= 1 << self.active_bits;
        }
        self.active_bits += 1;
        self.len += 1;
        self.ones += u64::from(bit);
        if self.active_bits as u64 == GROUP_BITS {
            self.flush_active_group();
        }
    }

    /// Flushes a *complete* active group into `words`.
    fn flush_active_group(&mut self) {
        debug_assert_eq!(self.active_bits as u64, GROUP_BITS);
        let g = self.active;
        self.active = 0;
        self.active_bits = 0;
        // push_group updates len/ones again, so compensate first.
        self.len -= GROUP_BITS;
        self.ones -= u64::from(g.count_ones());
        self.push_group(g);
    }

    /// Appends `count` copies of `bit`.
    pub fn append_run(&mut self, bit: bool, mut count: u64) {
        if count == 0 {
            return;
        }
        // Top up the active partial group first.
        if self.active_bits > 0 {
            let room = GROUP_BITS - self.active_bits as u64;
            let take = count.min(room);
            if bit {
                // `take` ones starting at active_bits.
                let mask = if take == 64 {
                    u64::MAX
                } else {
                    ((1u64 << take) - 1) << self.active_bits
                };
                self.active |= mask;
                self.ones += take;
            }
            self.active_bits += take as u32;
            self.len += take;
            count -= take;
            if self.active_bits as u64 == GROUP_BITS {
                self.flush_active_group();
            }
            if count == 0 {
                return;
            }
        }
        // Whole groups as a fill.
        let groups = count / GROUP_BITS;
        self.push_fill(bit, groups);
        count -= groups * GROUP_BITS;
        // Remainder into the active tail.
        if count > 0 {
            debug_assert_eq!(self.active_bits, 0);
            if bit {
                self.active = (1u64 << count) - 1;
                self.ones += count;
            }
            self.active_bits = count as u32;
            self.len += count;
        }
    }

    /// Appends one literal group that is not aligned to a group boundary of
    /// `self` (the active tail may be non-empty). `nbits` is the number of
    /// valid bits in `group` and must be `<= 63`.
    pub(crate) fn push_bits(&mut self, group: u64, nbits: u64) {
        debug_assert!(nbits <= GROUP_BITS);
        debug_assert_eq!(group & !lsb_mask(nbits), 0);
        if nbits == 0 {
            return;
        }
        let a = self.active_bits as u64;
        if a == 0 {
            if nbits == GROUP_BITS {
                self.push_group(group);
            } else {
                self.active = group;
                self.active_bits = nbits as u32;
                self.len += nbits;
                self.ones += u64::from(group.count_ones());
            }
            return;
        }
        let room = GROUP_BITS - a;
        if nbits < room {
            self.active |= group << a;
            self.active_bits += nbits as u32;
            self.len += nbits;
            self.ones += u64::from(group.count_ones());
        } else {
            // Complete the current group, then start a new tail.
            let low = group & lsb_mask(room);
            let complete = self.active | (low << a);
            let rest = group >> room;
            let rest_bits = nbits - room;
            self.active = 0;
            self.active_bits = 0;
            self.push_group(complete);
            // push_group accounted len/ones for the whole 63-bit group, but
            // `a` of those bits were already accounted when first pushed.
            self.len -= a;
            self.ones -= u64::from((complete & lsb_mask(a)).count_ones());
            if rest_bits > 0 {
                self.active = rest;
                self.active_bits = rest_bits as u32;
                self.len += rest_bits;
                self.ones += u64::from(rest.count_ones());
            }
        }
    }

    /// Appends all bits of `other` to `self` (concatenation).
    ///
    /// When `self` ends on a group boundary this is a near-O(words) splice;
    /// otherwise every group of `other` is re-aligned with two shifts.
    pub fn append_bitmap(&mut self, other: &Wah) {
        if self.active_bits == 0 {
            for &w in &other.words {
                if is_fill(w) {
                    self.push_fill(fill_bit(w), fill_groups(w));
                } else {
                    self.push_group(w);
                }
            }
            if other.active_bits > 0 {
                self.active = other.active;
                self.active_bits = other.active_bits;
                self.len += u64::from(other.active_bits);
                self.ones += u64::from(other.active.count_ones());
            }
        } else {
            for &w in &other.words {
                if is_fill(w) {
                    self.append_run(fill_bit(w), fill_groups(w) * GROUP_BITS);
                } else {
                    self.push_bits(w, GROUP_BITS);
                }
            }
            if other.active_bits > 0 {
                self.push_bits(other.active, u64::from(other.active_bits));
            }
        }
    }

    /// Concatenates two bitmaps into a new one.
    pub fn concat(&self, other: &Wah) -> Wah {
        let mut out = self.clone();
        out.append_bitmap(other);
        out
    }

    // ------------------------------------------------------------------
    // Point access
    // ------------------------------------------------------------------

    /// Reads bit `pos`. O(compressed words).
    ///
    /// # Panics
    /// Panics if `pos >= self.len()`.
    pub fn get(&self, pos: u64) -> bool {
        assert!(pos < self.len, "bit index {pos} out of range {}", self.len);
        let mut base = 0u64;
        for &w in &self.words {
            let span = if is_fill(w) {
                fill_groups(w) * GROUP_BITS
            } else {
                GROUP_BITS
            };
            if pos < base + span {
                return if is_fill(w) {
                    fill_bit(w)
                } else {
                    (w >> (pos - base)) & 1 == 1
                };
            }
            base += span;
        }
        (self.active >> (pos - base)) & 1 == 1
    }

    /// Number of set bits strictly before `pos`.
    pub fn rank1(&self, pos: u64) -> u64 {
        assert!(
            pos <= self.len,
            "rank index {pos} out of range {}",
            self.len
        );
        let mut base = 0u64;
        let mut ones = 0u64;
        for &w in &self.words {
            let (span, word_ones) = if is_fill(w) {
                let g = fill_groups(w);
                (g * GROUP_BITS, g * fill_ones_per_group(fill_bit(w)))
            } else {
                (GROUP_BITS, u64::from(w.count_ones()))
            };
            if pos <= base + span {
                let within = pos - base;
                return ones
                    + if is_fill(w) {
                        if fill_bit(w) {
                            within
                        } else {
                            0
                        }
                    } else {
                        u64::from((w & lsb_mask(within)).count_ones())
                    };
            }
            base += span;
            ones += word_ones;
        }
        ones + u64::from((self.active & lsb_mask(pos - base)).count_ones())
    }

    /// Position of the `k`-th (0-based) set bit, or `None` if `k >= count_ones()`.
    pub fn select1(&self, k: u64) -> Option<u64> {
        if k >= self.ones {
            return None;
        }
        let mut base = 0u64;
        let mut remaining = k;
        for &w in &self.words {
            if is_fill(w) {
                let g = fill_groups(w);
                if fill_bit(w) {
                    let span_ones = g * GROUP_BITS;
                    if remaining < span_ones {
                        return Some(base + remaining);
                    }
                    remaining -= span_ones;
                }
                base += g * GROUP_BITS;
            } else {
                let word_ones = u64::from(w.count_ones());
                if remaining < word_ones {
                    return Some(base + u64::from(nth_set_bit(w, remaining as u32)));
                }
                remaining -= word_ones;
                base += GROUP_BITS;
            }
        }
        Some(base + u64::from(nth_set_bit(self.active, remaining as u32)))
    }

    /// Position of the first set bit, if any.
    pub fn first_one(&self) -> Option<u64> {
        self.select1(0)
    }

    /// Position of the last set bit, if any.
    pub fn last_one(&self) -> Option<u64> {
        if self.ones == 0 {
            None
        } else {
            self.select1(self.ones - 1)
        }
    }

    // ------------------------------------------------------------------
    // Conversions
    // ------------------------------------------------------------------

    /// Builds a `Wah` from an iterator of bits.
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let mut w = Self::new();
        for b in bits {
            w.push(b);
        }
        w
    }

    /// Builds a `Wah` of length `len` with ones exactly at the (strictly
    /// ascending) positions yielded by `positions`.
    ///
    /// # Panics
    /// Panics if positions are not strictly ascending or exceed `len`.
    pub fn from_sorted_positions<I: IntoIterator<Item = u64>>(positions: I, len: u64) -> Self {
        let mut w = Self::new();
        let mut next = 0u64;
        for p in positions {
            assert!(p >= next, "positions must be strictly ascending");
            assert!(p < len, "position {p} out of range {len}");
            w.append_run(false, p - next);
            w.push(true);
            next = p + 1;
        }
        w.append_run(false, len - next);
        w
    }

    /// Collects the positions of all set bits into a vector.
    pub fn to_positions(&self) -> Vec<u64> {
        self.iter_ones().collect()
    }

    /// Internal consistency check used by tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut len = 0u64;
        let mut ones = 0u64;
        let mut prev_fill: Option<bool> = None;
        for &w in &self.words {
            if is_fill(w) {
                let g = fill_groups(w);
                if g == 0 {
                    return Err("empty fill word".into());
                }
                if prev_fill == Some(fill_bit(w)) && g < MAX_FILL_GROUPS {
                    return Err("unmerged adjacent fills".into());
                }
                len += g * GROUP_BITS;
                ones += g * fill_ones_per_group(fill_bit(w));
                prev_fill = Some(fill_bit(w));
            } else {
                if w == 0 || w == ALL_ONES_LITERAL {
                    return Err("non-canonical literal".into());
                }
                len += GROUP_BITS;
                ones += u64::from(w.count_ones());
                prev_fill = None;
            }
        }
        if self.active_bits as u64 >= GROUP_BITS {
            return Err("active_bits out of range".into());
        }
        if self.active & !lsb_mask(u64::from(self.active_bits)) != 0 {
            return Err("active has bits beyond active_bits".into());
        }
        len += u64::from(self.active_bits);
        ones += u64::from(self.active.count_ones());
        if len != self.len {
            return Err(format!("len mismatch: computed {len}, stored {}", self.len));
        }
        if ones != self.ones {
            return Err(format!(
                "ones mismatch: computed {ones}, stored {}",
                self.ones
            ));
        }
        Ok(())
    }
}

/// Mask with the low `n` bits set (`n <= 64`).
#[inline(always)]
pub(crate) fn lsb_mask(n: u64) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Index of the `n`-th (0-based) set bit of `w`. `w` must have more than `n`
/// set bits.
#[inline]
fn nth_set_bit(mut w: u64, n: u32) -> u32 {
    for _ in 0..n {
        w &= w - 1; // clear lowest set bit
    }
    w.trailing_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(bits: &[bool]) -> Wah {
        Wah::from_bits(bits.iter().copied())
    }

    #[test]
    fn empty() {
        let w = Wah::new();
        assert_eq!(w.len(), 0);
        assert_eq!(w.count_ones(), 0);
        assert!(w.is_empty());
        w.check_invariants().unwrap();
    }

    #[test]
    fn push_and_get_small() {
        let bits = [true, false, true, true, false];
        let w = naive(&bits);
        assert_eq!(w.len(), 5);
        assert_eq!(w.count_ones(), 3);
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(w.get(i as u64), b, "bit {i}");
        }
        w.check_invariants().unwrap();
    }

    #[test]
    fn group_boundary_exact() {
        let mut w = Wah::new();
        for i in 0..63 {
            w.push(i % 2 == 0);
        }
        assert_eq!(w.active_bits, 0);
        assert_eq!(w.words.len(), 1);
        assert_eq!(w.len(), 63);
        w.check_invariants().unwrap();
    }

    #[test]
    fn all_zero_group_becomes_fill() {
        let w = Wah::zeros(63 * 5);
        assert_eq!(w.words.len(), 1);
        assert!(is_fill(w.words[0]));
        assert!(!fill_bit(w.words[0]));
        assert_eq!(fill_groups(w.words[0]), 5);
        w.check_invariants().unwrap();
    }

    #[test]
    fn all_one_group_becomes_fill() {
        let w = Wah::ones(63 * 4 + 10);
        assert_eq!(w.words.len(), 1);
        assert!(fill_bit(w.words[0]));
        assert_eq!(w.count_ones(), 63 * 4 + 10);
        assert_eq!(w.active_bits, 10);
        w.check_invariants().unwrap();
    }

    #[test]
    fn adjacent_fills_merge() {
        let mut w = Wah::new();
        w.append_run(false, 63);
        w.append_run(false, 63 * 3);
        assert_eq!(w.words.len(), 1);
        assert_eq!(fill_groups(w.words[0]), 4);
        w.check_invariants().unwrap();
    }

    #[test]
    fn append_run_mixed() {
        let mut w = Wah::new();
        w.append_run(true, 10);
        w.append_run(false, 100);
        w.append_run(true, 63 * 10);
        w.check_invariants().unwrap();
        assert_eq!(w.len(), 10 + 100 + 630);
        assert_eq!(w.count_ones(), 10 + 630);
        assert!(w.get(0));
        assert!(w.get(9));
        assert!(!w.get(10));
        assert!(!w.get(109));
        assert!(w.get(110));
        assert!(w.get(10 + 100 + 630 - 1));
    }

    #[test]
    fn from_sorted_positions_round_trip() {
        let pos = vec![0u64, 5, 62, 63, 64, 200, 1000, 4095];
        let w = Wah::from_sorted_positions(pos.iter().copied(), 4096);
        assert_eq!(w.to_positions(), pos);
        assert_eq!(w.count_ones(), pos.len() as u64);
        w.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn from_positions_rejects_duplicates() {
        let _ = Wah::from_sorted_positions([3u64, 3], 10);
    }

    #[test]
    fn rank_select_inverse() {
        let pos = [1u64, 7, 63, 126, 127, 128, 1000, 9999];
        let w = Wah::from_sorted_positions(pos.iter().copied(), 10_000);
        for (k, &p) in pos.iter().enumerate() {
            assert_eq!(w.select1(k as u64), Some(p));
            assert_eq!(w.rank1(p), k as u64);
            assert_eq!(w.rank1(p + 1), k as u64 + 1);
        }
        assert_eq!(w.select1(pos.len() as u64), None);
        assert_eq!(w.rank1(w.len()), pos.len() as u64);
        assert_eq!(w.first_one(), Some(1));
        assert_eq!(w.last_one(), Some(9999));
    }

    #[test]
    fn concat_aligned_and_unaligned() {
        // Aligned: first ends exactly on a group boundary.
        let a = Wah::from_sorted_positions([0u64, 62], 63);
        let b = Wah::from_sorted_positions([1u64, 3], 70);
        let c = a.concat(&b);
        c.check_invariants().unwrap();
        assert_eq!(c.len(), 133);
        assert_eq!(c.to_positions(), vec![0, 62, 64, 66]);

        // Unaligned: first has a partial tail.
        let a = Wah::from_sorted_positions([0u64, 9], 10);
        let c = a.concat(&b);
        c.check_invariants().unwrap();
        assert_eq!(c.len(), 80);
        assert_eq!(c.to_positions(), vec![0, 9, 11, 13]);
    }

    #[test]
    fn concat_long_fills() {
        let a = Wah::zeros(1_000);
        let mut b = Wah::ones(2_000);
        b.push(false);
        let c = a.concat(&b);
        c.check_invariants().unwrap();
        assert_eq!(c.len(), 3_001);
        assert_eq!(c.count_ones(), 2_000);
        assert!(!c.get(999));
        assert!(c.get(1_000));
        assert!(c.get(2_999));
        assert!(!c.get(3_000));
    }

    #[test]
    fn push_bits_edge_cases() {
        let mut w = Wah::new();
        w.append_run(true, 30); // active_bits = 30
        w.push_bits(0b101, 3);
        w.check_invariants().unwrap();
        assert_eq!(w.len(), 33);
        assert!(w.get(30));
        assert!(!w.get(31));
        assert!(w.get(32));
        // Crossing the group boundary.
        w.push_bits(LIT_MASK, 63);
        w.check_invariants().unwrap();
        assert_eq!(w.len(), 96);
        for i in 33..96 {
            assert!(w.get(i), "bit {i}");
        }
    }

    #[test]
    fn huge_fills_merge_into_one_word() {
        // Two terabit-scale zero fills must merge into a single fill word;
        // the count stays far below MAX_FILL_GROUPS, so no split is needed.
        let mut w = Wah::new();
        w.push_fill(false, 1 << 40);
        w.push_fill(false, 3);
        assert_eq!(w.words.len(), 1);
        assert_eq!(fill_groups(w.words[0]), (1 << 40) + 3);
        assert_eq!(w.len(), ((1u64 << 40) + 3) * GROUP_BITS);
        w.check_invariants().unwrap();
    }

    #[test]
    fn zeros_ones_constructors() {
        for len in [0u64, 1, 62, 63, 64, 126, 1000] {
            let z = Wah::zeros(len);
            assert_eq!(z.len(), len);
            assert_eq!(z.count_ones(), 0);
            z.check_invariants().unwrap();
            let o = Wah::ones(len);
            assert_eq!(o.len(), len);
            assert_eq!(o.count_ones(), len);
            o.check_invariants().unwrap();
        }
    }

    #[test]
    fn equality_is_semantic() {
        // Same bit vector built two ways must compare equal (canonical form).
        let mut a = Wah::new();
        a.append_run(false, 200);
        a.push(true);
        let b = Wah::from_sorted_positions([200u64], 201);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let w = Wah::zeros(10);
        w.get(10);
    }
}
