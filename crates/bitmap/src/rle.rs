//! Run-length encoding of value-id sequences.
//!
//! The paper (Section 2.2) notes that sorted columns are sometimes stored
//! run-length encoded instead of bitmap encoded. `RleSeq` is that encoding:
//! a sequence of `(value_id, run_length)` pairs. The CODS storage engine uses
//! it for clustered/sorted columns, and the evolution operators carry the
//! same primitives as WAH bitmaps (gather by positions, slice, concat) so an
//! RLE column can be evolved at data level too.

/// A run-length encoded sequence of `u32` value ids.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RleSeq {
    runs: Vec<(u32, u64)>,
    len: u64,
}

impl RleSeq {
    /// Creates an empty sequence.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of entries.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Returns `true` when the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of runs (compressed size).
    pub fn num_runs(&self) -> usize {
        self.runs.len()
    }

    /// Heap bytes used by the compressed form.
    pub fn size_bytes(&self) -> usize {
        self.runs.len() * std::mem::size_of::<(u32, u64)>()
    }

    /// The raw runs.
    pub fn runs(&self) -> &[(u32, u64)] {
        &self.runs
    }

    /// Appends `count` copies of `value`, merging with the trailing run.
    pub fn append_run(&mut self, value: u32, count: u64) {
        if count == 0 {
            return;
        }
        self.len += count;
        if let Some(last) = self.runs.last_mut() {
            if last.0 == value {
                last.1 += count;
                return;
            }
        }
        self.runs.push((value, count));
    }

    /// Appends a single value.
    pub fn push(&mut self, value: u32) {
        self.append_run(value, 1);
    }

    /// Reads entry `pos` (O(runs); use iteration for bulk access).
    ///
    /// # Panics
    /// Panics if `pos >= len`.
    pub fn get(&self, pos: u64) -> u32 {
        assert!(pos < self.len, "index {pos} out of range {}", self.len);
        let mut base = 0;
        for &(v, n) in &self.runs {
            if pos < base + n {
                return v;
            }
            base += n;
        }
        unreachable!()
    }

    /// Iterates all entries, decompressing.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.runs.iter().flat_map(|&(v, n)| (0..n).map(move |_| v))
    }

    /// Iterates `(value, run_start, run_len)` triples.
    pub fn iter_runs(&self) -> impl Iterator<Item = (u32, u64, u64)> + '_ {
        let mut base = 0u64;
        self.runs.iter().map(move |&(v, n)| {
            let start = base;
            base += n;
            (v, start, n)
        })
    }

    /// Gather: output entry `j` = `self[positions[j]]`, positions
    /// non-decreasing. Runs of the input become runs of the output.
    pub fn filter_positions(&self, positions: &[u64]) -> RleSeq {
        let mut out = RleSeq::new();
        let n = positions.len();
        let mut idx = 0usize;
        let mut base = 0u64;
        for &(v, rlen) in &self.runs {
            if idx == n {
                break;
            }
            let end = base + rlen;
            let start = idx;
            while idx < n && positions[idx] < end {
                debug_assert!(positions[idx] >= base, "positions must be sorted");
                idx += 1;
            }
            out.append_run(v, (idx - start) as u64);
            base = end;
        }
        assert!(idx == n, "position out of range (len {})", self.len);
        out
    }

    /// Extracts entries `[start, end)`.
    pub fn slice(&self, start: u64, end: u64) -> RleSeq {
        assert!(start <= end && end <= self.len, "invalid slice range");
        let mut out = RleSeq::new();
        let mut base = 0u64;
        for &(v, rlen) in &self.runs {
            let rend = base + rlen;
            let lo = base.max(start);
            let hi = rend.min(end);
            if lo < hi {
                out.append_run(v, hi - lo);
            }
            base = rend;
            if base >= end {
                break;
            }
        }
        out
    }

    /// Appends all entries of `other`.
    pub fn append_seq(&mut self, other: &RleSeq) {
        for &(v, n) in &other.runs {
            self.append_run(v, n);
        }
    }

    /// Returns `true` if the sequence is sorted by value id.
    pub fn is_sorted(&self) -> bool {
        self.runs.windows(2).all(|w| w[0].0 <= w[1].0)
    }
}

impl FromIterator<u32> for RleSeq {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        let mut s = RleSeq::new();
        for v in iter {
            s.push(v);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_merges_runs() {
        let mut s = RleSeq::new();
        s.append_run(1, 5);
        s.append_run(1, 3);
        s.append_run(2, 1);
        assert_eq!(s.num_runs(), 2);
        assert_eq!(s.len(), 9);
        assert_eq!(s.get(7), 1);
        assert_eq!(s.get(8), 2);
    }

    #[test]
    fn round_trip_via_iter() {
        let vals = vec![3u32, 3, 3, 1, 2, 2, 3];
        let s: RleSeq = vals.iter().copied().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vals);
        assert_eq!(s.num_runs(), 4);
    }

    #[test]
    fn filter_positions_matches_naive() {
        let vals: Vec<u32> = (0..100).map(|i| i / 10).collect();
        let s: RleSeq = vals.iter().copied().collect();
        let positions: Vec<u64> = (0..100).step_by(7).collect();
        let f = s.filter_positions(&positions);
        let expect: Vec<u32> = positions.iter().map(|&p| vals[p as usize]).collect();
        assert_eq!(f.iter().collect::<Vec<_>>(), expect);
    }

    #[test]
    fn slice_and_concat() {
        let s: RleSeq = (0..50u32).map(|i| i / 5).collect();
        let a = s.slice(0, 20);
        let b = s.slice(20, 50);
        let mut joined = a.clone();
        joined.append_seq(&b);
        assert_eq!(joined, s);
    }

    #[test]
    fn sortedness() {
        let sorted: RleSeq = [1u32, 1, 2, 3, 3].into_iter().collect();
        assert!(sorted.is_sorted());
        let unsorted: RleSeq = [2u32, 1].into_iter().collect();
        assert!(!unsorted.is_sorted());
    }

    #[test]
    fn iter_runs_offsets() {
        let s: RleSeq = [5u32, 5, 7, 7, 7, 5].into_iter().collect();
        let runs: Vec<_> = s.iter_runs().collect();
        assert_eq!(runs, vec![(5, 0, 2), (7, 2, 3), (5, 5, 1)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range() {
        let s: RleSeq = [1u32].into_iter().collect();
        s.get(1);
    }
}
