//! Logical operations (AND / OR / XOR / AND-NOT / NOT) computed *directly on
//! the compressed form*, the property WAH was designed for (Wu, Otoo &
//! Shoshani, TODS 2006). No operand is ever decompressed to a bit vector;
//! the cost is linear in the number of compressed words of the inputs.

use crate::wah::{lsb_mask, Wah};
use crate::word::*;

/// A decoded view of one compressed word, with fills still run-length coded.
#[derive(Clone, Copy, Debug)]
enum Seg {
    Fill { bit: bool, groups: u64 },
    Literal(u64),
}

/// Streaming decoder over the complete-group words of a bitmap.
struct GroupDecoder<'a> {
    words: std::slice::Iter<'a, u64>,
    pending: Option<Seg>,
}

impl<'a> GroupDecoder<'a> {
    fn new(words: &'a [u64]) -> Self {
        GroupDecoder {
            words: words.iter(),
            pending: None,
        }
    }

    /// Current segment, loading the next word if necessary.
    fn peek(&mut self) -> Option<Seg> {
        if self.pending.is_none() {
            self.pending = self.words.next().map(|&w| {
                if is_fill(w) {
                    Seg::Fill {
                        bit: fill_bit(w),
                        groups: fill_groups(w),
                    }
                } else {
                    Seg::Literal(w)
                }
            });
        }
        self.pending
    }

    /// Consumes `n` groups from the current segment (which must be a fill
    /// with at least `n` groups, or a literal with `n == 1`).
    fn consume(&mut self, n: u64) {
        match self.pending.take() {
            Some(Seg::Fill { bit, groups }) => {
                debug_assert!(groups >= n);
                if groups > n {
                    self.pending = Some(Seg::Fill {
                        bit,
                        groups: groups - n,
                    });
                }
            }
            Some(Seg::Literal(_)) => debug_assert_eq!(n, 1),
            None => unreachable!("consume past end"),
        }
    }
}

/// The supported binary operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// Bitwise conjunction.
    And,
    /// Bitwise disjunction.
    Or,
    /// Bitwise exclusive or.
    Xor,
    /// `a AND NOT b`.
    AndNot,
}

impl BinOp {
    #[inline(always)]
    fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::AndNot => a & !b & LIT_MASK,
        }
    }
}

fn binary(a: &Wah, b: &Wah, op: BinOp) -> Wah {
    assert_eq!(
        a.len(),
        b.len(),
        "bitmap length mismatch: {} vs {}",
        a.len(),
        b.len()
    );
    let mut out = Wah::new();
    let mut da = GroupDecoder::new(&a.words);
    let mut db = GroupDecoder::new(&b.words);
    loop {
        match (da.peek(), db.peek()) {
            (None, None) => break,
            (Some(sa), Some(sb)) => match (sa, sb) {
                (
                    Seg::Fill {
                        bit: ba,
                        groups: ga,
                    },
                    Seg::Fill {
                        bit: bb,
                        groups: gb,
                    },
                ) => {
                    let n = ga.min(gb);
                    let r = op.apply(fill_as_literal(ba), fill_as_literal(bb));
                    debug_assert!(r == 0 || r == ALL_ONES_LITERAL);
                    out.push_fill(r == ALL_ONES_LITERAL, n);
                    da.consume(n);
                    db.consume(n);
                }
                (Seg::Fill { bit, .. }, Seg::Literal(w)) => {
                    out.push_group(op.apply(fill_as_literal(bit), w));
                    da.consume(1);
                    db.consume(1);
                }
                (Seg::Literal(w), Seg::Fill { bit, .. }) => {
                    out.push_group(op.apply(w, fill_as_literal(bit)));
                    da.consume(1);
                    db.consume(1);
                }
                (Seg::Literal(wa), Seg::Literal(wb)) => {
                    out.push_group(op.apply(wa, wb));
                    da.consume(1);
                    db.consume(1);
                }
            },
            _ => unreachable!("equal-length bitmaps have equal group counts"),
        }
    }
    let tail_bits = u64::from(a.active_bits);
    if tail_bits > 0 {
        out.push_bits(
            op.apply(a.active, b.active) & lsb_mask(tail_bits),
            tail_bits,
        );
    }
    out
}

impl Wah {
    /// Bitwise AND. Both operands must have the same length.
    pub fn and(&self, other: &Wah) -> Wah {
        binary(self, other, BinOp::And)
    }

    /// Bitwise OR. Both operands must have the same length.
    pub fn or(&self, other: &Wah) -> Wah {
        binary(self, other, BinOp::Or)
    }

    /// Bitwise XOR. Both operands must have the same length.
    pub fn xor(&self, other: &Wah) -> Wah {
        binary(self, other, BinOp::Xor)
    }

    /// Bitwise `self AND NOT other`. Both operands must have the same length.
    pub fn and_not(&self, other: &Wah) -> Wah {
        binary(self, other, BinOp::AndNot)
    }

    /// Bitwise complement over the full length.
    pub fn not(&self) -> Wah {
        let mut out = Wah::new();
        for &w in &self.words {
            if is_fill(w) {
                out.push_fill(!fill_bit(w), fill_groups(w));
            } else {
                out.push_group(w ^ LIT_MASK);
            }
        }
        let tail = u64::from(self.active_bits);
        if tail > 0 {
            out.push_bits(!self.active & lsb_mask(tail), tail);
        }
        out
    }

    /// In-place OR (`*self = *self | other`).
    pub fn or_with(&mut self, other: &Wah) {
        *self = self.or(other);
    }

    /// Returns `true` if the two bitmaps share no set position.
    ///
    /// Short-circuits on the first overlapping group, so disjoint probing is
    /// usually cheaper than a full [`Wah::and`].
    pub fn is_disjoint(&self, other: &Wah) -> bool {
        assert_eq!(self.len(), other.len(), "bitmap length mismatch");
        let mut da = GroupDecoder::new(&self.words);
        let mut db = GroupDecoder::new(&other.words);
        loop {
            match (da.peek(), db.peek()) {
                (None, None) => break,
                (Some(sa), Some(sb)) => {
                    let (wa, wb, n) = match (sa, sb) {
                        (
                            Seg::Fill {
                                bit: ba,
                                groups: ga,
                            },
                            Seg::Fill {
                                bit: bb,
                                groups: gb,
                            },
                        ) => (fill_as_literal(ba), fill_as_literal(bb), ga.min(gb)),
                        (Seg::Fill { bit, .. }, Seg::Literal(w)) => (fill_as_literal(bit), w, 1),
                        (Seg::Literal(w), Seg::Fill { bit, .. }) => (w, fill_as_literal(bit), 1),
                        (Seg::Literal(wa), Seg::Literal(wb)) => (wa, wb, 1),
                    };
                    if wa & wb != 0 {
                        return false;
                    }
                    da.consume(n);
                    db.consume(n);
                }
                _ => unreachable!(),
            }
        }
        self.active & other.active == 0
    }

    /// OR of many bitmaps (all the same length). Returns a zero bitmap of
    /// length `len` when the iterator is empty.
    pub fn union_many<'a, I: IntoIterator<Item = &'a Wah>>(bitmaps: I, len: u64) -> Wah {
        let mut acc: Option<Wah> = None;
        for b in bitmaps {
            acc = Some(match acc {
                None => b.clone(),
                Some(a) => a.or(b),
            });
        }
        acc.unwrap_or_else(|| Wah::zeros(len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits_of(w: &Wah) -> Vec<bool> {
        w.iter_bits().collect()
    }

    fn check_op(a_bits: &[bool], b_bits: &[bool]) {
        let a = Wah::from_bits(a_bits.iter().copied());
        let b = Wah::from_bits(b_bits.iter().copied());
        let and = a.and(&b);
        let or = a.or(&b);
        let xor = a.xor(&b);
        let andnot = a.and_not(&b);
        and.check_invariants().unwrap();
        or.check_invariants().unwrap();
        xor.check_invariants().unwrap();
        andnot.check_invariants().unwrap();
        for i in 0..a_bits.len() {
            assert_eq!(bits_of(&and)[i], a_bits[i] & b_bits[i], "and bit {i}");
            assert_eq!(bits_of(&or)[i], a_bits[i] | b_bits[i], "or bit {i}");
            assert_eq!(bits_of(&xor)[i], a_bits[i] ^ b_bits[i], "xor bit {i}");
            assert_eq!(
                bits_of(&andnot)[i],
                a_bits[i] & !b_bits[i],
                "andnot bit {i}"
            );
        }
    }

    #[test]
    fn small_ops() {
        check_op(&[true, false, true, false], &[true, true, false, false]);
    }

    #[test]
    fn ops_across_group_boundaries() {
        let a: Vec<bool> = (0..200).map(|i| i % 3 == 0).collect();
        let b: Vec<bool> = (0..200).map(|i| i % 5 == 0).collect();
        check_op(&a, &b);
    }

    #[test]
    fn ops_with_long_fills() {
        let mut a_bits = vec![false; 63 * 100];
        let mut b_bits = vec![true; 63 * 100];
        a_bits[63 * 50] = true;
        b_bits[63 * 50 + 1] = false;
        check_op(&a_bits, &b_bits);
    }

    #[test]
    fn fill_vs_fill_misaligned_runs() {
        // a: 10 zero-groups then 20 one-groups; b: 15 one-groups then 15 zero-groups.
        let mut a = Wah::new();
        a.append_run(false, 63 * 10);
        a.append_run(true, 63 * 20);
        let mut b = Wah::new();
        b.append_run(true, 63 * 15);
        b.append_run(false, 63 * 15);
        let and = a.and(&b);
        and.check_invariants().unwrap();
        assert_eq!(and.count_ones(), 63 * 5);
        assert_eq!(and.first_one(), Some(63 * 10));
        assert_eq!(and.last_one(), Some(63 * 15 - 1));
    }

    #[test]
    fn not_round_trip() {
        let pos = [0u64, 3, 63, 64, 100, 4000];
        let w = Wah::from_sorted_positions(pos.iter().copied(), 4096);
        let n = w.not();
        n.check_invariants().unwrap();
        assert_eq!(n.count_ones(), 4096 - pos.len() as u64);
        assert_eq!(n.not(), w);
    }

    #[test]
    fn de_morgan() {
        let a = Wah::from_sorted_positions([1u64, 70, 300], 500);
        let b = Wah::from_sorted_positions([1u64, 71, 300, 499], 500);
        assert_eq!(a.and(&b).not(), a.not().or(&b.not()));
        assert_eq!(a.or(&b).not(), a.not().and(&b.not()));
    }

    #[test]
    fn and_not_equals_and_with_not() {
        let a = Wah::from_sorted_positions([0u64, 64, 128, 300], 400);
        let b = Wah::from_sorted_positions([64u64, 300], 400);
        assert_eq!(a.and_not(&b), a.and(&b.not()));
    }

    #[test]
    fn disjointness() {
        let a = Wah::from_sorted_positions([0u64, 100, 200], 1000);
        let b = Wah::from_sorted_positions([1u64, 101, 201], 1000);
        assert!(a.is_disjoint(&b));
        let c = Wah::from_sorted_positions([100u64], 1000);
        assert!(!a.is_disjoint(&c));
        assert!(Wah::zeros(1000).is_disjoint(&Wah::ones(1000)));
        assert!(!Wah::ones(1000).is_disjoint(&Wah::ones(1000)));
    }

    #[test]
    fn disjoint_tail_only_overlap() {
        let a = Wah::from_sorted_positions([999u64], 1000);
        let b = Wah::from_sorted_positions([999u64], 1000);
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn union_many_ors_everything() {
        let parts: Vec<Wah> = (0..10)
            .map(|i| Wah::from_sorted_positions([i as u64 * 10], 100))
            .collect();
        let u = Wah::union_many(parts.iter(), 100);
        assert_eq!(u.count_ones(), 10);
        for i in 0..10u64 {
            assert!(u.get(i * 10));
        }
        let empty = Wah::union_many(std::iter::empty(), 77);
        assert_eq!(empty.len(), 77);
        assert_eq!(empty.count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = Wah::zeros(10).and(&Wah::zeros(11));
    }

    #[test]
    fn ops_on_empty() {
        let e = Wah::new();
        assert_eq!(e.and(&e), e);
        assert_eq!(e.or(&e), e);
        assert_eq!(e.not(), e);
    }
}
