//! Binary serialization of compressed bitmaps (used by the storage engine's
//! on-disk table format). The layout is: `len: u64 | active: u64 |
//! active_bits: u32 | word_count: u32 | words…`, all little-endian.

use crate::rle::RleSeq;
use crate::wah::Wah;
use bytes::{Buf, BufMut};

/// Errors raised while decoding a serialized bitmap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the structure was complete.
    UnexpectedEof,
    /// The decoded structure violates a WAH invariant.
    Corrupt(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of buffer"),
            CodecError::Corrupt(msg) => write!(f, "corrupt bitmap: {msg}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl Wah {
    /// Serializes the bitmap into `buf`.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u64_le(self.len);
        buf.put_u64_le(self.active);
        buf.put_u32_le(self.active_bits);
        buf.put_u32_le(self.words.len() as u32);
        for &w in &self.words {
            buf.put_u64_le(w);
        }
    }

    /// Serialized size in bytes.
    pub fn encoded_len(&self) -> usize {
        8 + 8 + 4 + 4 + self.words.len() * 8
    }

    /// Deserializes a bitmap from `buf`, validating all invariants.
    pub fn decode<B: Buf>(buf: &mut B) -> Result<Wah, CodecError> {
        if buf.remaining() < 24 {
            return Err(CodecError::UnexpectedEof);
        }
        let len = buf.get_u64_le();
        let active = buf.get_u64_le();
        let active_bits = buf.get_u32_le();
        let word_count = buf.get_u32_le() as usize;
        if buf.remaining() < word_count * 8 {
            return Err(CodecError::UnexpectedEof);
        }
        let mut words = Vec::with_capacity(word_count);
        let mut ones = 0u64;
        for _ in 0..word_count {
            let w = buf.get_u64_le();
            ones += if crate::word::is_fill(w) {
                crate::word::fill_groups(w)
                    * crate::word::fill_ones_per_group(crate::word::fill_bit(w))
            } else {
                u64::from(w.count_ones())
            };
            words.push(w);
        }
        ones += u64::from(active.count_ones());
        let wah = Wah {
            words,
            active,
            active_bits,
            len,
            ones,
        };
        wah.check_invariants().map_err(CodecError::Corrupt)?;
        Ok(wah)
    }
}

impl RleSeq {
    /// Serializes the sequence into `buf` as
    /// `len: u64 | run_count: u32 | (value: u32, count: u64)…`.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u64_le(self.len());
        buf.put_u32_le(self.runs().len() as u32);
        for &(v, n) in self.runs() {
            buf.put_u32_le(v);
            buf.put_u64_le(n);
        }
    }

    /// Serialized size in bytes.
    pub fn encoded_len(&self) -> usize {
        8 + 4 + self.runs().len() * 12
    }

    /// Deserializes a sequence from `buf`.
    pub fn decode<B: Buf>(buf: &mut B) -> Result<RleSeq, CodecError> {
        if buf.remaining() < 12 {
            return Err(CodecError::UnexpectedEof);
        }
        let len = buf.get_u64_le();
        let run_count = buf.get_u32_le() as usize;
        if buf.remaining() < run_count * 12 {
            return Err(CodecError::UnexpectedEof);
        }
        let mut seq = RleSeq::new();
        for _ in 0..run_count {
            let v = buf.get_u32_le();
            let n = buf.get_u64_le();
            if n == 0 {
                return Err(CodecError::Corrupt("zero-length run".into()));
            }
            seq.append_run(v, n);
        }
        if seq.len() != len {
            return Err(CodecError::Corrupt(format!(
                "length mismatch: header {len}, runs {}",
                seq.len()
            )));
        }
        Ok(seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    #[test]
    fn wah_round_trip() {
        let mut w = Wah::new();
        w.append_run(false, 1000);
        w.append_run(true, 63 * 5);
        w.push(true);
        w.push(false);
        let mut buf = BytesMut::new();
        w.encode(&mut buf);
        assert_eq!(buf.len(), w.encoded_len());
        let mut slice = buf.freeze();
        let back = Wah::decode(&mut slice).unwrap();
        assert_eq!(back, w);
    }

    #[test]
    fn wah_empty_round_trip() {
        let w = Wah::new();
        let mut buf = BytesMut::new();
        w.encode(&mut buf);
        let back = Wah::decode(&mut buf.freeze()).unwrap();
        assert_eq!(back, w);
    }

    #[test]
    fn wah_truncated_fails() {
        let w = Wah::ones(1000);
        let mut buf = BytesMut::new();
        w.encode(&mut buf);
        let truncated = buf.freeze().slice(0..10);
        assert_eq!(
            Wah::decode(&mut truncated.clone()),
            Err(CodecError::UnexpectedEof)
        );
    }

    #[test]
    fn wah_corrupt_fails() {
        // A length header inconsistent with the words must be rejected.
        let mut buf = BytesMut::new();
        buf.put_u64_le(999); // wrong len
        buf.put_u64_le(0);
        buf.put_u32_le(0);
        buf.put_u32_le(0);
        assert!(matches!(
            Wah::decode(&mut buf.freeze()),
            Err(CodecError::Corrupt(_))
        ));
    }

    #[test]
    fn rle_round_trip() {
        let s: RleSeq = [1u32, 1, 1, 2, 3, 3].into_iter().collect();
        let mut buf = BytesMut::new();
        s.encode(&mut buf);
        assert_eq!(buf.len(), s.encoded_len());
        let back = RleSeq::decode(&mut buf.freeze()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn rle_rejects_zero_run() {
        let mut buf = BytesMut::new();
        buf.put_u64_le(0);
        buf.put_u32_le(1);
        buf.put_u32_le(7);
        buf.put_u64_le(0); // zero-length run
        assert!(matches!(
            RleSeq::decode(&mut buf.freeze()),
            Err(CodecError::Corrupt(_))
        ));
    }
}
