//! Iteration over compressed bitmaps: run view and set-bit iterator.

use crate::wah::{lsb_mask, Wah};
use crate::word::*;

/// One maximal homogeneous piece of a bitmap, as exposed by [`RunIter`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Run {
    /// `len` consecutive copies of `bit` (`len` is a multiple of 63 for fills
    /// coming from fill words, but arbitrary lengths may appear after
    /// slicing).
    Fill {
        /// The repeated bit value.
        bit: bool,
        /// Number of positions covered.
        len: u64,
    },
    /// A literal group: the low `len` bits of `word` (`len <= 63`).
    Literal {
        /// The literal bits, LSB-first.
        word: u64,
        /// Number of valid bits in `word`.
        len: u64,
    },
}

impl Run {
    /// Number of bit positions covered by this run.
    #[inline]
    pub fn len(&self) -> u64 {
        match *self {
            Run::Fill { len, .. } => len,
            Run::Literal { len, .. } => len,
        }
    }

    /// Returns `true` when the run covers no positions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of set bits in this run.
    #[inline]
    pub fn count_ones(&self) -> u64 {
        match *self {
            Run::Fill { bit, len } => {
                if bit {
                    len
                } else {
                    0
                }
            }
            Run::Literal { word, .. } => u64::from(word.count_ones()),
        }
    }
}

/// Streams a bitmap as a sequence of [`Run`]s covering it exactly once, in
/// order. Fill words come out as one `Run::Fill` each; literal words as
/// `Run::Literal` of length 63; the partial tail as a final short literal.
#[derive(Clone)]
pub struct RunIter<'a> {
    words: std::slice::Iter<'a, u64>,
    active: u64,
    active_bits: u32,
    active_done: bool,
}

impl<'a> RunIter<'a> {
    pub(crate) fn new(w: &'a Wah) -> Self {
        RunIter {
            words: w.words.iter(),
            active: w.active,
            active_bits: w.active_bits,
            active_done: w.active_bits == 0,
        }
    }
}

impl Iterator for RunIter<'_> {
    type Item = Run;

    fn next(&mut self) -> Option<Run> {
        if let Some(&w) = self.words.next() {
            Some(if is_fill(w) {
                Run::Fill {
                    bit: fill_bit(w),
                    len: fill_groups(w) * GROUP_BITS,
                }
            } else {
                Run::Literal {
                    word: w,
                    len: GROUP_BITS,
                }
            })
        } else if !self.active_done {
            self.active_done = true;
            Some(Run::Literal {
                word: self.active,
                len: u64::from(self.active_bits),
            })
        } else {
            None
        }
    }
}

/// Iterator over the positions of set bits, cheapest-first: 1-fills are
/// enumerated arithmetically, literals by clearing trailing bits.
pub struct OnesIter<'a> {
    runs: RunIter<'a>,
    base: u64,
    /// Remaining portion of the current run.
    current: Option<Run>,
    /// Offset already consumed inside the current run.
    within: u64,
}

impl<'a> OnesIter<'a> {
    pub(crate) fn new(w: &'a Wah) -> Self {
        OnesIter {
            runs: RunIter::new(w),
            base: 0,
            current: None,
            within: 0,
        }
    }
}

impl Iterator for OnesIter<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        loop {
            match self.current {
                None => {
                    let run = self.runs.next()?;
                    self.current = Some(run);
                    self.within = 0;
                }
                Some(Run::Fill { bit: false, len }) | Some(Run::Literal { word: 0, len }) => {
                    self.base += len;
                    self.current = None;
                }
                Some(Run::Fill { bit: true, len }) => {
                    if self.within < len {
                        let pos = self.base + self.within;
                        self.within += 1;
                        return Some(pos);
                    }
                    self.base += len;
                    self.current = None;
                }
                Some(Run::Literal { word, len }) => {
                    let remaining = word & !lsb_mask(self.within);
                    if remaining != 0 {
                        let bit = u64::from(remaining.trailing_zeros());
                        self.within = bit + 1;
                        return Some(self.base + bit);
                    }
                    self.base += len;
                    self.current = None;
                }
            }
        }
    }
}

/// Iterator over maximal intervals of consecutive ones, as `(start, len)`.
pub struct IntervalIter<'a> {
    runs: RunIter<'a>,
    base: u64,
    /// Interval under construction: (start, len).
    open: Option<(u64, u64)>,
    /// Completed intervals not yet handed out (a single literal can close
    /// several).
    ready: std::collections::VecDeque<(u64, u64)>,
}

impl<'a> IntervalIter<'a> {
    pub(crate) fn new(w: &'a Wah) -> Self {
        IntervalIter {
            runs: RunIter::new(w),
            base: 0,
            open: None,
            ready: std::collections::VecDeque::new(),
        }
    }

    fn stretch(&mut self, bit: bool, len: u64) {
        if bit {
            match self.open.as_mut() {
                Some((_, l)) => *l += len,
                None => self.open = Some((self.base, len)),
            }
        } else if let Some(done) = self.open.take() {
            self.ready.push_back(done);
        }
        self.base += len;
    }
}

impl Iterator for IntervalIter<'_> {
    type Item = (u64, u64);

    fn next(&mut self) -> Option<(u64, u64)> {
        loop {
            if let Some(iv) = self.ready.pop_front() {
                return Some(iv);
            }
            match self.runs.next() {
                None => return self.open.take(),
                Some(Run::Fill { bit, len }) => self.stretch(bit, len),
                Some(Run::Literal { word, len }) => {
                    let mut i = 0u64;
                    while i < len {
                        let bit = (word >> i) & 1 == 1;
                        let mut j = i + 1;
                        while j < len && ((word >> j) & 1 == 1) == bit {
                            j += 1;
                        }
                        self.stretch(bit, j - i);
                        i = j;
                    }
                }
            }
        }
    }
}

impl Wah {
    /// Iterates the bitmap as maximal homogeneous [`Run`]s.
    pub fn iter_runs(&self) -> RunIter<'_> {
        RunIter::new(self)
    }

    /// Iterates the positions of all set bits in ascending order.
    pub fn iter_ones(&self) -> OnesIter<'_> {
        OnesIter::new(self)
    }

    /// Iterates maximal intervals of consecutive ones as `(start, len)`.
    pub fn iter_intervals(&self) -> IntervalIter<'_> {
        IntervalIter::new(self)
    }

    /// Iterates every bit (decompressing). Intended for tests and small data.
    pub fn iter_bits(&self) -> impl Iterator<Item = bool> + '_ {
        self.iter_runs().flat_map(|run| {
            let (len, f): (u64, Box<dyn Fn(u64) -> bool>) = match run {
                Run::Fill { bit, len } => (len, Box::new(move |_| bit)),
                Run::Literal { word, len } => (len, Box::new(move |i| (word >> i) & 1 == 1)),
            };
            (0..len).map(f)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_cover_bitmap_exactly() {
        let mut w = Wah::new();
        w.append_run(false, 200);
        w.append_run(true, 63);
        w.push(true);
        w.push(false);
        let total: u64 = w.iter_runs().map(|r| r.len()).sum();
        assert_eq!(total, w.len());
        let ones: u64 = w.iter_runs().map(|r| r.count_ones()).sum();
        assert_eq!(ones, w.count_ones());
    }

    #[test]
    fn ones_iter_matches_get() {
        let pos = vec![0u64, 1, 62, 63, 64, 125, 126, 127, 500, 501, 1000];
        let w = Wah::from_sorted_positions(pos.iter().copied(), 1001);
        assert_eq!(w.iter_ones().collect::<Vec<_>>(), pos);
    }

    #[test]
    fn ones_iter_on_dense_fill() {
        let w = Wah::ones(200);
        assert_eq!(
            w.iter_ones().collect::<Vec<_>>(),
            (0..200).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ones_iter_empty_and_all_zero() {
        assert_eq!(Wah::new().iter_ones().count(), 0);
        assert_eq!(Wah::zeros(5000).iter_ones().count(), 0);
    }

    #[test]
    fn iter_bits_round_trip() {
        let pos = [3u64, 64, 65, 130];
        let w = Wah::from_sorted_positions(pos.iter().copied(), 140);
        let rebuilt = Wah::from_bits(w.iter_bits());
        assert_eq!(rebuilt, w);
    }

    #[test]
    fn intervals_match_naive_grouping() {
        let cases: Vec<Vec<u64>> = vec![
            vec![],
            vec![0],
            vec![0, 1, 2],
            vec![5, 6, 7, 100, 101, 500],
            (0..200).collect(),
            vec![62, 63, 64, 65, 126, 127],
        ];
        for pos in cases {
            let len = pos.last().map_or(10, |&p| p + 10);
            let w = Wah::from_sorted_positions(pos.iter().copied(), len);
            let intervals: Vec<(u64, u64)> = w.iter_intervals().collect();
            // Naive grouping of consecutive positions.
            let mut expect: Vec<(u64, u64)> = Vec::new();
            for &p in &pos {
                match expect.last_mut() {
                    Some((s, l)) if *s + *l == p => *l += 1,
                    _ => expect.push((p, 1)),
                }
            }
            assert_eq!(intervals, expect, "positions {pos:?}");
            let covered: u64 = intervals.iter().map(|&(_, l)| l).sum();
            assert_eq!(covered, w.count_ones());
        }
    }

    #[test]
    fn intervals_within_one_literal() {
        // 101101 → three intervals inside a single literal word.
        let w = Wah::from_bits([true, false, true, true, false, true]);
        assert_eq!(
            w.iter_intervals().collect::<Vec<_>>(),
            vec![(0, 1), (2, 2), (5, 1)]
        );
    }

    #[test]
    fn intervals_spanning_fill_and_literal() {
        let mut w = Wah::new();
        w.append_run(true, 63); // one full group fill
        w.push(true); // continues into the next literal
        w.push(false);
        w.push(true);
        assert_eq!(
            w.iter_intervals().collect::<Vec<_>>(),
            vec![(0, 64), (65, 1)]
        );
    }

    #[test]
    fn run_is_empty() {
        assert!(Run::Fill { bit: true, len: 0 }.is_empty());
        assert!(!Run::Literal { word: 1, len: 3 }.is_empty());
    }
}
