//! Uncompressed bit vector. Serves two purposes: a trusted oracle for
//! property-testing the WAH implementation, and the "no compression" arm of
//! the ablation benchmarks.

use crate::wah::{lsb_mask, Wah};

/// A plain, uncompressed bit vector backed by `Vec<u64>` (LSB-first within
/// each word, like the WAH literal layout).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PlainBitmap {
    words: Vec<u64>,
    len: u64,
}

impl PlainBitmap {
    /// Creates an empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a bitmap of `len` zero bits.
    pub fn zeros(len: u64) -> Self {
        PlainBitmap {
            words: vec![0; len.div_ceil(64) as usize],
            len,
        }
    }

    /// Logical length in bits.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Returns `true` when the bitmap holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one bit.
    pub fn push(&mut self, bit: bool) {
        let word = (self.len / 64) as usize;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Reads bit `pos`.
    ///
    /// # Panics
    /// Panics if `pos >= len`.
    pub fn get(&self, pos: u64) -> bool {
        assert!(pos < self.len, "bit index {pos} out of range {}", self.len);
        (self.words[(pos / 64) as usize] >> (pos % 64)) & 1 == 1
    }

    /// Sets bit `pos` to `bit`.
    pub fn set(&mut self, pos: u64, bit: bool) {
        assert!(pos < self.len, "bit index {pos} out of range {}", self.len);
        let w = &mut self.words[(pos / 64) as usize];
        if bit {
            *w |= 1 << (pos % 64);
        } else {
            *w &= !(1 << (pos % 64));
        }
    }

    /// Number of set bits (O(words)).
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// Heap bytes used.
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Positions of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = u64> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &w)| {
            let base = i as u64 * 64;
            std::iter::successors(if w == 0 { None } else { Some(w) }, |&w| {
                let w = w & (w - 1);
                if w == 0 {
                    None
                } else {
                    Some(w)
                }
            })
            .map(move |w| base + u64::from(w.trailing_zeros()))
        })
    }

    /// Bitwise AND (lengths must match).
    pub fn and(&self, other: &PlainBitmap) -> PlainBitmap {
        self.zip(other, |a, b| a & b)
    }

    /// Bitwise OR (lengths must match).
    pub fn or(&self, other: &PlainBitmap) -> PlainBitmap {
        self.zip(other, |a, b| a | b)
    }

    /// Bitwise XOR (lengths must match).
    pub fn xor(&self, other: &PlainBitmap) -> PlainBitmap {
        self.zip(other, |a, b| a ^ b)
    }

    /// Bitwise complement.
    pub fn not(&self) -> PlainBitmap {
        let mut out = PlainBitmap {
            words: self.words.iter().map(|&w| !w).collect(),
            len: self.len,
        };
        out.mask_tail();
        out
    }

    fn zip(&self, other: &PlainBitmap, f: impl Fn(u64, u64) -> u64) -> PlainBitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        PlainBitmap {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(&a, &b)| f(a, b))
                .collect(),
            len: self.len,
        }
    }

    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= lsb_mask(tail);
            }
        }
    }

    /// Gather: output bit `j` = `self[positions[j]]` (naive per-bit version,
    /// the ablation baseline for WAH bitmap filtering).
    pub fn filter_positions(&self, positions: &[u64]) -> PlainBitmap {
        let mut out = PlainBitmap::new();
        for &p in positions {
            out.push(self.get(p));
        }
        out
    }

    /// Converts to WAH form.
    pub fn to_wah(&self) -> Wah {
        let mut w = Wah::new();
        for i in 0..self.len {
            w.push(self.get(i));
        }
        w
    }

    /// Builds from WAH form.
    pub fn from_wah(w: &Wah) -> PlainBitmap {
        let mut out = PlainBitmap::zeros(w.len());
        for p in w.iter_ones() {
            out.set(p, true);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_set() {
        let mut b = PlainBitmap::new();
        for i in 0..130 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 130);
        for i in 0..130 {
            assert_eq!(b.get(i), i % 3 == 0);
        }
        b.set(1, true);
        assert!(b.get(1));
        b.set(0, false);
        assert!(!b.get(0));
    }

    #[test]
    fn wah_round_trip() {
        let mut b = PlainBitmap::zeros(500);
        for p in [0u64, 63, 64, 127, 128, 499] {
            b.set(p, true);
        }
        let w = b.to_wah();
        assert_eq!(PlainBitmap::from_wah(&w), b);
        assert_eq!(w.count_ones(), b.count_ones());
    }

    #[test]
    fn ops_match_wah() {
        let mut a = PlainBitmap::zeros(200);
        let mut b = PlainBitmap::zeros(200);
        for i in (0..200).step_by(3) {
            a.set(i, true);
        }
        for i in (0..200).step_by(4) {
            b.set(i, true);
        }
        assert_eq!(a.and(&b).to_wah(), a.to_wah().and(&b.to_wah()));
        assert_eq!(a.or(&b).to_wah(), a.to_wah().or(&b.to_wah()));
        assert_eq!(a.xor(&b).to_wah(), a.to_wah().xor(&b.to_wah()));
        assert_eq!(a.not().to_wah(), a.to_wah().not());
    }

    #[test]
    fn iter_ones_matches() {
        let mut b = PlainBitmap::zeros(300);
        let pos = [0u64, 1, 63, 64, 65, 255, 299];
        for &p in &pos {
            b.set(p, true);
        }
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), pos);
    }

    #[test]
    fn not_masks_tail() {
        let b = PlainBitmap::zeros(10);
        let n = b.not();
        assert_eq!(n.count_ones(), 10);
        assert_eq!(n.len(), 10);
    }

    #[test]
    fn filter_positions_naive() {
        let mut b = PlainBitmap::zeros(100);
        b.set(10, true);
        b.set(20, true);
        let f = b.filter_positions(&[5, 10, 15, 20]);
        assert_eq!(f.len(), 4);
        assert!(!f.get(0));
        assert!(f.get(1));
        assert!(!f.get(2));
        assert!(f.get(3));
    }
}
