//! Word-level encoding of the 64-bit Word-Aligned Hybrid (WAH) scheme.
//!
//! A WAH-compressed bitmap is a sequence of 64-bit words, each covering one or
//! more *groups* of [`GROUP_BITS`] (= 63) bit positions:
//!
//! * **Literal word** — most significant bit is `0`; the low 63 bits carry one
//!   group verbatim (bit `i` of the word is bit `group*63 + i` of the bitmap,
//!   LSB first).
//! * **Fill word** — most significant bit is `1`; bit 62 is the fill value;
//!   the low 62 bits count how many consecutive all-zero / all-one groups the
//!   word represents.
//!
//! This module holds the raw constants and pure word-manipulation helpers on
//! which [`crate::Wah`] is built.

/// Number of bitmap positions covered by one literal word.
pub const GROUP_BITS: u64 = 63;

/// Flag bit distinguishing fill words from literal words.
pub const FILL_FLAG: u64 = 1 << 63;

/// Bit carrying the fill value (0-fill vs. 1-fill) inside a fill word.
pub const FILL_VALUE: u64 = 1 << 62;

/// Mask selecting the 63 payload bits of a literal word.
pub const LIT_MASK: u64 = (1 << 63) - 1;

/// Maximum group count representable by a single fill word.
pub const MAX_FILL_GROUPS: u64 = (1 << 62) - 1;

/// Returns `true` if `w` is a fill word.
#[inline(always)]
pub fn is_fill(w: u64) -> bool {
    w & FILL_FLAG != 0
}

/// Returns the fill value of a fill word (`true` = run of ones).
#[inline(always)]
pub fn fill_bit(w: u64) -> bool {
    w & FILL_VALUE != 0
}

/// Returns the number of groups encoded by a fill word.
#[inline(always)]
pub fn fill_groups(w: u64) -> u64 {
    w & MAX_FILL_GROUPS
}

/// Encodes a fill word covering `groups` groups of value `bit`.
///
/// `groups` must be in `1..=MAX_FILL_GROUPS`.
#[inline(always)]
pub fn make_fill(bit: bool, groups: u64) -> u64 {
    debug_assert!((1..=MAX_FILL_GROUPS).contains(&groups));
    FILL_FLAG | if bit { FILL_VALUE } else { 0 } | groups
}

/// The literal word whose 63 payload bits are all ones.
pub const ALL_ONES_LITERAL: u64 = LIT_MASK;

/// Expands a fill value to the literal group it repeats.
#[inline(always)]
pub fn fill_as_literal(bit: bool) -> u64 {
    if bit {
        ALL_ONES_LITERAL
    } else {
        0
    }
}

/// Number of ones contributed by one group of a fill word.
#[inline(always)]
pub fn fill_ones_per_group(bit: bool) -> u64 {
    if bit {
        GROUP_BITS
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_round_trip() {
        for &bit in &[false, true] {
            for &groups in &[1u64, 2, 63, 64, 1 << 20, MAX_FILL_GROUPS] {
                let w = make_fill(bit, groups);
                assert!(is_fill(w));
                assert_eq!(fill_bit(w), bit);
                assert_eq!(fill_groups(w), groups);
            }
        }
    }

    #[test]
    fn literal_is_not_fill() {
        assert!(!is_fill(0));
        assert!(!is_fill(ALL_ONES_LITERAL));
        assert!(!is_fill(0b1011));
    }

    #[test]
    fn fill_literal_expansion() {
        assert_eq!(fill_as_literal(false), 0);
        assert_eq!(fill_as_literal(true), LIT_MASK);
        assert_eq!(ALL_ONES_LITERAL.count_ones(), 63);
    }

    #[test]
    fn constants_are_consistent() {
        assert_eq!(GROUP_BITS, 63);
        assert_eq!(FILL_FLAG, 0x8000_0000_0000_0000);
        assert_eq!(FILL_VALUE, 0x4000_0000_0000_0000);
        assert_eq!(LIT_MASK, 0x7FFF_FFFF_FFFF_FFFF);
    }
}
