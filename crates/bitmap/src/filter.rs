//! *Bitmap filtering* — the gather primitive of the CODS decomposition
//! (Section 2.4 of the paper): shrink a bitmap by keeping only the bits at a
//! given list of positions, producing a new compressed bitmap directly,
//! without decompressing either input.
//!
//! Two drivers are provided: a sorted position list ([`Wah::filter_positions`])
//! and a selection mask ([`Wah::filter_bitmap`]), plus range extraction
//! ([`Wah::slice`]). All run in time linear in the number of compressed words
//! plus the number of selected positions that fall inside literal words —
//! fills are processed wholesale.

use crate::iter::{Run, RunIter};
use crate::wah::{lsb_mask, Wah};

/// Cursor over a bitmap's runs that can hand out arbitrary-length chunks,
/// splitting runs as needed.
pub(crate) struct RunCursor<'a> {
    iter: RunIter<'a>,
    cur: Option<Run>,
    /// Bits of `cur` already consumed.
    off: u64,
}

impl<'a> RunCursor<'a> {
    pub(crate) fn new(w: &'a Wah) -> Self {
        RunCursor {
            iter: w.iter_runs(),
            cur: None,
            off: 0,
        }
    }

    /// Remaining length of the current run, loading the next run if needed.
    /// Returns 0 at end of bitmap.
    pub(crate) fn remaining(&mut self) -> u64 {
        loop {
            match self.cur {
                Some(r) => {
                    let rem = r.len() - self.off;
                    if rem > 0 {
                        return rem;
                    }
                    self.cur = None;
                    self.off = 0;
                }
                None => match self.iter.next() {
                    Some(r) => {
                        self.cur = Some(r);
                        self.off = 0;
                    }
                    None => return 0,
                },
            }
        }
    }

    /// Takes a chunk of exactly `n` bits from the current run
    /// (`n <= self.remaining()`, and for literal runs `n` stays within the
    /// 63-bit word).
    pub(crate) fn take(&mut self, n: u64) -> Run {
        let r = self.cur.expect("take called with no current run");
        debug_assert!(n <= r.len() - self.off);
        let out = match r {
            Run::Fill { bit, .. } => Run::Fill { bit, len: n },
            Run::Literal { word, .. } => Run::Literal {
                word: (word >> self.off) & lsb_mask(n),
                len: n,
            },
        };
        self.off += n;
        out
    }

    /// Skips `n` bits (may span runs).
    pub(crate) fn skip(&mut self, mut n: u64) {
        while n > 0 {
            let rem = self.remaining();
            assert!(rem > 0, "skip past end of bitmap");
            let take = rem.min(n);
            self.off += take;
            n -= take;
        }
    }
}

/// Appends a chunk to an output bitmap.
fn append_chunk(out: &mut Wah, chunk: Run) {
    match chunk {
        Run::Fill { bit, len } => out.append_run(bit, len),
        Run::Literal { word, len } => out.push_bits(word, len),
    }
}

impl Wah {
    /// Gathers the bits at `positions` (non-decreasing, each `< self.len()`)
    /// into a new bitmap of length `positions.len()`.
    ///
    /// This is the paper's "bitmap filtering" step: given the *distinction*
    /// position list of a decomposition, each affected column bitmap is shrunk
    /// to the selected rows. Runs of the input are translated to runs of the
    /// output without per-bit work.
    ///
    /// ```
    /// use cods_bitmap::Wah;
    /// let b = Wah::from_sorted_positions([2u64, 5, 9].into_iter(), 12);
    /// let f = b.filter_positions(&[0, 2, 5, 9, 11]);
    /// assert_eq!(f.len(), 5);
    /// assert_eq!(f.to_positions(), vec![1, 2, 3]); // bits at 2, 5, 9 were set
    /// ```
    ///
    /// # Panics
    /// Panics if positions are decreasing or out of range.
    pub fn filter_positions(&self, positions: &[u64]) -> Wah {
        let mut out = Wah::new();
        let n = positions.len();
        let mut idx = 0usize;
        let mut base = 0u64;
        for run in self.iter_runs() {
            if idx == n {
                break;
            }
            let end = base + run.len();
            match run {
                Run::Fill { bit, .. } => {
                    let start = idx;
                    while idx < n && positions[idx] < end {
                        debug_assert!(positions[idx] >= base, "positions must be sorted");
                        idx += 1;
                    }
                    out.append_run(bit, (idx - start) as u64);
                }
                Run::Literal { word, .. } => {
                    while idx < n && positions[idx] < end {
                        debug_assert!(positions[idx] >= base, "positions must be sorted");
                        out.push((word >> (positions[idx] - base)) & 1 == 1);
                        idx += 1;
                    }
                }
            }
            base = end;
        }
        assert!(
            idx == n,
            "position {} out of range (bitmap length {})",
            positions[idx],
            self.len()
        );
        out
    }

    /// Gathers the bits of `self` at the set positions of `mask` into a new
    /// bitmap of length `mask.count_ones()`. Equivalent to
    /// `self.filter_positions(&mask.to_positions())` but never materializes
    /// the position list; both bitmaps are co-walked run by run.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn filter_bitmap(&self, mask: &Wah) -> Wah {
        assert_eq!(
            self.len(),
            mask.len(),
            "filter_bitmap length mismatch: {} vs {}",
            self.len(),
            mask.len()
        );
        let mut out = Wah::new();
        let mut data = RunCursor::new(self);
        let mut sel = RunCursor::new(mask);
        loop {
            let m_rem = sel.remaining();
            if m_rem == 0 {
                break;
            }
            let d_rem = data.remaining();
            debug_assert!(d_rem > 0);
            let n = m_rem.min(d_rem);
            let m_chunk = sel.take(n);
            match m_chunk {
                Run::Fill { bit: false, .. } => data.skip(n),
                Run::Fill { bit: true, .. } => {
                    let d_chunk = data.take(n);
                    append_chunk(&mut out, d_chunk);
                }
                Run::Literal { word: m_word, .. } => {
                    let d_chunk = data.take(n);
                    match d_chunk {
                        Run::Fill { bit, .. } => {
                            out.append_run(bit, u64::from(m_word.count_ones()));
                        }
                        Run::Literal { word: d_word, .. } => {
                            // Gather bits of d_word at set positions of m_word.
                            let mut m = m_word;
                            while m != 0 {
                                let b = m.trailing_zeros();
                                out.push((d_word >> b) & 1 == 1);
                                m &= m - 1;
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Extracts the bit range `[start, end)` as a new bitmap.
    ///
    /// # Panics
    /// Panics if `start > end` or `end > self.len()`.
    pub fn slice(&self, start: u64, end: u64) -> Wah {
        assert!(start <= end && end <= self.len(), "invalid slice range");
        let mut out = Wah::new();
        let mut cur = RunCursor::new(self);
        cur.skip(start);
        let mut remaining = end - start;
        while remaining > 0 {
            let rem = cur.remaining();
            debug_assert!(rem > 0);
            let n = rem.min(remaining);
            let chunk = cur.take(n);
            append_chunk(&mut out, chunk);
            remaining -= n;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Wah {
        // zeros [0,100), ones [100,300), pattern [300,363), zeros to 1000.
        let mut w = Wah::new();
        w.append_run(false, 100);
        w.append_run(true, 200);
        for i in 0..63u64 {
            w.push(i % 2 == 0);
        }
        w.append_run(false, 1000 - 363);
        w
    }

    #[test]
    fn filter_positions_matches_get() {
        let w = sample();
        let positions: Vec<u64> = (0..1000).step_by(7).collect();
        let f = w.filter_positions(&positions);
        f.check_invariants().unwrap();
        assert_eq!(f.len(), positions.len() as u64);
        for (j, &p) in positions.iter().enumerate() {
            assert_eq!(f.get(j as u64), w.get(p), "position {p}");
        }
    }

    #[test]
    fn filter_positions_empty_list() {
        let f = sample().filter_positions(&[]);
        assert!(f.is_empty());
    }

    #[test]
    fn filter_positions_all() {
        let w = sample();
        let all: Vec<u64> = (0..w.len()).collect();
        assert_eq!(w.filter_positions(&all), w);
    }

    #[test]
    fn filter_positions_allows_duplicates() {
        let w = Wah::from_sorted_positions([5u64], 10);
        let f = w.filter_positions(&[5, 5, 5]);
        assert_eq!(f.len(), 3);
        assert_eq!(f.count_ones(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn filter_positions_out_of_range() {
        let _ = sample().filter_positions(&[999, 1000]);
    }

    #[test]
    fn filter_bitmap_equals_filter_positions() {
        let w = sample();
        let positions: Vec<u64> = (0..1000).step_by(3).collect();
        let mask = Wah::from_sorted_positions(positions.iter().copied(), 1000);
        assert_eq!(w.filter_bitmap(&mask), w.filter_positions(&positions));
    }

    #[test]
    fn filter_bitmap_with_fill_masks() {
        let w = sample();
        // All-ones mask is identity.
        assert_eq!(w.filter_bitmap(&Wah::ones(1000)), w);
        // All-zeros mask is empty.
        assert!(w.filter_bitmap(&Wah::zeros(1000)).is_empty());
        // Half mask keeps exactly the second half.
        let mut half = Wah::zeros(500);
        half.append_run(true, 500);
        assert_eq!(w.filter_bitmap(&half), w.slice(500, 1000));
    }

    #[test]
    fn slice_matches_get() {
        let w = sample();
        for (s, e) in [
            (0u64, 0u64),
            (0, 1000),
            (50, 150),
            (99, 101),
            (300, 363),
            (363, 364),
        ] {
            let sl = w.slice(s, e);
            sl.check_invariants().unwrap();
            assert_eq!(sl.len(), e - s);
            for i in 0..(e - s) {
                assert_eq!(sl.get(i), w.get(s + i), "slice ({s},{e}) bit {i}");
            }
        }
    }

    #[test]
    fn slice_then_concat_is_identity() {
        let w = sample();
        let a = w.slice(0, 400);
        let b = w.slice(400, 1000);
        assert_eq!(a.concat(&b), w);
    }

    #[test]
    #[should_panic(expected = "invalid slice range")]
    fn slice_bad_range_panics() {
        let _ = sample().slice(5, 4);
    }

    #[test]
    fn filter_preserves_compression() {
        // Filtering a long 1-fill with a long dense position range must stay
        // compressed (runs in → runs out, no per-bit blowup).
        let w = Wah::ones(63 * 10_000);
        let positions: Vec<u64> = (0..63 * 10_000).step_by(2).collect();
        let f = w.filter_positions(&positions);
        assert!(
            f.words().len() <= 2,
            "expected pure fill, got {} words",
            f.words().len()
        );
        assert_eq!(f.count_ones(), f.len());
    }
}
