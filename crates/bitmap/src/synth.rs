//! Direct synthesis of compressed bitmaps for the mergence operators
//! (Section 2.5 of the paper).
//!
//! General mergence lays the output table out clustered by join value: a join
//! value occupying rows `[offset, offset + ones)` gets a *fill-run* bitmap
//! ([`Wah::ones_run`]); an S-side attribute value repeats in consecutive
//! blocks; a T-side attribute value repeats at a fixed stride
//! ([`Wah::strided`]). All three shapes are emitted as fills and short
//! literals without touching individual rows.

use crate::wah::Wah;

impl Wah {
    /// Bitmap of length `len` with ones exactly in `[offset, offset + ones)`.
    ///
    /// # Panics
    /// Panics if the run exceeds `len`.
    pub fn ones_run(offset: u64, ones: u64, len: u64) -> Wah {
        assert!(
            offset.checked_add(ones).is_some_and(|e| e <= len),
            "run [{offset}, {offset}+{ones}) exceeds length {len}"
        );
        let mut w = Wah::new();
        w.append_run(false, offset);
        w.append_run(true, ones);
        w.append_run(false, len - offset - ones);
        w
    }

    /// Bitmap of length `len` with `count` ones at positions
    /// `offset, offset + stride, offset + 2*stride, …` (`stride >= 1`).
    ///
    /// This is the "non-consecutive way but with the same distance" placement
    /// the paper uses for T-side attribute values in general mergence.
    ///
    /// # Panics
    /// Panics if the last position would be `>= len` or `stride == 0`.
    pub fn strided(offset: u64, stride: u64, count: u64, len: u64) -> Wah {
        assert!(stride >= 1, "stride must be >= 1");
        if count > 0 {
            let last = offset + stride * (count - 1);
            assert!(last < len, "strided position {last} out of range {len}");
        }
        Wah::from_sorted_positions((0..count).map(|i| offset + i * stride), len)
    }

    /// Bitmap of length `len * factor` where every bit of `self` is repeated
    /// `factor` times in place (`abc` → `aabbcc` for factor 2).
    pub fn repeat_each(&self, factor: u64) -> Wah {
        let mut out = Wah::new();
        if factor == 0 {
            return out;
        }
        for run in self.iter_runs() {
            match run {
                crate::iter::Run::Fill { bit, len } => out.append_run(bit, len * factor),
                crate::iter::Run::Literal { word, len } => {
                    for i in 0..len {
                        out.append_run((word >> i) & 1 == 1, factor);
                    }
                }
            }
        }
        out
    }

    /// Bitmap consisting of `self` repeated `times` times back to back.
    pub fn tile(&self, times: u64) -> Wah {
        let mut out = Wah::new();
        for _ in 0..times {
            out.append_bitmap(self);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ones_run_shapes() {
        let w = Wah::ones_run(10, 5, 100);
        assert_eq!(w.len(), 100);
        assert_eq!(w.count_ones(), 5);
        assert_eq!(w.first_one(), Some(10));
        assert_eq!(w.last_one(), Some(14));

        assert_eq!(Wah::ones_run(0, 0, 10).count_ones(), 0);
        assert_eq!(Wah::ones_run(0, 10, 10), Wah::ones(10));
    }

    #[test]
    #[should_panic(expected = "exceeds length")]
    fn ones_run_overflow_panics() {
        let _ = Wah::ones_run(8, 5, 10);
    }

    #[test]
    fn strided_positions() {
        let w = Wah::strided(3, 7, 5, 40);
        assert_eq!(w.to_positions(), vec![3, 10, 17, 24, 31]);
        let empty = Wah::strided(0, 1, 0, 10);
        assert_eq!(empty.count_ones(), 0);
        // stride 1 is a run
        assert_eq!(Wah::strided(2, 1, 4, 10), Wah::ones_run(2, 4, 10));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn strided_out_of_range_panics() {
        let _ = Wah::strided(5, 10, 3, 20);
    }

    #[test]
    fn repeat_each_small() {
        let w = Wah::from_bits([true, false, true]);
        let r = w.repeat_each(3);
        assert_eq!(
            r.iter_bits().collect::<Vec<_>>(),
            vec![true, true, true, false, false, false, true, true, true]
        );
        assert_eq!(w.repeat_each(0), Wah::new());
        assert_eq!(w.repeat_each(1), w);
    }

    #[test]
    fn repeat_each_fill_stays_compressed() {
        let w = Wah::ones(63 * 100);
        let r = w.repeat_each(1000);
        assert_eq!(r.len(), 63 * 100 * 1000);
        assert_eq!(r.count_ones(), r.len());
        assert!(r.words().len() <= 2);
    }

    #[test]
    fn tile_round_trip() {
        let w = Wah::from_sorted_positions([1u64, 5], 10);
        let t = w.tile(3);
        assert_eq!(t.len(), 30);
        assert_eq!(t.to_positions(), vec![1, 5, 11, 15, 21, 25]);
        assert_eq!(w.tile(0), Wah::new());
    }
}
