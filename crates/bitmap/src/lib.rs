//! # cods-bitmap
//!
//! Compressed bitmap kernel for the CODS reproduction (Liu et al., *CODS:
//! Evolving Data Efficiently and Scalably in Column Oriented Databases*,
//! VLDB 2010).
//!
//! The centerpiece is [`Wah`], a 64-bit Word-Aligned Hybrid compressed bitmap
//! (Wu, Otoo & Shoshani, TODS 2006 — reference \[9\] of the paper). Every
//! column of the CODS column store is a dictionary plus one `Wah` bitmap per
//! distinct value, and every data-level evolution operator is expressed in
//! the algebra provided here:
//!
//! * **logical ops on compressed form** — [`Wah::and`], [`Wah::or`],
//!   [`Wah::xor`], [`Wah::and_not`], [`Wah::not`] ([`ops`]);
//! * **bitmap filtering** (the decomposition gather) —
//!   [`Wah::filter_positions`], [`Wah::filter_bitmap`], [`Wah::slice`]
//!   ([`filter`]);
//! * **direct synthesis** (the mergence layouts) — [`Wah::ones_run`],
//!   [`Wah::strided`], [`Wah::repeat_each`], [`Wah::tile`] ([`synth`]);
//! * **single-pass construction** — [`OneStreamBuilder`],
//!   [`ValueStreamBuilder`] ([`builder`]);
//! * **concatenation** for UNION TABLES — [`Wah::append_bitmap`],
//!   [`Wah::concat`].
//!
//! [`PlainBitmap`] (uncompressed) and [`RleSeq`] (run-length encoded value
//! sequences, for sorted columns) complete the encoding menu; the former is
//! also the oracle for the property-test suite.
//!
//! ## Example
//!
//! ```
//! use cods_bitmap::Wah;
//!
//! // A sparse column bitmap over ten million rows…
//! let hits = Wah::from_sorted_positions((0..100u64).map(|i| i * 99_991), 10_000_000);
//! // …occupies a few hundred bytes, not 1.25 MB.
//! assert!(hits.size_bytes() < 4096);
//!
//! // Evolution never decompresses: filtering to 1000 sampled rows stays
//! // in compressed space.
//! let sampled: Vec<u64> = (0..1000u64).map(|i| i * 9973).collect();
//! let shrunk = hits.filter_positions(&sampled);
//! assert_eq!(shrunk.len(), 1000);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod builder;
pub mod codec;
pub mod filter;
pub mod iter;
pub mod ops;
pub mod plain;
pub mod rle;
pub mod segment;
pub mod synth;
pub mod wah;
pub mod word;

pub use builder::{OneStreamBuilder, ValueStreamBuilder};
pub use codec::CodecError;
pub use iter::{IntervalIter, OnesIter, Run, RunIter};
pub use ops::BinOp;
pub use plain::PlainBitmap;
pub use rle::RleSeq;
pub use wah::Wah;
