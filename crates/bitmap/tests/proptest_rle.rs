//! Property tests of the RLE sequence encoding against a Vec<u32> model.

use cods_bitmap::RleSeq;
use proptest::prelude::*;

fn small_ids() -> impl Strategy<Value = Vec<u32>> {
    // Low-cardinality with runs: realistic for sorted/clustered columns.
    prop::collection::vec((0u32..6, 1u64..20), 0..30).prop_map(|runs| {
        runs.into_iter()
            .flat_map(|(v, n)| std::iter::repeat_n(v, n as usize))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn round_trip(ids in small_ids()) {
        let seq: RleSeq = ids.iter().copied().collect();
        prop_assert_eq!(seq.iter().collect::<Vec<_>>(), ids.clone());
        prop_assert_eq!(seq.len(), ids.len() as u64);
        // Runs never exceed the number of value changes + 1.
        let changes = ids.windows(2).filter(|w| w[0] != w[1]).count();
        prop_assert!(seq.num_runs() <= changes + 1);
    }

    #[test]
    fn get_matches_model(ids in small_ids()) {
        prop_assume!(!ids.is_empty());
        let seq: RleSeq = ids.iter().copied().collect();
        for (i, &v) in ids.iter().enumerate() {
            prop_assert_eq!(seq.get(i as u64), v);
        }
    }

    #[test]
    fn filter_matches_model(ids in small_ids(), picks in prop::collection::vec(any::<u16>(), 0..50)) {
        prop_assume!(!ids.is_empty());
        let seq: RleSeq = ids.iter().copied().collect();
        let mut positions: Vec<u64> = picks
            .iter()
            .map(|&p| u64::from(p) % ids.len() as u64)
            .collect();
        positions.sort_unstable();
        let filtered = seq.filter_positions(&positions);
        let expect: Vec<u32> = positions.iter().map(|&p| ids[p as usize]).collect();
        prop_assert_eq!(filtered.iter().collect::<Vec<_>>(), expect);
    }

    #[test]
    fn slice_concat_identity(ids in small_ids(), cut in any::<prop::sample::Index>()) {
        prop_assume!(!ids.is_empty());
        let seq: RleSeq = ids.iter().copied().collect();
        let c = cut.index(ids.len()) as u64;
        let mut joined = seq.slice(0, c);
        joined.append_seq(&seq.slice(c, seq.len()));
        prop_assert_eq!(joined, seq);
    }

    #[test]
    fn codec_round_trip(ids in small_ids()) {
        let seq: RleSeq = ids.iter().copied().collect();
        let mut buf = bytes::BytesMut::new();
        seq.encode(&mut buf);
        let back = RleSeq::decode(&mut buf.freeze()).unwrap();
        prop_assert_eq!(back, seq);
    }
}
