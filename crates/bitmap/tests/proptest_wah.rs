//! Property tests: the WAH implementation against the uncompressed
//! [`PlainBitmap`] oracle, over adversarial bit patterns (random literals,
//! long runs, group-boundary straddles).

use cods_bitmap::{PlainBitmap, Wah};
use proptest::prelude::*;

/// Strategy producing bit vectors with a healthy mix of runs and noise,
/// biased toward group-boundary (63/126/…) lengths.
fn bit_vector() -> impl Strategy<Value = Vec<bool>> {
    let piece = prop_oneof![
        // Random literal chunk.
        prop::collection::vec(any::<bool>(), 0..80),
        // Homogeneous run with length around group boundaries.
        (any::<bool>(), 0usize..200).prop_map(|(b, n)| vec![b; n]),
        (
            any::<bool>(),
            prop_oneof![Just(62usize), Just(63), Just(64), Just(126), Just(189)]
        )
            .prop_map(|(b, n)| vec![b; n]),
    ];
    prop::collection::vec(piece, 0..8).prop_map(|chunks| chunks.concat())
}

fn to_wah(bits: &[bool]) -> Wah {
    Wah::from_bits(bits.iter().copied())
}

fn to_plain(bits: &[bool]) -> PlainBitmap {
    let mut p = PlainBitmap::new();
    for &b in bits {
        p.push(b);
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn construction_matches_oracle(bits in bit_vector()) {
        let w = to_wah(&bits);
        w.check_invariants().unwrap();
        prop_assert_eq!(w.len(), bits.len() as u64);
        prop_assert_eq!(w.count_ones(), bits.iter().filter(|&&b| b).count() as u64);
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(w.get(i as u64), b);
        }
    }

    #[test]
    fn binary_ops_match_oracle(a in bit_vector(), b in bit_vector()) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let (wa, wb) = (to_wah(a), to_wah(b));
        let (pa, pb) = (to_plain(a), to_plain(b));
        prop_assert_eq!(wa.and(&wb), pa.and(&pb).to_wah());
        prop_assert_eq!(wa.or(&wb), pa.or(&pb).to_wah());
        prop_assert_eq!(wa.xor(&wb), pa.xor(&pb).to_wah());
        prop_assert_eq!(wa.and_not(&wb), pa.and(&pb.not()).to_wah());
        prop_assert_eq!(wa.is_disjoint(&wb), pa.and(&pb).count_ones() == 0);
    }

    #[test]
    fn not_matches_oracle(bits in bit_vector()) {
        let w = to_wah(&bits);
        let n = w.not();
        n.check_invariants().unwrap();
        prop_assert_eq!(n, to_plain(&bits).not().to_wah());
    }

    #[test]
    fn ones_iterator_matches_oracle(bits in bit_vector()) {
        let w = to_wah(&bits);
        let expected: Vec<u64> = bits
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i as u64))
            .collect();
        prop_assert_eq!(w.iter_ones().collect::<Vec<_>>(), expected);
    }

    #[test]
    fn rank_select_consistency(bits in bit_vector()) {
        let w = to_wah(&bits);
        let ones = w.count_ones();
        for k in 0..ones {
            let p = w.select1(k).unwrap();
            prop_assert!(w.get(p));
            prop_assert_eq!(w.rank1(p), k);
        }
        prop_assert_eq!(w.select1(ones), None);
        prop_assert_eq!(w.rank1(w.len()), ones);
    }

    #[test]
    fn filter_positions_matches_oracle(
        bits in bit_vector(),
        seed in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        prop_assume!(!bits.is_empty());
        let w = to_wah(&bits);
        let mut positions: Vec<u64> =
            seed.iter().map(|&s| u64::from(s) % bits.len() as u64).collect();
        positions.sort_unstable();
        let f = w.filter_positions(&positions);
        f.check_invariants().unwrap();
        prop_assert_eq!(f.len(), positions.len() as u64);
        for (j, &p) in positions.iter().enumerate() {
            prop_assert_eq!(f.get(j as u64), bits[p as usize]);
        }
    }

    #[test]
    fn filter_bitmap_matches_filter_positions(bits in bit_vector(), mask in bit_vector()) {
        let n = bits.len().min(mask.len());
        let (bits, mask) = (&bits[..n], &mask[..n]);
        let w = to_wah(bits);
        let m = to_wah(mask);
        let positions: Vec<u64> = m.iter_ones().collect();
        prop_assert_eq!(w.filter_bitmap(&m), w.filter_positions(&positions));
    }

    #[test]
    fn slice_concat_identity(bits in bit_vector(), cut in any::<prop::sample::Index>()) {
        prop_assume!(!bits.is_empty());
        let w = to_wah(&bits);
        let c = cut.index(bits.len()) as u64;
        let joined = w.slice(0, c).concat(&w.slice(c, w.len()));
        joined.check_invariants().unwrap();
        prop_assert_eq!(joined, w);
    }

    #[test]
    fn concat_matches_oracle(a in bit_vector(), b in bit_vector()) {
        let w = to_wah(&a).concat(&to_wah(&b));
        w.check_invariants().unwrap();
        let mut all = a;
        all.extend_from_slice(&b);
        prop_assert_eq!(w, to_wah(&all));
    }

    #[test]
    fn codec_round_trip(bits in bit_vector()) {
        let w = to_wah(&bits);
        let mut buf = bytes::BytesMut::new();
        w.encode(&mut buf);
        prop_assert_eq!(buf.len(), w.encoded_len());
        let back = Wah::decode(&mut buf.freeze()).unwrap();
        prop_assert_eq!(back, w);
    }

    #[test]
    fn from_sorted_positions_round_trip(
        raw in prop::collection::btree_set(0u64..5000, 0..64),
        extra in 0u64..100,
    ) {
        let positions: Vec<u64> = raw.into_iter().collect();
        let len = positions.last().map_or(0, |&p| p + 1) + extra;
        let w = Wah::from_sorted_positions(positions.iter().copied(), len);
        w.check_invariants().unwrap();
        prop_assert_eq!(w.to_positions(), positions);
    }

    #[test]
    fn repeat_each_matches_naive(bits in bit_vector(), factor in 0u64..5) {
        let w = to_wah(&bits).repeat_each(factor);
        w.check_invariants().unwrap();
        let expected: Vec<bool> = bits
            .iter()
            .flat_map(|&b| std::iter::repeat_n(b, factor as usize))
            .collect();
        prop_assert_eq!(w, to_wah(&expected));
    }

    #[test]
    fn append_run_equivalent_to_pushes(runs in prop::collection::vec((any::<bool>(), 0u64..200), 0..10)) {
        let mut by_run = Wah::new();
        let mut by_push = Wah::new();
        for &(bit, n) in &runs {
            by_run.append_run(bit, n);
            for _ in 0..n {
                by_push.push(bit);
            }
        }
        by_run.check_invariants().unwrap();
        prop_assert_eq!(by_run, by_push);
    }
}
