//! Tests that the query-level baselines actually pay the costs the paper
//! attributes to them — scans, distinct hashing, index maintenance,
//! journaling — by checking the work counters, not just the results.

use cods_query::{decompose_row_level, merge_row_level, EvolutionReport};
use cods_rowstore::{InsertPolicy, RowDb};
use cods_storage::{Schema, Value, ValueType};

fn schema() -> Schema {
    Schema::build(
        &[
            ("entity", ValueType::Int),
            ("attr", ValueType::Int),
            ("detail", ValueType::Int),
        ],
        &[],
    )
    .unwrap()
}

fn load(policy: InsertPolicy, rows: u64, distinct: i64) -> RowDb {
    let mut db = RowDb::new(policy);
    db.create_table("R", schema()).unwrap();
    let table = db.table_mut("R").unwrap();
    for i in 0..rows {
        table
            .insert(&[
                Value::int(i as i64 % distinct),
                Value::int(i as i64),
                Value::int((i as i64 % distinct) * 3),
            ])
            .unwrap();
    }
    db
}

fn run_decompose(db: &mut RowDb, with_indexes: bool) -> EvolutionReport {
    decompose_row_level(
        db,
        "R",
        "S",
        &["entity", "attr"],
        "T",
        &["entity", "detail"],
        &["entity"],
        with_indexes,
    )
    .unwrap()
}

#[test]
fn every_tuple_is_read_and_written() {
    let mut db = load(InsertPolicy::Batch, 5_000, 100);
    let report = run_decompose(&mut db, false);
    assert_eq!(report.tuples_read, 5_000);
    // S gets all 5k; T gets the 100 distinct entities.
    assert_eq!(report.tuples_written, 5_100);
    let step_names: Vec<&str> = report.steps.iter().map(|(n, _)| n.as_str()).collect();
    assert!(step_names.contains(&"scan input"));
    assert!(step_names.contains(&"insert right (distinct)"));
}

#[test]
fn indexed_mode_populates_indexes() {
    let mut db = load(InsertPolicy::Indexed, 5_000, 100);
    run_decompose(&mut db, true);
    assert_eq!(db.table("S").unwrap().indexes()[0].len(), 5_000);
    assert_eq!(db.table("T").unwrap().indexes()[0].len(), 100);
    assert_eq!(db.table("T").unwrap().indexes()[0].distinct_keys(), 100);
}

#[test]
fn journaled_mode_pays_per_row() {
    let mut db = load(InsertPolicy::JournaledAutocommit, 2_000, 50);
    let (pages_before, commits_before) = db.journal_stats();
    assert_eq!(
        (pages_before, commits_before),
        (0, 0),
        "setup must not journal"
    );
    run_decompose(&mut db, false);
    let (pages, commits) = db.journal_stats();
    // One transaction per inserted row: 2000 into S + 50 into T.
    assert_eq!(commits, 2_050);
    assert_eq!(pages, 2_050);
}

#[test]
fn merge_reads_both_sides_and_writes_the_join() {
    let mut db = load(InsertPolicy::Batch, 3_000, 60);
    run_decompose(&mut db, false);
    let report = merge_row_level(&mut db, "S", "T", "R2", &["entity"], false).unwrap();
    assert_eq!(report.tuples_read, 3_000 + 60);
    assert_eq!(report.tuples_written, 3_000);
    assert_eq!(db.table("R2").unwrap().row_count(), 3_000);
}

#[test]
fn report_status_log_renders_all_steps() {
    let mut db = load(InsertPolicy::Batch, 500, 10);
    let report = run_decompose(&mut db, false);
    let log = report.status_log();
    for (name, _) in &report.steps {
        assert!(log.contains(name.as_str()), "missing {name}");
    }
}
