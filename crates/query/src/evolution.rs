//! **Query-level data evolution** — the baselines CODS is measured against
//! (the right-hand path of Figure 2 in the paper).
//!
//! Evolving data at query level means executing the evolution as SQL:
//!
//! ```sql
//! INSERT INTO S SELECT employee, skill FROM R;
//! INSERT INTO T SELECT DISTINCT employee, address FROM R;
//! ```
//!
//! On a row store that is a full scan + tuple decode, hash DISTINCT, and
//! row-at-a-time re-insert (plus index maintenance for "C+I", plus rollback
//! journaling for the SQLite-like "S"). On a column store it additionally
//! requires *decompressing* every column into tuples and *re-compressing*
//! the results into fresh bitmaps. Both drivers below pay those costs
//! faithfully; `cods::decompose` / `cods::merge` are the data-level
//! alternative that avoids them.

use crate::tuple;
use cods_rowstore::RowDb;
use cods_storage::{Catalog, Schema, StorageError, Table, Value};
use std::time::{Duration, Instant};

/// Work report for one evolution execution: step timings plus tuple counts.
#[derive(Clone, Debug, Default)]
pub struct EvolutionReport {
    /// Tuples read (materialized) from the inputs.
    pub tuples_read: u64,
    /// Tuples written into the outputs.
    pub tuples_written: u64,
    /// Named step timings, in execution order.
    pub steps: Vec<(String, Duration)>,
    /// Total wall time.
    pub elapsed: Duration,
}

impl EvolutionReport {
    fn step(&mut self, name: &str, started: Instant) -> Instant {
        let now = Instant::now();
        self.steps.push((name.to_string(), now - started));
        now
    }

    /// Renders the step log, one line per step (the "Data Evolution Status"
    /// panel of the demo).
    pub fn status_log(&self) -> String {
        let mut out = String::new();
        for (name, d) in &self.steps {
            out.push_str(&format!("{name}: {:.3} ms\n", d.as_secs_f64() * 1e3));
        }
        out
    }
}

fn positions(schema: &Schema, names: &[&str]) -> Result<Vec<usize>, StorageError> {
    names.iter().map(|n| schema.index_of(n)).collect()
}

// ---------------------------------------------------------------------
// Row-store drivers (baselines C, C+I, S — policy picked by the RowDb)
// ---------------------------------------------------------------------

/// Decomposes `input` into `left` (inserted verbatim) and `right` (inserted
/// with DISTINCT) on a row store, exactly as the two SQL statements of
/// Section 1. When `with_indexes` is set, B-tree indexes on the common
/// (join) columns are declared on both outputs before loading, so every
/// insert pays index maintenance — the "C+I" configuration.
#[allow(clippy::too_many_arguments)]
pub fn decompose_row_level(
    db: &mut RowDb,
    input: &str,
    left_name: &str,
    left_cols: &[&str],
    right_name: &str,
    right_cols: &[&str],
    common_cols: &[&str],
    with_indexes: bool,
) -> Result<EvolutionReport, StorageError> {
    let mut report = EvolutionReport::default();
    let t0 = Instant::now();
    let mut mark = t0;

    // Full scan, decoding every tuple.
    let input_schema = db.table(input)?.schema().clone();
    let rows: Vec<Vec<Value>> = db.table(input)?.scan().map(|(_, r)| r).collect();
    report.tuples_read = rows.len() as u64;
    mark = report.step("scan input", mark);

    // CREATE TABLE left / right (+ indexes for C+I).
    let left_schema = input_schema.project(left_cols, &[])?;
    let right_schema = input_schema.project(right_cols, common_cols)?;
    db.create_table(left_name, left_schema)?;
    db.create_table(right_name, right_schema)?;
    if with_indexes {
        let li = positions(db.table(left_name)?.schema(), common_cols)?;
        db.table_mut(left_name)?.create_index(li)?;
        let ri = positions(db.table(right_name)?.schema(), common_cols)?;
        db.table_mut(right_name)?.create_index(ri)?;
    }
    mark = report.step("create output tables", mark);

    // INSERT INTO left SELECT cols FROM input.
    let lpos = positions(&input_schema, left_cols)?;
    let left_rows = tuple::project(&rows, &lpos);
    report.tuples_written += left_rows.len() as u64;
    db.insert_many(left_name, left_rows.iter().map(|r| r.as_slice()))?;
    mark = report.step("insert left (verbatim)", mark);

    // INSERT INTO right SELECT DISTINCT cols FROM input.
    let rpos = positions(&input_schema, right_cols)?;
    let right_rows = tuple::distinct(tuple::project(&rows, &rpos));
    report.tuples_written += right_rows.len() as u64;
    db.insert_many(right_name, right_rows.iter().map(|r| r.as_slice()))?;
    mark = report.step("insert right (distinct)", mark);

    let _ = mark;
    report.elapsed = t0.elapsed();
    Ok(report)
}

/// Merges `left` and `right` into `output` on a row store via hash join +
/// re-insert. Output columns are left's columns followed by right's
/// non-join columns.
pub fn merge_row_level(
    db: &mut RowDb,
    left_name: &str,
    right_name: &str,
    output: &str,
    join_cols: &[&str],
    with_indexes: bool,
) -> Result<EvolutionReport, StorageError> {
    let mut report = EvolutionReport::default();
    let t0 = Instant::now();
    let mut mark = t0;

    let left_schema = db.table(left_name)?.schema().clone();
    let right_schema = db.table(right_name)?.schema().clone();
    let left_rows: Vec<Vec<Value>> = db.table(left_name)?.scan().map(|(_, r)| r).collect();
    let right_rows: Vec<Vec<Value>> = db.table(right_name)?.scan().map(|(_, r)| r).collect();
    report.tuples_read = (left_rows.len() + right_rows.len()) as u64;
    mark = report.step("scan inputs", mark);

    let lk = positions(&left_schema, join_cols)?;
    let rk = positions(&right_schema, join_cols)?;
    let joined = tuple::hash_join(&left_rows, &right_rows, &lk, &rk);
    mark = report.step("hash join", mark);

    // Output schema: left columns ++ right non-join columns.
    let mut out_cols: Vec<&str> = left_schema.names();
    let right_payload: Vec<&str> = right_schema
        .names()
        .into_iter()
        .filter(|n| !join_cols.contains(n))
        .collect();
    out_cols.extend(right_payload);
    let mut combined = left_schema.columns().to_vec();
    for (i, c) in right_schema.columns().iter().enumerate() {
        if !rk.contains(&i) {
            combined.push(c.clone());
        }
    }
    let out_schema = Schema::new(combined)?;
    db.create_table(output, out_schema)?;
    if with_indexes {
        let ji = positions(db.table(output)?.schema(), join_cols)?;
        db.table_mut(output)?.create_index(ji)?;
    }
    mark = report.step("create output table", mark);

    report.tuples_written = joined.len() as u64;
    db.insert_many(output, joined.iter().map(|r| r.as_slice()))?;
    mark = report.step("insert join result", mark);

    let _ = mark;
    report.elapsed = t0.elapsed();
    Ok(report)
}

// ---------------------------------------------------------------------
// Column-store driver (baseline M — query-level evolution on a column store)
// ---------------------------------------------------------------------

/// Decomposes a column-store table at query level: decompress → project /
/// distinct on tuples → rebuild dictionaries and re-compress bitmaps.
/// This is the expensive path of Figure 2 that CODS avoids.
pub fn decompose_column_level(
    catalog: &Catalog,
    input: &str,
    left_name: &str,
    left_cols: &[&str],
    right_name: &str,
    right_cols: &[&str],
    common_cols: &[&str],
) -> Result<EvolutionReport, StorageError> {
    let mut report = EvolutionReport::default();
    let t0 = Instant::now();
    let mut mark = t0;

    let input_table = catalog.get(input)?;
    // Decompression: every column is decoded and merged into tuples.
    let rows = input_table.to_rows();
    report.tuples_read = rows.len() as u64;
    mark = report.step("decompress input to tuples", mark);

    let left_schema = input_table.schema().project(left_cols, &[])?;
    let lpos = positions(input_table.schema(), left_cols)?;
    let left_rows = tuple::project(&rows, &lpos);
    mark = report.step("project left", mark);
    // Re-compression: dictionaries and bitmaps rebuilt from scratch.
    let left_table = Table::from_rows(left_name, left_schema, &left_rows)?;
    report.tuples_written += left_rows.len() as u64;
    mark = report.step("re-compress left", mark);

    let right_schema = input_table.schema().project(right_cols, common_cols)?;
    let rpos = positions(input_table.schema(), right_cols)?;
    let right_rows = tuple::distinct(tuple::project(&rows, &rpos));
    mark = report.step("project + distinct right", mark);
    let right_table = Table::from_rows(right_name, right_schema, &right_rows)?;
    report.tuples_written += right_rows.len() as u64;
    mark = report.step("re-compress right", mark);

    catalog.create(left_table)?;
    catalog.create(right_table)?;
    let _ = mark;
    report.elapsed = t0.elapsed();
    Ok(report)
}

/// Merges two column-store tables at query level: decompress both → hash
/// join on tuples → re-compress the result.
pub fn merge_column_level(
    catalog: &Catalog,
    left_name: &str,
    right_name: &str,
    output: &str,
    join_cols: &[&str],
) -> Result<EvolutionReport, StorageError> {
    let mut report = EvolutionReport::default();
    let t0 = Instant::now();
    let mut mark = t0;

    let left = catalog.get(left_name)?;
    let right = catalog.get(right_name)?;
    let left_rows = left.to_rows();
    let right_rows = right.to_rows();
    report.tuples_read = (left_rows.len() + right_rows.len()) as u64;
    mark = report.step("decompress inputs to tuples", mark);

    let lk = positions(left.schema(), join_cols)?;
    let rk = positions(right.schema(), join_cols)?;
    let joined = tuple::hash_join(&left_rows, &right_rows, &lk, &rk);
    mark = report.step("hash join", mark);

    let mut combined = left.schema().columns().to_vec();
    for (i, c) in right.schema().columns().iter().enumerate() {
        if !rk.contains(&i) {
            combined.push(c.clone());
        }
    }
    let out_schema = Schema::new(combined)?;
    let out_table = Table::from_rows(output, out_schema, &joined)?;
    report.tuples_written = joined.len() as u64;
    mark = report.step("re-compress result", mark);

    catalog.create(out_table)?;
    let _ = mark;
    report.elapsed = t0.elapsed();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cods_rowstore::InsertPolicy;
    use cods_storage::ValueType;

    fn figure1_rows() -> Vec<Vec<Value>> {
        [
            ("Jones", "Typing", "425 Grant Ave"),
            ("Jones", "Shorthand", "425 Grant Ave"),
            ("Roberts", "Light Cleaning", "747 Industrial Way"),
            ("Ellis", "Alchemy", "747 Industrial Way"),
            ("Jones", "Whittling", "425 Grant Ave"),
            ("Ellis", "Juggling", "747 Industrial Way"),
            ("Harrison", "Light Cleaning", "425 Grant Ave"),
        ]
        .iter()
        .map(|&(e, s, a)| vec![Value::str(e), Value::str(s), Value::str(a)])
        .collect()
    }

    fn r_schema() -> Schema {
        Schema::build(
            &[
                ("employee", ValueType::Str),
                ("skill", ValueType::Str),
                ("address", ValueType::Str),
            ],
            &[],
        )
        .unwrap()
    }

    fn row_db(policy: InsertPolicy) -> RowDb {
        let mut db = RowDb::new(policy);
        db.create_table("R", r_schema()).unwrap();
        for row in figure1_rows() {
            db.insert("R", &row).unwrap();
        }
        db
    }

    #[test]
    fn row_level_decompose_matches_figure1() {
        let mut db = row_db(InsertPolicy::Batch);
        let report = decompose_row_level(
            &mut db,
            "R",
            "S",
            &["employee", "skill"],
            "T",
            &["employee", "address"],
            &["employee"],
            false,
        )
        .unwrap();
        assert_eq!(report.tuples_read, 7);
        assert_eq!(db.table("S").unwrap().row_count(), 7);
        assert_eq!(db.table("T").unwrap().row_count(), 4); // 4 distinct employees
        assert!(report.status_log().contains("insert right (distinct)"));
    }

    #[test]
    fn row_level_decompose_with_indexes_builds_them() {
        let mut db = row_db(InsertPolicy::Batch);
        decompose_row_level(
            &mut db,
            "R",
            "S",
            &["employee", "skill"],
            "T",
            &["employee", "address"],
            &["employee"],
            true,
        )
        .unwrap();
        assert_eq!(db.table("S").unwrap().indexes().len(), 1);
        assert_eq!(db.table("T").unwrap().indexes()[0].len(), 4);
    }

    #[test]
    fn row_level_merge_round_trips() {
        let mut db = row_db(InsertPolicy::Batch);
        decompose_row_level(
            &mut db,
            "R",
            "S",
            &["employee", "skill"],
            "T",
            &["employee", "address"],
            &["employee"],
            false,
        )
        .unwrap();
        let report = merge_row_level(&mut db, "S", "T", "R2", &["employee"], false).unwrap();
        assert_eq!(report.tuples_written, 7);
        // R2 must equal R as a multiset of tuples.
        let mut orig: Vec<Vec<Value>> = db.table("R").unwrap().scan().map(|(_, r)| r).collect();
        let mut merged: Vec<Vec<Value>> = db.table("R2").unwrap().scan().map(|(_, r)| r).collect();
        orig.sort();
        merged.sort();
        assert_eq!(orig, merged);
    }

    #[test]
    fn journaled_policy_pays_journal_cost() {
        let mut db = row_db(InsertPolicy::JournaledAutocommit);
        decompose_row_level(
            &mut db,
            "R",
            "S",
            &["employee", "skill"],
            "T",
            &["employee", "address"],
            &["employee"],
            false,
        )
        .unwrap();
        let (pages, commits) = db.journal_stats();
        assert!(commits >= 7 + 4 + 7, "commits {commits}"); // R load + S + T
        assert!(pages > 0);
    }

    #[test]
    fn column_level_decompose_and_merge_round_trip() {
        let catalog = Catalog::new();
        catalog
            .create(Table::from_rows("R", r_schema(), &figure1_rows()).unwrap())
            .unwrap();
        decompose_column_level(
            &catalog,
            "R",
            "S",
            &["employee", "skill"],
            "T",
            &["employee", "address"],
            &["employee"],
        )
        .unwrap();
        let s = catalog.get("S").unwrap();
        let t = catalog.get("T").unwrap();
        assert_eq!(s.rows(), 7);
        assert_eq!(t.rows(), 4);
        t.verify_key().unwrap();

        merge_column_level(&catalog, "S", "T", "R2", &["employee"]).unwrap();
        let r2 = catalog.get("R2").unwrap();
        assert_eq!(
            r2.tuple_multiset(),
            catalog.get("R").unwrap().tuple_multiset()
        );
    }

    #[test]
    fn duplicate_output_name_fails() {
        let mut db = row_db(InsertPolicy::Batch);
        let err = decompose_row_level(
            &mut db,
            "R",
            "R", // collides with input
            &["employee", "skill"],
            "T",
            &["employee", "address"],
            &["employee"],
            false,
        );
        assert!(err.is_err());
    }
}
