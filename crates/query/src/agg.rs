//! Grouped aggregation over materialized rows: COUNT / SUM / MIN / MAX /
//! COUNT DISTINCT, used by the warehouse examples and exposed through
//! [`crate::plan::Plan::Aggregate`].

use cods_storage::{OrderedF64, StorageError, Value, ValueType};
use std::collections::{HashMap, HashSet};

/// An aggregate function.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggOp {
    /// Number of rows in the group (NULLs included).
    Count,
    /// Number of distinct non-null values.
    CountDistinct,
    /// Sum of non-null numeric values.
    Sum,
    /// Minimum non-null value.
    Min,
    /// Maximum non-null value.
    Max,
}

impl AggOp {
    /// Result type of the aggregate over a column of type `input`.
    pub fn output_type(self, input: ValueType) -> ValueType {
        match self {
            AggOp::Count | AggOp::CountDistinct => ValueType::Int,
            AggOp::Sum => input,
            AggOp::Min | AggOp::Max => input,
        }
    }
}

/// One aggregate expression: `op(column) AS alias`.
#[derive(Clone, Debug)]
pub struct AggExpr {
    /// The function.
    pub op: AggOp,
    /// Input column name.
    pub column: String,
    /// Output column name.
    pub alias: String,
}

impl AggExpr {
    /// Convenience constructor.
    pub fn new(op: AggOp, column: impl Into<String>, alias: impl Into<String>) -> Self {
        AggExpr {
            op,
            column: column.into(),
            alias: alias.into(),
        }
    }
}

/// Accumulator for one aggregate within one group.
enum Acc {
    Count(u64),
    Distinct(HashSet<Value>),
    SumInt(i64),
    SumFloat(f64),
    MinMax(Option<Value>),
}

impl Acc {
    fn new(op: AggOp, ty: ValueType) -> Acc {
        match op {
            AggOp::Count => Acc::Count(0),
            AggOp::CountDistinct => Acc::Distinct(HashSet::new()),
            AggOp::Sum => match ty {
                ValueType::Float => Acc::SumFloat(0.0),
                _ => Acc::SumInt(0),
            },
            AggOp::Min | AggOp::Max => Acc::MinMax(None),
        }
    }

    fn update(&mut self, op: AggOp, v: &Value) {
        match self {
            Acc::Count(n) => *n += 1,
            Acc::Distinct(set) => {
                if !v.is_null() {
                    set.insert(v.clone());
                }
            }
            Acc::SumInt(s) => {
                if let Value::Int(i) = v {
                    *s += i;
                }
            }
            Acc::SumFloat(s) => {
                if let Value::Float(OrderedF64(f)) = v {
                    *s += f;
                }
            }
            Acc::MinMax(cur) => {
                if v.is_null() {
                    return;
                }
                let better = match (op, cur.as_ref()) {
                    (_, None) => true,
                    (AggOp::Min, Some(c)) => v < c,
                    (AggOp::Max, Some(c)) => v > c,
                    _ => unreachable!(),
                };
                if better {
                    *cur = Some(v.clone());
                }
            }
        }
    }

    fn finish(self) -> Value {
        match self {
            Acc::Count(n) => Value::int(n as i64),
            Acc::Distinct(set) => Value::int(set.len() as i64),
            Acc::SumInt(s) => Value::int(s),
            Acc::SumFloat(s) => Value::float(s),
            Acc::MinMax(v) => v.unwrap_or(Value::Null),
        }
    }
}

/// Groups `rows` by the columns at `group_by` and evaluates `aggs` (given as
/// `(op, input position, input type)`), returning one output row per group:
/// the group key columns followed by the aggregate values. Group order is
/// first-appearance.
pub fn aggregate(
    rows: &[Vec<Value>],
    group_by: &[usize],
    aggs: &[(AggOp, usize, ValueType)],
) -> Result<Vec<Vec<Value>>, StorageError> {
    let mut order: Vec<Vec<Value>> = Vec::new();
    let mut groups: HashMap<Vec<Value>, Vec<Acc>> = HashMap::new();
    for row in rows {
        let key: Vec<Value> = group_by.iter().map(|&g| row[g].clone()).collect();
        let accs = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            aggs.iter().map(|&(op, _, ty)| Acc::new(op, ty)).collect()
        });
        for (acc, &(op, col, _)) in accs.iter_mut().zip(aggs) {
            acc.update(op, &row[col]);
        }
    }
    let mut out = Vec::with_capacity(order.len());
    for key in order {
        let accs = groups.remove(&key).expect("group recorded");
        let mut row = key;
        row.extend(accs.into_iter().map(Acc::finish));
        out.push(row);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Vec<Value>> {
        vec![
            vec![Value::str("a"), Value::int(1)],
            vec![Value::str("b"), Value::int(10)],
            vec![Value::str("a"), Value::int(2)],
            vec![Value::str("a"), Value::int(2)],
            vec![Value::str("b"), Value::Null],
        ]
    }

    #[test]
    fn count_sum_min_max() {
        let out = aggregate(
            &rows(),
            &[0],
            &[
                (AggOp::Count, 1, ValueType::Int),
                (AggOp::Sum, 1, ValueType::Int),
                (AggOp::Min, 1, ValueType::Int),
                (AggOp::Max, 1, ValueType::Int),
            ],
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(
            out[0],
            vec![
                Value::str("a"),
                Value::int(3),
                Value::int(5),
                Value::int(1),
                Value::int(2)
            ]
        );
        assert_eq!(
            out[1],
            vec![
                Value::str("b"),
                Value::int(2),
                Value::int(10),
                Value::int(10),
                Value::int(10)
            ]
        );
    }

    #[test]
    fn count_distinct_ignores_nulls() {
        let out = aggregate(&rows(), &[0], &[(AggOp::CountDistinct, 1, ValueType::Int)]).unwrap();
        assert_eq!(out[0][1], Value::int(2)); // a: {1, 2}
        assert_eq!(out[1][1], Value::int(1)); // b: {10}, NULL dropped
    }

    #[test]
    fn global_aggregate_empty_group_by() {
        let out = aggregate(&rows(), &[], &[(AggOp::Count, 0, ValueType::Str)]).unwrap();
        assert_eq!(out, vec![vec![Value::int(5)]]);
    }

    #[test]
    fn empty_input_no_groups() {
        let out = aggregate(&[], &[0], &[(AggOp::Count, 0, ValueType::Int)]).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn float_sum() {
        let rows = vec![
            vec![Value::int(1), Value::float(0.5)],
            vec![Value::int(1), Value::float(1.25)],
        ];
        let out = aggregate(&rows, &[0], &[(AggOp::Sum, 1, ValueType::Float)]).unwrap();
        assert_eq!(out[0][1], Value::float(1.75));
    }

    #[test]
    fn min_max_of_all_nulls_is_null() {
        let rows = vec![vec![Value::int(1), Value::Null]];
        let out = aggregate(&rows, &[0], &[(AggOp::Min, 1, ValueType::Int)]).unwrap();
        assert_eq!(out[0][1], Value::Null);
    }

    #[test]
    fn output_types() {
        assert_eq!(AggOp::Count.output_type(ValueType::Str), ValueType::Int);
        assert_eq!(AggOp::Sum.output_type(ValueType::Float), ValueType::Float);
        assert_eq!(AggOp::Max.output_type(ValueType::Str), ValueType::Str);
    }
}
