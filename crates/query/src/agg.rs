//! Grouped aggregation: COUNT / SUM / MIN / MAX / COUNT DISTINCT, used by
//! the warehouse examples and exposed through
//! [`crate::plan::Plan::Aggregate`].
//!
//! Two evaluation strategies share one semantics:
//!
//! * [`aggregate`] — the row kernel, over already-materialized tuples
//!   (joins, unions, anything mid-plan). Group keys are interned into
//!   per-column dense ids so each distinct value is cloned once per
//!   column, not once per row, and accumulators live in a vector indexed
//!   by group.
//! * [`aggregate_table`] / [`aggregate_table_masked`] — the vectorized
//!   columnar kernel, directly over a column-store table (the
//!   `Aggregate ∘ ScanColumn` pushdown, with an optional predicate mask
//!   pushed into the walk). No row is ever materialized: group keys are
//!   composed from per-column dictionary ids ([`GroupKeySpace`] packs
//!   them into one `u64` when the id widths fit, else falls back to a
//!   compact composite tuple), every aggregate consumes maximal
//!   `(id, run length)` runs straight off the segment payloads — so
//!   RLE-clustered input costs O(runs), not O(rows) — and segments fan
//!   out on the worker pool with one ordered merge of the partial tables
//!   at the end.
//!
//! NULL handling follows the `valid: Option<…>` dual-path idiom
//! ([`validity`]): whether the dictionary holds a NULL is decided once,
//! outside the hot loop, and each NULL-skipping op (MIN/MAX/COUNT
//! DISTINCT) is instantiated in a branch-free all-valid flavor and a
//! null-checking flavor — the check itself runs per *run*, not per row.
//! SUM folds NULL into the per-id add table as 0, so it is branch-free in
//! both cases.

use crate::par;
use cods_bitmap::Wah;
use cods_storage::{EncodedColumn, OrderedF64, StorageError, Table, Value, ValueType};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::hash::Hash;

/// An aggregate function.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggOp {
    /// Number of rows in the group (NULLs included).
    Count,
    /// Number of distinct non-null values.
    CountDistinct,
    /// Sum of non-null numeric values.
    Sum,
    /// Minimum non-null value.
    Min,
    /// Maximum non-null value.
    Max,
}

impl AggOp {
    /// Result type of the aggregate over a column of type `input`.
    pub fn output_type(self, input: ValueType) -> ValueType {
        match self {
            AggOp::Count | AggOp::CountDistinct => ValueType::Int,
            AggOp::Sum => input,
            AggOp::Min | AggOp::Max => input,
        }
    }
}

/// One aggregate expression: `op(column) AS alias`.
#[derive(Clone, Debug)]
pub struct AggExpr {
    /// The function.
    pub op: AggOp,
    /// Input column name.
    pub column: String,
    /// Output column name.
    pub alias: String,
}

impl AggExpr {
    /// Convenience constructor.
    pub fn new(op: AggOp, column: impl Into<String>, alias: impl Into<String>) -> Self {
        AggExpr {
            op,
            column: column.into(),
            alias: alias.into(),
        }
    }
}

/// Accumulator for one aggregate within one group (row kernel).
enum Acc {
    Count(u64),
    Distinct(HashSet<Value>),
    SumInt(i64),
    SumFloat(f64),
    MinMax(Option<Value>),
}

impl Acc {
    fn new(op: AggOp, ty: ValueType) -> Acc {
        match op {
            AggOp::Count => Acc::Count(0),
            AggOp::CountDistinct => Acc::Distinct(HashSet::new()),
            AggOp::Sum => match ty {
                ValueType::Float => Acc::SumFloat(0.0),
                _ => Acc::SumInt(0),
            },
            AggOp::Min | AggOp::Max => Acc::MinMax(None),
        }
    }

    fn update(&mut self, op: AggOp, v: &Value) {
        match self {
            Acc::Count(n) => *n += 1,
            Acc::Distinct(set) => {
                if !v.is_null() {
                    set.insert(v.clone());
                }
            }
            Acc::SumInt(s) => {
                if let Value::Int(i) = v {
                    *s += i;
                }
            }
            Acc::SumFloat(s) => {
                if let Value::Float(OrderedF64(f)) = v {
                    *s += f;
                }
            }
            Acc::MinMax(cur) => {
                if v.is_null() {
                    return;
                }
                let better = match (op, cur.as_ref()) {
                    (_, None) => true,
                    (AggOp::Min, Some(c)) => v < c,
                    (AggOp::Max, Some(c)) => v > c,
                    _ => unreachable!(),
                };
                if better {
                    *cur = Some(v.clone());
                }
            }
        }
    }

    fn finish(self) -> Value {
        match self {
            Acc::Count(n) => Value::int(n as i64),
            Acc::Distinct(set) => Value::int(set.len() as i64),
            Acc::SumInt(s) => Value::int(s),
            Acc::SumFloat(s) => Value::float(s),
            Acc::MinMax(v) => v.unwrap_or(Value::Null),
        }
    }
}

/// Groups `rows` by the columns at `group_by` and evaluates `aggs` (given as
/// `(op, input position, input type)`), returning one output row per group:
/// the group key columns followed by the aggregate values. Group order is
/// first-appearance.
///
/// Internally each grouping column interns its values into a local dense-id
/// dictionary, so the per-row key is a small id tuple: a distinct value is
/// cloned once per column (at first appearance), never once per row, and
/// the group key itself is stored exactly once.
pub fn aggregate(
    rows: &[Vec<Value>],
    group_by: &[usize],
    aggs: &[(AggOp, usize, ValueType)],
) -> Result<Vec<Vec<Value>>, StorageError> {
    let mut interners: Vec<HashMap<Value, u32>> = vec![HashMap::new(); group_by.len()];
    let mut lookup: HashMap<Box<[u32]>, u32> = HashMap::new();
    let mut order: Vec<Vec<Value>> = Vec::new();
    let mut accs: Vec<Vec<Acc>> = Vec::new();
    let mut key: Vec<u32> = Vec::with_capacity(group_by.len());
    for row in rows {
        key.clear();
        for (intern, &g) in interners.iter_mut().zip(group_by) {
            let id = match intern.get(&row[g]) {
                Some(&id) => id,
                // The only value clone: once per distinct value per column.
                None => {
                    let id = intern.len() as u32;
                    intern.insert(row[g].clone(), id);
                    id
                }
            };
            key.push(id);
        }
        let g = match lookup.get(key.as_slice()) {
            Some(&g) => g,
            // The only key allocation: once per group, not per row.
            None => {
                let g = order.len() as u32;
                lookup.insert(key.as_slice().into(), g);
                order.push(group_by.iter().map(|&c| row[c].clone()).collect());
                accs.push(aggs.iter().map(|&(op, _, ty)| Acc::new(op, ty)).collect());
                g
            }
        };
        for (acc, &(op, col, _)) in accs[g as usize].iter_mut().zip(aggs) {
            acc.update(op, &row[col]);
        }
    }
    let mut out = Vec::with_capacity(order.len());
    for (key, group_accs) in order.into_iter().zip(accs) {
        let mut row = key;
        row.extend(group_accs.into_iter().map(Acc::finish));
        out.push(row);
    }
    Ok(out)
}

/// The validity mask of one column: `None` when the dictionary holds no
/// NULL (every row is valid — the branch-free fast path), otherwise a
/// bitmap with bit *r* set when row *r* is non-null.
pub fn validity(col: &EncodedColumn) -> Option<Wah> {
    let null_id = col.dict().id_of(&Value::Null)?;
    Some(col.value_bitmap(null_id).not())
}

/// How the columnar kernel composes a group key from per-column
/// dictionary ids.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GroupKeySpace {
    /// The grouping columns' id widths sum to ≤ 64 bits: keys pack into a
    /// single `u64` (column *c*'s id lands at `shifts[c]`, `widths[c]`
    /// bits wide). One integer hash per run.
    Packed {
        /// Bit offset of each grouping column within the packed key.
        shifts: Vec<u32>,
        /// Bit width of each grouping column's id space.
        widths: Vec<u32>,
    },
    /// Too wide to pack: keys are compact boxed id tuples.
    Composite,
}

impl GroupKeySpace {
    /// Picks the key representation for grouping columns whose
    /// dictionaries have the given sizes: packed whenever the summed id
    /// widths fit 64 bits (the cost model prefers it — one integer hash
    /// and no allocation per group), composite otherwise.
    pub fn choose(dict_sizes: &[usize]) -> GroupKeySpace {
        if Self::total_bits(dict_sizes) > 64 {
            return GroupKeySpace::Composite;
        }
        let widths: Vec<u32> = dict_sizes.iter().map(|&n| bits_for(n)).collect();
        let mut shifts = Vec::with_capacity(widths.len());
        let mut at = 0u32;
        for &w in &widths {
            shifts.push(at);
            at += w;
        }
        GroupKeySpace::Packed { shifts, widths }
    }

    /// Summed id width in bits for the given dictionary sizes — the
    /// packed representation is feasible iff this is ≤ 64.
    pub fn total_bits(dict_sizes: &[usize]) -> u32 {
        dict_sizes.iter().map(|&n| bits_for(n)).sum()
    }
}

/// Bits needed to hold any id of a dictionary with `len` entries
/// (0 for a 0/1-entry dictionary: the id carries no information).
fn bits_for(len: usize) -> u32 {
    64 - (len.saturating_sub(1) as u64).leading_zeros()
}

/// Per-aggregate read-only context, built once before the segment
/// fan-out and shared by every batch. Holds the per-id add tables (SUM),
/// the value-rank view (MIN/MAX — building it here also pre-warms the
/// dictionary's cached order before threads race for it), and the NULL
/// id when the dictionary has one; `null_id: None` selects the
/// branch-free all-valid loops.
enum AggCtx<'a> {
    Count,
    SumInt {
        add: Vec<i64>,
    },
    SumFloat {
        add: Vec<f64>,
    },
    MinMax {
        max: bool,
        ranks: &'a [u32],
        null_id: Option<u32>,
    },
    Distinct {
        null_id: Option<u32>,
    },
}

impl<'a> AggCtx<'a> {
    fn new(op: AggOp, col: &'a EncodedColumn, ty: ValueType) -> AggCtx<'a> {
        let null_id = col.dict().id_of(&Value::Null);
        match op {
            AggOp::Count => AggCtx::Count,
            AggOp::CountDistinct => AggCtx::Distinct { null_id },
            AggOp::Sum => match ty {
                ValueType::Float => AggCtx::SumFloat {
                    add: col
                        .dict()
                        .values()
                        .iter()
                        .map(|v| match v {
                            Value::Float(OrderedF64(f)) => *f,
                            _ => 0.0,
                        })
                        .collect(),
                },
                _ => AggCtx::SumInt {
                    add: col
                        .dict()
                        .values()
                        .iter()
                        .map(|v| match v {
                            Value::Int(i) => *i,
                            _ => 0,
                        })
                        .collect(),
                },
            },
            AggOp::Min | AggOp::Max => AggCtx::MinMax {
                max: op == AggOp::Max,
                ranks: col.dict().value_order().ranks(),
                null_id,
            },
        }
    }

    fn fresh(&self) -> PAcc {
        match self {
            AggCtx::Count => PAcc::Count(0),
            AggCtx::SumInt { .. } => PAcc::SumInt(0),
            AggCtx::SumFloat { .. } => PAcc::SumFloat(0.0),
            AggCtx::MinMax { .. } => PAcc::MinMax(None),
            AggCtx::Distinct { .. } => PAcc::Distinct(HashSet::new()),
        }
    }
}

/// Partial accumulator for one aggregate within one group: everything is
/// in dictionary-id space (MIN/MAX track the best *id*, COUNT DISTINCT a
/// set of ids) so partials merge and finish without value comparisons.
enum PAcc {
    Count(u64),
    SumInt(i64),
    SumFloat(f64),
    MinMax(Option<u32>),
    Distinct(HashSet<u32>),
}

impl PAcc {
    fn merge(&mut self, other: PAcc, ctx: &AggCtx<'_>) {
        match (self, other) {
            (PAcc::Count(a), PAcc::Count(b)) => *a += b,
            (PAcc::SumInt(a), PAcc::SumInt(b)) => *a = a.wrapping_add(b),
            (PAcc::SumFloat(a), PAcc::SumFloat(b)) => *a += b,
            (PAcc::MinMax(a), PAcc::MinMax(b)) => {
                let (max, ranks) = match ctx {
                    AggCtx::MinMax { max, ranks, .. } => (*max, *ranks),
                    _ => unreachable!("ctx mismatch"),
                };
                if let Some(id) = b {
                    let better = match a {
                        None => true,
                        Some(cur) => {
                            if max {
                                ranks[id as usize] > ranks[*cur as usize]
                            } else {
                                ranks[id as usize] < ranks[*cur as usize]
                            }
                        }
                    };
                    if better {
                        *a = Some(id);
                    }
                }
            }
            (PAcc::Distinct(a), PAcc::Distinct(b)) => a.extend(b),
            _ => unreachable!("ctx mismatch"),
        }
    }

    fn finish(self, col: &EncodedColumn) -> Value {
        match self {
            PAcc::Count(n) => Value::int(n as i64),
            PAcc::SumInt(s) => Value::int(s),
            PAcc::SumFloat(s) => Value::float(s),
            PAcc::MinMax(best) => best.map_or(Value::Null, |id| col.dict().value(id).clone()),
            PAcc::Distinct(set) => Value::int(set.len() as i64),
        }
    }
}

/// One unit of the segment fan-out: the selected row intervals
/// (half-open, ascending, non-empty) that fall inside one segment of the
/// driving column.
struct BatchWork {
    sel: Vec<(u64, u64)>,
}

/// Per-batch partial result: locally-grouped keys in first-appearance
/// order with one accumulator row per group (`accs[group][agg]`).
struct Partial<K> {
    keys: Vec<K>,
    accs: Vec<Vec<PAcc>>,
}

fn push_run(out: &mut Vec<(u32, u64)>, id: u32, n: u64) {
    if n == 0 {
        return;
    }
    match out.last_mut() {
        Some((last, len)) if *last == id => *len += n,
        _ => out.push((id, n)),
    }
}

/// The maximal `(id, run)` stream of one column over the selected
/// intervals, with runs coalesced across interval gaps (selected rows are
/// logically concatenated). Every column of a batch uses the same `sel`,
/// so all streams cover the same virtual row count and stay aligned.
fn column_runs(col: &EncodedColumn, sel: &[(u64, u64)]) -> Vec<(u32, u64)> {
    if sel.len() == 1 {
        return col.runs_range(sel[0].0..sel[0].1);
    }
    let mut out = Vec::new();
    if sel.len() <= 8 {
        // Few intervals: per-interval run slices keep RLE input O(runs).
        for &(a, b) in sel {
            for (id, n) in col.runs_range(a..b) {
                push_run(&mut out, id, n);
            }
        }
    } else {
        // Fragmented mask: one contiguous decode, then gather. The mask
        // already made the work O(selected rows); avoid re-decoding the
        // segment once per interval.
        let lo = sel[0].0;
        let hi = sel[sel.len() - 1].1;
        let ids = col.ids_range(lo..hi);
        for &(a, b) in sel {
            for r in a..b {
                push_run(&mut out, ids[(r - lo) as usize], 1);
            }
        }
    }
    out
}

/// Zips per-column run streams (all covering `total` virtual rows) into
/// composed-key runs: each output run is the longest stretch on which
/// every column's id is constant. Output runs are maximal because each
/// input stream's runs are.
fn zip_key_runs<K>(
    col_runs: &[Vec<(u32, u64)>],
    total: u64,
    make_key: impl Fn(&[u32]) -> K,
) -> Vec<(K, u64)> {
    let k = col_runs.len();
    let mut out = Vec::new();
    let mut idx = vec![0usize; k];
    let mut used = vec![0u64; k];
    let mut ids = vec![0u32; k];
    let mut left = total;
    while left > 0 {
        let mut step = left;
        for c in 0..k {
            let (id, len) = col_runs[c][idx[c]];
            ids[c] = id;
            step = step.min(len - used[c]);
        }
        out.push((make_key(&ids), step));
        left -= step;
        for c in 0..k {
            used[c] += step;
            if used[c] == col_runs[c][idx[c]].1 {
                idx[c] += 1;
                used[c] = 0;
            }
        }
    }
    out
}

/// Walks two aligned run streams and emits the piecewise-constant
/// intersection: `f(group, id, len)` for every maximal stretch on which
/// both are constant.
fn merge_runs(groups: &[(u32, u64)], ids: &[(u32, u64)], mut f: impl FnMut(u32, u32, u64)) {
    let (mut i, mut j) = (0usize, 0usize);
    let (mut gi, mut gj) = (0u64, 0u64);
    while i < groups.len() && j < ids.len() {
        let step = (groups[i].1 - gi).min(ids[j].1 - gj);
        f(groups[i].0, ids[j].0, step);
        gi += step;
        gj += step;
        if gi == groups[i].1 {
            i += 1;
            gi = 0;
        }
        if gj == ids[j].1 {
            j += 1;
            gj = 0;
        }
    }
}

/// Accumulates one aggregate over one batch. The NULL test and the
/// op dispatch are hoisted out here — each arm is a dedicated loop over
/// the `(group, id, run)` stream, branch-free when `null_id` is `None`.
fn accumulate(
    ctx: &AggCtx<'_>,
    grouped: &[(u32, u64)],
    runs: &[(u32, u64)],
    accs: &mut [Vec<PAcc>],
    agg: usize,
) {
    match ctx {
        AggCtx::Count => unreachable!("COUNT needs no column runs"),
        AggCtx::SumInt { add } => merge_runs(grouped, runs, |g, id, len| {
            if let PAcc::SumInt(s) = &mut accs[g as usize][agg] {
                *s = s.wrapping_add(add[id as usize].wrapping_mul(len as i64));
            }
        }),
        AggCtx::SumFloat { add } => merge_runs(grouped, runs, |g, id, len| {
            if let PAcc::SumFloat(s) = &mut accs[g as usize][agg] {
                *s += add[id as usize] * len as f64;
            }
        }),
        AggCtx::MinMax {
            max,
            ranks,
            null_id,
        } => {
            let max = *max;
            let mut consider = |g: u32, id: u32| {
                if let PAcc::MinMax(best) = &mut accs[g as usize][agg] {
                    let better = match best {
                        None => true,
                        Some(cur) => {
                            if max {
                                ranks[id as usize] > ranks[*cur as usize]
                            } else {
                                ranks[id as usize] < ranks[*cur as usize]
                            }
                        }
                    };
                    if better {
                        *best = Some(id);
                    }
                }
            };
            match null_id {
                // All-valid: no test at all on the run loop.
                None => merge_runs(grouped, runs, |g, id, _| consider(g, id)),
                // One id comparison per run — not per row.
                Some(nid) => {
                    let nid = *nid;
                    merge_runs(grouped, runs, |g, id, _| {
                        if id != nid {
                            consider(g, id);
                        }
                    })
                }
            }
        }
        AggCtx::Distinct { null_id } => {
            let mut insert = |g: u32, id: u32| {
                if let PAcc::Distinct(set) = &mut accs[g as usize][agg] {
                    set.insert(id);
                }
            };
            match null_id {
                None => merge_runs(grouped, runs, |g, id, _| insert(g, id)),
                Some(nid) => {
                    let nid = *nid;
                    merge_runs(grouped, runs, |g, id, _| {
                        if id != nid {
                            insert(g, id);
                        }
                    })
                }
            }
        }
    }
}

/// Runs one batch: compose key runs, assign local group ids
/// (first-appearance), accumulate every aggregate over the run streams.
fn run_batch<K: Eq + Hash + Clone>(
    t: &Table,
    group_by: &[usize],
    ctxs: &[AggCtx<'_>],
    aggs: &[(AggOp, usize, ValueType)],
    work: &BatchWork,
    make_key: &(impl Fn(&[u32]) -> K + Sync),
) -> Partial<K> {
    let total: u64 = work.sel.iter().map(|&(a, b)| b - a).sum();
    let key_runs: Vec<(K, u64)> = if group_by.is_empty() {
        vec![(make_key(&[]), total)]
    } else {
        let col_runs: Vec<Vec<(u32, u64)>> = group_by
            .iter()
            .map(|&g| column_runs(t.column(g), &work.sel))
            .collect();
        zip_key_runs(&col_runs, total, make_key)
    };
    let mut lookup: HashMap<K, u32> = HashMap::new();
    let mut keys: Vec<K> = Vec::new();
    let mut accs: Vec<Vec<PAcc>> = Vec::new();
    let mut grouped: Vec<(u32, u64)> = Vec::with_capacity(key_runs.len());
    for (key, len) in key_runs {
        let g = match lookup.entry(key) {
            Entry::Occupied(e) => *e.get(),
            Entry::Vacant(e) => {
                let g = keys.len() as u32;
                keys.push(e.key().clone());
                accs.push(ctxs.iter().map(AggCtx::fresh).collect());
                e.insert(g);
                g
            }
        };
        grouped.push((g, len));
    }
    for (agg, (ctx, &(_, col, _))) in ctxs.iter().zip(aggs).enumerate() {
        if let AggCtx::Count = ctx {
            for &(g, len) in &grouped {
                if let PAcc::Count(n) = &mut accs[g as usize][agg] {
                    *n += len;
                }
            }
            continue;
        }
        let runs = column_runs(t.column(col), &work.sel);
        accumulate(ctx, &grouped, &runs, &mut accs, agg);
    }
    Partial { keys, accs }
}

/// Merges per-batch partials in batch order, preserving global
/// first-appearance group order.
fn merge_partials<K: Eq + Hash + Clone>(
    parts: Vec<Partial<K>>,
    ctxs: &[AggCtx<'_>],
) -> (Vec<K>, Vec<Vec<PAcc>>) {
    let mut lookup: HashMap<K, u32> = HashMap::new();
    let mut keys: Vec<K> = Vec::new();
    let mut accs: Vec<Vec<PAcc>> = Vec::new();
    for part in parts {
        for (key, row) in part.keys.into_iter().zip(part.accs) {
            match lookup.entry(key) {
                Entry::Occupied(e) => {
                    let g = *e.get() as usize;
                    for (into, (from, ctx)) in accs[g].iter_mut().zip(row.into_iter().zip(ctxs)) {
                        into.merge(from, ctx);
                    }
                }
                Entry::Vacant(e) => {
                    let g = keys.len() as u32;
                    keys.push(e.key().clone());
                    accs.push(row);
                    e.insert(g);
                }
            }
        }
    }
    (keys, accs)
}

/// Splits the selected intervals along the driving column's segment
/// directory: one [`BatchWork`] per segment with any selected row.
/// Zone-pruned or fully-masked-out segments never appear, so they are
/// skipped at metadata speed.
fn make_batches(t: &Table, drive: usize, sel: &[(u64, u64)]) -> Vec<BatchWork> {
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut start = 0u64;
    for slot in t.column(drive).segments() {
        let (lo, hi) = (start, start + slot.rows());
        start = hi;
        let mut cur = Vec::new();
        while i < sel.len() && sel[i].0 < hi {
            let a = sel[i].0.max(lo);
            let b = sel[i].1.min(hi);
            if a < b {
                cur.push((a, b));
            }
            if sel[i].1 <= hi {
                i += 1;
            } else {
                break;
            }
        }
        if !cur.is_empty() {
            out.push(BatchWork { sel: cur });
        }
    }
    out
}

/// Fan out, run, merge — generic over the key representation.
fn drive<K: Eq + Hash + Clone + Send>(
    t: &Table,
    group_by: &[usize],
    ctxs: &[AggCtx<'_>],
    aggs: &[(AggOp, usize, ValueType)],
    batches: Vec<BatchWork>,
    make_key: impl Fn(&[u32]) -> K + Sync,
) -> (Vec<K>, Vec<Vec<PAcc>>) {
    let parts = par::map_parallel(batches, |work| {
        run_batch(t, group_by, ctxs, aggs, &work, &make_key)
    });
    merge_partials(parts, ctxs)
}

/// Groups a column-store table by the columns at `group_by` and evaluates
/// `aggs` entirely on dictionary-id runs — the vectorized twin of
/// [`aggregate`], with identical output (same first-appearance group
/// order over the selected rows, same NULL semantics). `mask` restricts
/// the aggregation to its set rows (`None` = all rows): the predicate is
/// pushed into the run walk instead of materializing a filtered table.
/// See the module docs for the kernel design.
pub fn aggregate_table_masked(
    t: &Table,
    group_by: &[usize],
    aggs: &[(AggOp, usize, ValueType)],
    mask: Option<&Wah>,
) -> Result<Vec<Vec<Value>>, StorageError> {
    let n = t.rows();
    let sel: Vec<(u64, u64)> = match mask {
        None => {
            if n > 0 {
                vec![(0, n)]
            } else {
                Vec::new()
            }
        }
        Some(m) => m.iter_intervals().map(|(s, len)| (s, s + len)).collect(),
    };
    if sel.is_empty() {
        return Ok(Vec::new());
    }
    let drive_col = group_by.first().copied().unwrap_or(0);
    let batches = make_batches(t, drive_col, &sel);
    let ctxs: Vec<AggCtx<'_>> = aggs
        .iter()
        .map(|&(op, col, ty)| AggCtx::new(op, t.column(col), ty))
        .collect();
    let dict_sizes: Vec<usize> = group_by.iter().map(|&g| t.column(g).dict().len()).collect();
    let emit = |ids_of_key: &dyn Fn(usize, usize) -> u32, keys: usize, accs: Vec<Vec<PAcc>>| {
        let mut out = Vec::with_capacity(keys);
        for (g, row_accs) in accs.into_iter().enumerate() {
            let mut row: Vec<Value> = group_by
                .iter()
                .enumerate()
                .map(|(c, &col)| t.column(col).dict().value(ids_of_key(g, c)).clone())
                .collect();
            row.extend(
                row_accs
                    .into_iter()
                    .zip(aggs)
                    .map(|(acc, &(_, col, _))| acc.finish(t.column(col))),
            );
            out.push(row);
        }
        out
    };
    match GroupKeySpace::choose(&dict_sizes) {
        GroupKeySpace::Packed { shifts, widths } => {
            let pack = |ids: &[u32]| -> u64 {
                ids.iter()
                    .zip(&shifts)
                    .fold(0u64, |k, (&id, &s)| k | (id as u64) << s)
            };
            let (keys, accs) = drive(t, group_by, &ctxs, aggs, batches, pack);
            let unpack = |g: usize, c: usize| -> u32 {
                let w = widths[c];
                let mask = if w == 0 { 0 } else { (1u64 << w) - 1 };
                ((keys[g] >> shifts[c]) & mask) as u32
            };
            Ok(emit(&unpack, keys.len(), accs))
        }
        GroupKeySpace::Composite => {
            let make = |ids: &[u32]| -> Box<[u32]> { ids.into() };
            let (keys, accs) = drive(t, group_by, &ctxs, aggs, batches, make);
            let index = |g: usize, c: usize| -> u32 { keys[g][c] };
            Ok(emit(&index, keys.len(), accs))
        }
    }
}

/// [`aggregate_table_masked`] over every row (no predicate mask).
pub fn aggregate_table(
    t: &Table,
    group_by: &[usize],
    aggs: &[(AggOp, usize, ValueType)],
) -> Result<Vec<Vec<Value>>, StorageError> {
    aggregate_table_masked(t, group_by, aggs, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Vec<Value>> {
        vec![
            vec![Value::str("a"), Value::int(1)],
            vec![Value::str("b"), Value::int(10)],
            vec![Value::str("a"), Value::int(2)],
            vec![Value::str("a"), Value::int(2)],
            vec![Value::str("b"), Value::Null],
        ]
    }

    #[test]
    fn count_sum_min_max() {
        let out = aggregate(
            &rows(),
            &[0],
            &[
                (AggOp::Count, 1, ValueType::Int),
                (AggOp::Sum, 1, ValueType::Int),
                (AggOp::Min, 1, ValueType::Int),
                (AggOp::Max, 1, ValueType::Int),
            ],
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(
            out[0],
            vec![
                Value::str("a"),
                Value::int(3),
                Value::int(5),
                Value::int(1),
                Value::int(2)
            ]
        );
        assert_eq!(
            out[1],
            vec![
                Value::str("b"),
                Value::int(2),
                Value::int(10),
                Value::int(10),
                Value::int(10)
            ]
        );
    }

    #[test]
    fn count_distinct_ignores_nulls() {
        let out = aggregate(&rows(), &[0], &[(AggOp::CountDistinct, 1, ValueType::Int)]).unwrap();
        assert_eq!(out[0][1], Value::int(2)); // a: {1, 2}
        assert_eq!(out[1][1], Value::int(1)); // b: {10}, NULL dropped
    }

    #[test]
    fn global_aggregate_empty_group_by() {
        let out = aggregate(&rows(), &[], &[(AggOp::Count, 0, ValueType::Str)]).unwrap();
        assert_eq!(out, vec![vec![Value::int(5)]]);
    }

    #[test]
    fn empty_input_no_groups() {
        let out = aggregate(&[], &[0], &[(AggOp::Count, 0, ValueType::Int)]).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn float_sum() {
        let rows = vec![
            vec![Value::int(1), Value::float(0.5)],
            vec![Value::int(1), Value::float(1.25)],
        ];
        let out = aggregate(&rows, &[0], &[(AggOp::Sum, 1, ValueType::Float)]).unwrap();
        assert_eq!(out[0][1], Value::float(1.75));
    }

    #[test]
    fn min_max_of_all_nulls_is_null() {
        let rows = vec![vec![Value::int(1), Value::Null]];
        let out = aggregate(&rows, &[0], &[(AggOp::Min, 1, ValueType::Int)]).unwrap();
        assert_eq!(out[0][1], Value::Null);
    }

    #[test]
    fn output_types() {
        assert_eq!(AggOp::Count.output_type(ValueType::Str), ValueType::Int);
        assert_eq!(AggOp::Sum.output_type(ValueType::Float), ValueType::Float);
        assert_eq!(AggOp::Max.output_type(ValueType::Str), ValueType::Str);
    }

    #[test]
    fn key_space_packs_when_widths_fit() {
        match GroupKeySpace::choose(&[7, 300, 2]) {
            GroupKeySpace::Packed { shifts, widths } => {
                assert_eq!(widths, vec![3, 9, 1]);
                assert_eq!(shifts, vec![0, 3, 12]);
            }
            other => panic!("expected packed, got {other:?}"),
        }
        // 0/1-entry dictionaries contribute zero bits.
        assert_eq!(GroupKeySpace::total_bits(&[1, 1, 1]), 0);
        // Nine 256-entry (8-bit) columns = 72 bits: too wide.
        assert_eq!(GroupKeySpace::choose(&[256; 9]), GroupKeySpace::Composite);
    }

    use cods_storage::Schema;

    const ALL_OPS: [AggOp; 5] = [
        AggOp::Count,
        AggOp::CountDistinct,
        AggOp::Sum,
        AggOp::Min,
        AggOp::Max,
    ];

    /// Columnar and row kernels must agree exactly — groups in the same
    /// first-appearance order, identical values — over every op.
    fn assert_paths_agree(t: &Table, group_by: &[usize]) {
        for (col, ty) in [(1usize, ValueType::Int), (2, ValueType::Float)] {
            for op in ALL_OPS {
                let aggs = [(op, col, ty)];
                let columnar = aggregate_table(t, group_by, &aggs).unwrap();
                let by_rows = aggregate(&t.to_rows(), group_by, &aggs).unwrap();
                assert_eq!(columnar, by_rows, "{op:?} over column {col}");
            }
        }
    }

    fn table_with_nulls(nulls: bool) -> Table {
        let schema = Schema::build(
            &[
                ("g", ValueType::Str),
                ("x", ValueType::Int),
                ("f", ValueType::Float),
            ],
            &[],
        )
        .unwrap();
        let rows: Vec<Vec<Value>> = (0..500)
            .map(|i| {
                vec![
                    Value::str(format!("g{}", i % 7)),
                    if nulls && i % 11 == 0 {
                        Value::Null
                    } else {
                        Value::int((i * 13) % 40 - 20)
                    },
                    if nulls && i % 5 == 0 {
                        Value::Null
                    } else {
                        Value::float(i as f64 / 8.0)
                    },
                ]
            })
            .collect();
        Table::from_rows_with_segment_rows("t", schema, &rows, 64).unwrap()
    }

    #[test]
    fn columnar_all_valid_path_matches_row_kernel() {
        // No NULL in any dictionary → validity is None → the branch-free
        // path runs for every op.
        let t = table_with_nulls(false);
        assert!(validity(t.column(1)).is_none());
        assert!(validity(t.column(2)).is_none());
        assert_paths_agree(&t, &[0]);
        assert_paths_agree(&t, &[]);
        assert_paths_agree(&t, &[0, 1]);
    }

    #[test]
    fn columnar_null_masked_path_matches_row_kernel() {
        let t = table_with_nulls(true);
        let valid = validity(t.column(1)).expect("column has NULLs");
        assert_eq!(valid.count_zeros(), 46, "one NULL every 11 rows");
        assert_paths_agree(&t, &[0]);
        assert_paths_agree(&t, &[]);
        assert_paths_agree(&t, &[0, 1]);
    }

    #[test]
    fn columnar_agrees_across_encodings() {
        let t = table_with_nulls(true);
        let rle = t.recoded(cods_storage::Encoding::Rle).unwrap();
        let mut mixed = t.clone();
        let segs = mixed.column(1).segment_count();
        for i in (0..segs).step_by(2) {
            mixed = mixed
                .with_column_segment_range_encoding("x", cods_storage::Encoding::Rle, i..i + 1)
                .unwrap();
        }
        for t in [&rle, &mixed] {
            assert_paths_agree(t, &[0]);
        }
    }

    #[test]
    fn composite_key_path_matches_row_kernel() {
        // Grouping by the same 7-value column 30 times sums to >64 key
        // bits, forcing the composite representation through the same
        // kernel; the row oracle handles repeated group columns too.
        let t = table_with_nulls(true);
        let group_by: Vec<usize> = vec![0; 30];
        let sizes: Vec<usize> = group_by.iter().map(|&g| t.column(g).dict().len()).collect();
        assert_eq!(GroupKeySpace::choose(&sizes), GroupKeySpace::Composite);
        assert_paths_agree(&t, &group_by);
    }

    #[test]
    fn masked_aggregation_matches_filtered_row_oracle() {
        let t = table_with_nulls(true);
        let n = t.rows();
        // Every third row, plus a solid stretch: mixes short and long
        // intervals across batch boundaries.
        let positions: Vec<u64> = (0..n)
            .filter(|r| r % 3 == 0 || (100..180).contains(r))
            .collect();
        let mask = Wah::from_sorted_positions(positions.iter().copied(), n);
        let rows = t.to_rows();
        let selected: Vec<Vec<Value>> = positions
            .iter()
            .map(|&r| rows[r as usize].clone())
            .collect();
        for op in ALL_OPS {
            let aggs = [(op, 1usize, ValueType::Int)];
            assert_eq!(
                aggregate_table_masked(&t, &[0], &aggs, Some(&mask)).unwrap(),
                aggregate(&selected, &[0], &aggs).unwrap(),
                "{op:?}"
            );
        }
        // All-zero mask: no selected rows, no groups — even globally.
        let none = Wah::from_sorted_positions(std::iter::empty(), n);
        assert!(
            aggregate_table_masked(&t, &[], &[(AggOp::Count, 1, ValueType::Int)], Some(&none))
                .unwrap()
                .is_empty()
        );
    }

    #[test]
    fn columnar_empty_table_and_all_null_groups() {
        let schema = Schema::build(&[("g", ValueType::Int), ("x", ValueType::Int)], &[]).unwrap();
        let empty = Table::from_rows("e", schema.clone(), &[]).unwrap();
        assert!(
            aggregate_table(&empty, &[0], &[(AggOp::Sum, 1, ValueType::Int)])
                .unwrap()
                .is_empty()
        );
        assert!(
            aggregate_table(&empty, &[], &[(AggOp::Count, 0, ValueType::Int)])
                .unwrap()
                .is_empty()
        );
        // A group whose every input is NULL: MIN/MAX yield NULL, SUM 0,
        // COUNT DISTINCT 0 — exactly like the row kernel.
        let rows = vec![
            vec![Value::int(1), Value::Null],
            vec![Value::int(1), Value::Null],
            vec![Value::int(2), Value::int(5)],
        ];
        let t = Table::from_rows("t", schema, &rows).unwrap();
        for op in ALL_OPS {
            let aggs = [(op, 1usize, ValueType::Int)];
            assert_eq!(
                aggregate_table(&t, &[0], &aggs).unwrap(),
                aggregate(&t.to_rows(), &[0], &aggs).unwrap(),
                "{op:?}"
            );
        }
    }
}
