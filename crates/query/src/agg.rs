//! Grouped aggregation: COUNT / SUM / MIN / MAX / COUNT DISTINCT, used by
//! the warehouse examples and exposed through
//! [`crate::plan::Plan::Aggregate`].
//!
//! Two evaluation strategies share one semantics:
//!
//! * [`aggregate`] — the row kernel, over already-materialized tuples
//!   (joins, unions, anything mid-plan).
//! * [`aggregate_table`] — the columnar kernel, directly over a
//!   column-store table (the `Aggregate ∘ ScanColumn` pushdown). Group
//!   assignment and every aggregate run on dictionary ids, and each input
//!   column carries a `valid: Option<Wah>` mask: `None` means the
//!   dictionary holds no NULL at all, so the hot loop takes a branch-free
//!   path with no per-row validity test; `Some(mask)` drives the
//!   NULL-skipping ops (MIN/MAX/COUNT DISTINCT) by iterating only the
//!   mask's set positions. SUM folds NULL into the per-id add table as 0,
//!   so it is branch-free in both cases.

use cods_bitmap::Wah;
use cods_storage::{EncodedColumn, OrderedF64, StorageError, Table, Value, ValueType};
use std::collections::{HashMap, HashSet};

/// An aggregate function.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggOp {
    /// Number of rows in the group (NULLs included).
    Count,
    /// Number of distinct non-null values.
    CountDistinct,
    /// Sum of non-null numeric values.
    Sum,
    /// Minimum non-null value.
    Min,
    /// Maximum non-null value.
    Max,
}

impl AggOp {
    /// Result type of the aggregate over a column of type `input`.
    pub fn output_type(self, input: ValueType) -> ValueType {
        match self {
            AggOp::Count | AggOp::CountDistinct => ValueType::Int,
            AggOp::Sum => input,
            AggOp::Min | AggOp::Max => input,
        }
    }
}

/// One aggregate expression: `op(column) AS alias`.
#[derive(Clone, Debug)]
pub struct AggExpr {
    /// The function.
    pub op: AggOp,
    /// Input column name.
    pub column: String,
    /// Output column name.
    pub alias: String,
}

impl AggExpr {
    /// Convenience constructor.
    pub fn new(op: AggOp, column: impl Into<String>, alias: impl Into<String>) -> Self {
        AggExpr {
            op,
            column: column.into(),
            alias: alias.into(),
        }
    }
}

/// Accumulator for one aggregate within one group.
enum Acc {
    Count(u64),
    Distinct(HashSet<Value>),
    SumInt(i64),
    SumFloat(f64),
    MinMax(Option<Value>),
}

impl Acc {
    fn new(op: AggOp, ty: ValueType) -> Acc {
        match op {
            AggOp::Count => Acc::Count(0),
            AggOp::CountDistinct => Acc::Distinct(HashSet::new()),
            AggOp::Sum => match ty {
                ValueType::Float => Acc::SumFloat(0.0),
                _ => Acc::SumInt(0),
            },
            AggOp::Min | AggOp::Max => Acc::MinMax(None),
        }
    }

    fn update(&mut self, op: AggOp, v: &Value) {
        match self {
            Acc::Count(n) => *n += 1,
            Acc::Distinct(set) => {
                if !v.is_null() {
                    set.insert(v.clone());
                }
            }
            Acc::SumInt(s) => {
                if let Value::Int(i) = v {
                    *s += i;
                }
            }
            Acc::SumFloat(s) => {
                if let Value::Float(OrderedF64(f)) = v {
                    *s += f;
                }
            }
            Acc::MinMax(cur) => {
                if v.is_null() {
                    return;
                }
                let better = match (op, cur.as_ref()) {
                    (_, None) => true,
                    (AggOp::Min, Some(c)) => v < c,
                    (AggOp::Max, Some(c)) => v > c,
                    _ => unreachable!(),
                };
                if better {
                    *cur = Some(v.clone());
                }
            }
        }
    }

    fn finish(self) -> Value {
        match self {
            Acc::Count(n) => Value::int(n as i64),
            Acc::Distinct(set) => Value::int(set.len() as i64),
            Acc::SumInt(s) => Value::int(s),
            Acc::SumFloat(s) => Value::float(s),
            Acc::MinMax(v) => v.unwrap_or(Value::Null),
        }
    }
}

/// Groups `rows` by the columns at `group_by` and evaluates `aggs` (given as
/// `(op, input position, input type)`), returning one output row per group:
/// the group key columns followed by the aggregate values. Group order is
/// first-appearance.
pub fn aggregate(
    rows: &[Vec<Value>],
    group_by: &[usize],
    aggs: &[(AggOp, usize, ValueType)],
) -> Result<Vec<Vec<Value>>, StorageError> {
    let mut order: Vec<Vec<Value>> = Vec::new();
    let mut groups: HashMap<Vec<Value>, Vec<Acc>> = HashMap::new();
    for row in rows {
        let key: Vec<Value> = group_by.iter().map(|&g| row[g].clone()).collect();
        let accs = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            aggs.iter().map(|&(op, _, ty)| Acc::new(op, ty)).collect()
        });
        for (acc, &(op, col, _)) in accs.iter_mut().zip(aggs) {
            acc.update(op, &row[col]);
        }
    }
    let mut out = Vec::with_capacity(order.len());
    for key in order {
        let accs = groups.remove(&key).expect("group recorded");
        let mut row = key;
        row.extend(accs.into_iter().map(Acc::finish));
        out.push(row);
    }
    Ok(out)
}

/// The validity mask of one column: `None` when the dictionary holds no
/// NULL (every row is valid — the branch-free fast path), otherwise a
/// bitmap with bit *r* set when row *r* is non-null.
fn validity(col: &EncodedColumn) -> Option<Wah> {
    let null_id = col.dict().id_of(&Value::Null)?;
    Some(col.value_bitmap(null_id).not())
}

/// Groups a column-store table by the columns at `group_by` and evaluates
/// `aggs` entirely on dictionary ids — the columnar twin of [`aggregate`],
/// with identical output (same first-appearance group order, same NULL
/// semantics). See the module docs for the `valid` dual path.
pub fn aggregate_table(
    t: &Table,
    group_by: &[usize],
    aggs: &[(AggOp, usize, ValueType)],
) -> Result<Vec<Vec<Value>>, StorageError> {
    let n = t.rows() as usize;
    // Group assignment: one id-vector pass over the grouping columns.
    let group_ids: Vec<Vec<u32>> = group_by.iter().map(|&g| t.column(g).value_ids()).collect();
    let mut group_of = vec![0u32; n];
    let mut order: Vec<Vec<u32>> = Vec::new();
    if group_by.is_empty() {
        if n > 0 {
            order.push(Vec::new());
        }
    } else {
        let mut lookup: HashMap<Vec<u32>, u32> = HashMap::new();
        let mut key = Vec::with_capacity(group_by.len());
        for r in 0..n {
            key.clear();
            key.extend(group_ids.iter().map(|ids| ids[r]));
            group_of[r] = *lookup.entry(key.clone()).or_insert_with(|| {
                order.push(key.clone());
                (order.len() - 1) as u32
            });
        }
    }
    let groups = order.len();
    let mut agg_cols: Vec<Vec<Value>> = Vec::with_capacity(aggs.len());
    for &(op, col_idx, _) in aggs {
        let col = t.column(col_idx);
        agg_cols.push(eval_columnar(op, col, &group_of, groups));
    }
    let mut out = Vec::with_capacity(groups);
    for (g, key) in order.into_iter().enumerate() {
        let mut row: Vec<Value> = key
            .iter()
            .zip(group_by)
            .map(|(&id, &c)| t.column(c).dict().value(id).clone())
            .collect();
        row.extend(agg_cols.iter().map(|vals| vals[g].clone()));
        out.push(row);
    }
    Ok(out)
}

/// Evaluates one aggregate over one column, columnar: per-group results in
/// group-index order.
fn eval_columnar(op: AggOp, col: &EncodedColumn, group_of: &[u32], groups: usize) -> Vec<Value> {
    match op {
        AggOp::Count => {
            // COUNT counts NULLs too: pure group histogram, no ids needed.
            let mut counts = vec![0i64; groups];
            for &g in group_of {
                counts[g as usize] += 1;
            }
            counts.into_iter().map(Value::int).collect()
        }
        AggOp::Sum => {
            // NULL (and any non-numeric value) folds into the per-id add
            // table as the additive identity: the row loop is branch-free
            // whether or not the column has NULLs.
            let ids = col.value_ids();
            match col.ty() {
                ValueType::Float => {
                    let add: Vec<f64> = col
                        .dict()
                        .values()
                        .iter()
                        .map(|v| match v {
                            Value::Float(OrderedF64(f)) => *f,
                            _ => 0.0,
                        })
                        .collect();
                    let mut sums = vec![0.0f64; groups];
                    for (&id, &g) in ids.iter().zip(group_of) {
                        sums[g as usize] += add[id as usize];
                    }
                    sums.into_iter().map(Value::float).collect()
                }
                _ => {
                    let add: Vec<i64> = col
                        .dict()
                        .values()
                        .iter()
                        .map(|v| match v {
                            Value::Int(i) => *i,
                            _ => 0,
                        })
                        .collect();
                    let mut sums = vec![0i64; groups];
                    for (&id, &g) in ids.iter().zip(group_of) {
                        sums[g as usize] += add[id as usize];
                    }
                    sums.into_iter().map(Value::int).collect()
                }
            }
        }
        AggOp::Min | AggOp::Max => {
            let ids = col.value_ids();
            let ranks = col.dict().value_order().ranks();
            let mut best: Vec<Option<u32>> = vec![None; groups];
            let mut consider = |r: usize| {
                let id = ids[r];
                let slot = &mut best[group_of[r] as usize];
                let better = match slot {
                    None => true,
                    Some(b) => match op {
                        AggOp::Min => ranks[id as usize] < ranks[*b as usize],
                        _ => ranks[id as usize] > ranks[*b as usize],
                    },
                };
                if better {
                    *slot = Some(id);
                }
            };
            match validity(col) {
                // All-valid: every row participates, no per-row test.
                None => (0..ids.len()).for_each(&mut consider),
                // NULLs present: visit only the valid positions.
                Some(valid) => valid.iter_ones().for_each(|r| consider(r as usize)),
            }
            best.into_iter()
                .map(|b| b.map_or(Value::Null, |id| col.dict().value(id).clone()))
                .collect()
        }
        AggOp::CountDistinct => {
            let ids = col.value_ids();
            let mut sets: Vec<HashSet<u32>> = vec![HashSet::new(); groups];
            let mut insert = |r: usize| {
                sets[group_of[r] as usize].insert(ids[r]);
            };
            match validity(col) {
                None => (0..ids.len()).for_each(&mut insert),
                Some(valid) => valid.iter_ones().for_each(|r| insert(r as usize)),
            }
            sets.into_iter()
                .map(|s| Value::int(s.len() as i64))
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Vec<Value>> {
        vec![
            vec![Value::str("a"), Value::int(1)],
            vec![Value::str("b"), Value::int(10)],
            vec![Value::str("a"), Value::int(2)],
            vec![Value::str("a"), Value::int(2)],
            vec![Value::str("b"), Value::Null],
        ]
    }

    #[test]
    fn count_sum_min_max() {
        let out = aggregate(
            &rows(),
            &[0],
            &[
                (AggOp::Count, 1, ValueType::Int),
                (AggOp::Sum, 1, ValueType::Int),
                (AggOp::Min, 1, ValueType::Int),
                (AggOp::Max, 1, ValueType::Int),
            ],
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(
            out[0],
            vec![
                Value::str("a"),
                Value::int(3),
                Value::int(5),
                Value::int(1),
                Value::int(2)
            ]
        );
        assert_eq!(
            out[1],
            vec![
                Value::str("b"),
                Value::int(2),
                Value::int(10),
                Value::int(10),
                Value::int(10)
            ]
        );
    }

    #[test]
    fn count_distinct_ignores_nulls() {
        let out = aggregate(&rows(), &[0], &[(AggOp::CountDistinct, 1, ValueType::Int)]).unwrap();
        assert_eq!(out[0][1], Value::int(2)); // a: {1, 2}
        assert_eq!(out[1][1], Value::int(1)); // b: {10}, NULL dropped
    }

    #[test]
    fn global_aggregate_empty_group_by() {
        let out = aggregate(&rows(), &[], &[(AggOp::Count, 0, ValueType::Str)]).unwrap();
        assert_eq!(out, vec![vec![Value::int(5)]]);
    }

    #[test]
    fn empty_input_no_groups() {
        let out = aggregate(&[], &[0], &[(AggOp::Count, 0, ValueType::Int)]).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn float_sum() {
        let rows = vec![
            vec![Value::int(1), Value::float(0.5)],
            vec![Value::int(1), Value::float(1.25)],
        ];
        let out = aggregate(&rows, &[0], &[(AggOp::Sum, 1, ValueType::Float)]).unwrap();
        assert_eq!(out[0][1], Value::float(1.75));
    }

    #[test]
    fn min_max_of_all_nulls_is_null() {
        let rows = vec![vec![Value::int(1), Value::Null]];
        let out = aggregate(&rows, &[0], &[(AggOp::Min, 1, ValueType::Int)]).unwrap();
        assert_eq!(out[0][1], Value::Null);
    }

    #[test]
    fn output_types() {
        assert_eq!(AggOp::Count.output_type(ValueType::Str), ValueType::Int);
        assert_eq!(AggOp::Sum.output_type(ValueType::Float), ValueType::Float);
        assert_eq!(AggOp::Max.output_type(ValueType::Str), ValueType::Str);
    }

    use cods_storage::Schema;

    const ALL_OPS: [AggOp; 5] = [
        AggOp::Count,
        AggOp::CountDistinct,
        AggOp::Sum,
        AggOp::Min,
        AggOp::Max,
    ];

    /// Columnar and row kernels must agree exactly — groups in the same
    /// first-appearance order, identical values — over every op.
    fn assert_paths_agree(t: &Table, group_by: &[usize]) {
        for (col, ty) in [(1usize, ValueType::Int), (2, ValueType::Float)] {
            for op in ALL_OPS {
                let aggs = [(op, col, ty)];
                let columnar = aggregate_table(t, group_by, &aggs).unwrap();
                let by_rows = aggregate(&t.to_rows(), group_by, &aggs).unwrap();
                assert_eq!(columnar, by_rows, "{op:?} over column {col}");
            }
        }
    }

    fn table_with_nulls(nulls: bool) -> Table {
        let schema = Schema::build(
            &[
                ("g", ValueType::Str),
                ("x", ValueType::Int),
                ("f", ValueType::Float),
            ],
            &[],
        )
        .unwrap();
        let rows: Vec<Vec<Value>> = (0..500)
            .map(|i| {
                vec![
                    Value::str(format!("g{}", i % 7)),
                    if nulls && i % 11 == 0 {
                        Value::Null
                    } else {
                        Value::int((i * 13) % 40 - 20)
                    },
                    if nulls && i % 5 == 0 {
                        Value::Null
                    } else {
                        Value::float(i as f64 / 8.0)
                    },
                ]
            })
            .collect();
        Table::from_rows_with_segment_rows("t", schema, &rows, 64).unwrap()
    }

    #[test]
    fn columnar_all_valid_path_matches_row_kernel() {
        // No NULL in any dictionary → validity is None → the branch-free
        // path runs for every op.
        let t = table_with_nulls(false);
        assert!(validity(t.column(1)).is_none());
        assert!(validity(t.column(2)).is_none());
        assert_paths_agree(&t, &[0]);
        assert_paths_agree(&t, &[]);
        assert_paths_agree(&t, &[0, 1]);
    }

    #[test]
    fn columnar_null_masked_path_matches_row_kernel() {
        let t = table_with_nulls(true);
        let valid = validity(t.column(1)).expect("column has NULLs");
        assert_eq!(valid.count_zeros(), 46, "one NULL every 11 rows");
        assert_paths_agree(&t, &[0]);
        assert_paths_agree(&t, &[]);
        assert_paths_agree(&t, &[0, 1]);
    }

    #[test]
    fn columnar_agrees_across_encodings() {
        let t = table_with_nulls(true);
        let rle = t.recoded(cods_storage::Encoding::Rle).unwrap();
        let mut mixed = t.clone();
        let segs = mixed.column(1).segment_count();
        for i in (0..segs).step_by(2) {
            mixed = mixed
                .with_column_segment_range_encoding("x", cods_storage::Encoding::Rle, i..i + 1)
                .unwrap();
        }
        for t in [&rle, &mixed] {
            assert_paths_agree(t, &[0]);
        }
    }

    #[test]
    fn columnar_empty_table_and_all_null_groups() {
        let schema = Schema::build(&[("g", ValueType::Int), ("x", ValueType::Int)], &[]).unwrap();
        let empty = Table::from_rows("e", schema.clone(), &[]).unwrap();
        assert!(
            aggregate_table(&empty, &[0], &[(AggOp::Sum, 1, ValueType::Int)])
                .unwrap()
                .is_empty()
        );
        assert!(
            aggregate_table(&empty, &[], &[(AggOp::Count, 0, ValueType::Int)])
                .unwrap()
                .is_empty()
        );
        // A group whose every input is NULL: MIN/MAX yield NULL, SUM 0,
        // COUNT DISTINCT 0 — exactly like the row kernel.
        let rows = vec![
            vec![Value::int(1), Value::Null],
            vec![Value::int(1), Value::Null],
            vec![Value::int(2), Value::int(5)],
        ];
        let t = Table::from_rows("t", schema, &rows).unwrap();
        for op in ALL_OPS {
            let aggs = [(op, 1usize, ValueType::Int)];
            assert_eq!(
                aggregate_table(&t, &[0], &aggs).unwrap(),
                aggregate(&t.to_rows(), &[0], &aggs).unwrap(),
                "{op:?}"
            );
        }
    }
}
