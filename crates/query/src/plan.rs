//! A small logical-plan layer: scans over either storage engine, projection,
//! selection, DISTINCT, hash join, and union. Query-level evolution is
//! expressed as plans over this layer, exactly like the SQL statements in
//! Section 1 of the paper.

use crate::pred::Predicate;
use crate::tuple;
use cods_rowstore::RowDb;
use cods_storage::{Catalog, ColumnDef, Schema, StorageError, Table, Value};
use std::sync::Arc;

/// A logical query plan node.
#[derive(Clone, Debug)]
pub enum Plan {
    /// Scan a table in the column catalog (decompresses it to tuples).
    ScanColumn {
        /// Table name.
        table: String,
    },
    /// Scan a table in the row database (decodes every tuple).
    ScanRow {
        /// Table name.
        table: String,
    },
    /// Literal rows (testing / VALUES clauses).
    Values {
        /// Output schema.
        schema: Schema,
        /// The rows.
        rows: Vec<Vec<Value>>,
    },
    /// Keep the named columns, in order.
    Project {
        /// Input plan.
        input: Box<Plan>,
        /// Output column names.
        columns: Vec<String>,
    },
    /// Keep rows satisfying the predicate.
    Filter {
        /// Input plan.
        input: Box<Plan>,
        /// Predicate over input columns.
        predicate: Predicate,
    },
    /// Remove duplicate rows.
    Distinct {
        /// Input plan.
        input: Box<Plan>,
    },
    /// Hash equi-join; output = left columns ++ right non-join columns.
    HashJoin {
        /// Left (probe) input.
        left: Box<Plan>,
        /// Right (build) input.
        right: Box<Plan>,
        /// Join columns on the left.
        left_keys: Vec<String>,
        /// Join columns on the right.
        right_keys: Vec<String>,
    },
    /// UNION ALL of two inputs with identical schemas.
    UnionAll {
        /// First input.
        left: Box<Plan>,
        /// Second input.
        right: Box<Plan>,
    },
    /// GROUP BY + aggregates; output = group columns ++ aggregate aliases.
    Aggregate {
        /// Input plan.
        input: Box<Plan>,
        /// Grouping columns (empty = one global group when rows exist).
        group_by: Vec<String>,
        /// Aggregate expressions.
        aggs: Vec<crate::agg::AggExpr>,
    },
}

impl Plan {
    /// Projection helper.
    pub fn project(self, columns: &[&str]) -> Plan {
        Plan::Project {
            input: Box::new(self),
            columns: columns.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Filter helper.
    pub fn filter(self, predicate: Predicate) -> Plan {
        Plan::Filter {
            input: Box::new(self),
            predicate,
        }
    }

    /// Distinct helper.
    pub fn distinct(self) -> Plan {
        Plan::Distinct {
            input: Box::new(self),
        }
    }
}

/// Sources a plan executes against.
#[derive(Clone, Copy, Default)]
pub struct ExecContext<'a> {
    /// Column-store catalog (for [`Plan::ScanColumn`]).
    pub catalog: Option<&'a Catalog>,
    /// Row-store database (for [`Plan::ScanRow`]).
    pub row_db: Option<&'a RowDb>,
}

/// A fully materialized query result: schema plus rows.
#[derive(Clone, Debug, PartialEq)]
pub struct ResultSet {
    /// Result schema (key metadata cleared).
    pub schema: Schema,
    /// Materialized rows.
    pub rows: Vec<Vec<Value>>,
}

/// Resolves an aggregate's grouping columns and expressions against a
/// schema: `(op, input position, input type)` triples, the output column
/// defs, and the grouping positions — shared by the row path and the
/// columnar pushdown so both produce identical schemas.
#[allow(clippy::type_complexity)]
fn compile_aggs(
    schema: &Schema,
    group_by: &[String],
    aggs: &[crate::agg::AggExpr],
) -> Result<
    (
        Vec<(crate::agg::AggOp, usize, cods_storage::ValueType)>,
        Vec<ColumnDef>,
        Vec<usize>,
    ),
    StorageError,
> {
    let group_idx: Vec<usize> = group_by
        .iter()
        .map(|n| schema.index_of(n))
        .collect::<Result<_, _>>()?;
    let mut compiled = Vec::with_capacity(aggs.len());
    let mut out_cols: Vec<ColumnDef> = group_idx
        .iter()
        .map(|&g| schema.columns()[g].clone())
        .collect();
    for a in aggs {
        let col = schema.index_of(&a.column)?;
        let in_ty = schema.columns()[col].ty;
        compiled.push((a.op, col, in_ty));
        out_cols.push(ColumnDef::new(&a.alias, a.op.output_type(in_ty)));
    }
    Ok((compiled, out_cols, group_idx))
}

/// Executes a plan to a materialized [`ResultSet`].
pub fn execute(plan: &Plan, ctx: ExecContext<'_>) -> Result<ResultSet, StorageError> {
    match plan {
        Plan::ScanColumn { table } => {
            let cat = ctx
                .catalog
                .ok_or_else(|| StorageError::UnknownTable(format!("{table} (no catalog)")))?;
            let t = cat.get(table)?;
            Ok(ResultSet {
                schema: t.schema().clone(),
                rows: t.to_rows(),
            })
        }
        Plan::ScanRow { table } => {
            let db = ctx
                .row_db
                .ok_or_else(|| StorageError::UnknownTable(format!("{table} (no row db)")))?;
            let t = db.table(table)?;
            Ok(ResultSet {
                schema: t.schema().clone(),
                rows: t.scan().map(|(_, r)| r).collect(),
            })
        }
        Plan::Values { schema, rows } => Ok(ResultSet {
            schema: schema.clone(),
            rows: rows.clone(),
        }),
        Plan::Project { input, columns } => {
            let names: Vec<&str> = columns.iter().map(String::as_str).collect();
            // Projection pushdown: a projection directly over a column-store
            // scan only decompresses the named columns.
            if let Plan::ScanColumn { table } = input.as_ref() {
                if let Some(cat) = ctx.catalog {
                    let t = cat.get(table)?;
                    return Ok(ResultSet {
                        schema: t.schema().project(&names, &[])?,
                        rows: t.to_rows_projected(&names)?,
                    });
                }
            }
            let input = execute(input, ctx)?;
            let positions: Vec<usize> = names
                .iter()
                .map(|n| input.schema.index_of(n))
                .collect::<Result<_, _>>()?;
            Ok(ResultSet {
                schema: input.schema.project(&names, &[])?,
                rows: tuple::project(&input.rows, &positions),
            })
        }
        Plan::Filter { input, predicate } => {
            // Data-level pushdown: a filter directly over a column-store
            // scan evaluates the predicate on dictionaries + compressed
            // bitmaps and materializes only the selected rows.
            if let Plan::ScanColumn { table } = input.as_ref() {
                if let Some(cat) = ctx.catalog {
                    let t = cat.get(table)?;
                    let filtered = crate::bitmap_scan::filter_table(&t, predicate)?;
                    return Ok(ResultSet {
                        schema: filtered.schema().clone(),
                        rows: filtered.to_rows(),
                    });
                }
            }
            let input = execute(input, ctx)?;
            let compiled = predicate.compile(&input.schema)?;
            let rows = input
                .rows
                .into_iter()
                .filter(|r| compiled.eval(r))
                .collect();
            Ok(ResultSet {
                schema: input.schema,
                rows,
            })
        }
        Plan::Distinct { input } => {
            let input = execute(input, ctx)?;
            Ok(ResultSet {
                schema: input.schema,
                rows: tuple::distinct(input.rows),
            })
        }
        Plan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
        } => {
            // Columnar pushdown: joining two column-store scans runs the
            // partition-wise dictionary join (cost-model build side,
            // buffer-budget-aware multi-pass) instead of materializing
            // both inputs into tuples first.
            if let (Plan::ScanColumn { table: lt }, Plan::ScanColumn { table: rt }) =
                (left.as_ref(), right.as_ref())
            {
                if let Some(cat) = ctx.catalog {
                    let l = cat.get(lt)?;
                    let r = cat.get(rt)?;
                    let lk: Vec<usize> = left_keys
                        .iter()
                        .map(|n| l.schema().index_of(n))
                        .collect::<Result<_, _>>()?;
                    let rk: Vec<usize> = right_keys
                        .iter()
                        .map(|n| r.schema().index_of(n))
                        .collect::<Result<_, _>>()?;
                    let (_plan, rows) = crate::join::join_collect(&l, &r, &lk, &rk);
                    let mut cols: Vec<ColumnDef> = l.schema().columns().to_vec();
                    for (i, c) in r.schema().columns().iter().enumerate() {
                        if !rk.contains(&i) {
                            cols.push(c.clone());
                        }
                    }
                    return Ok(ResultSet {
                        schema: Schema::new(cols)?,
                        rows,
                    });
                }
            }
            let l = execute(left, ctx)?;
            let r = execute(right, ctx)?;
            let lk: Vec<usize> = left_keys
                .iter()
                .map(|n| l.schema.index_of(n))
                .collect::<Result<_, _>>()?;
            let rk: Vec<usize> = right_keys
                .iter()
                .map(|n| r.schema.index_of(n))
                .collect::<Result<_, _>>()?;
            let rows = tuple::hash_join(&l.rows, &r.rows, &lk, &rk);
            // Output schema: left columns ++ right non-key columns.
            let mut cols: Vec<ColumnDef> = l.schema.columns().to_vec();
            for (i, c) in r.schema.columns().iter().enumerate() {
                if !rk.contains(&i) {
                    cols.push(c.clone());
                }
            }
            Ok(ResultSet {
                schema: Schema::new(cols)?,
                rows,
            })
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            // Columnar pushdown: an aggregate directly over a column-store
            // scan runs on dictionary ids (with the per-column validity
            // fast path) instead of materializing every tuple first.
            if let Plan::ScanColumn { table } = input.as_ref() {
                if let Some(cat) = ctx.catalog {
                    let t = cat.get(table)?;
                    let (compiled, out_cols, group_idx) = compile_aggs(t.schema(), group_by, aggs)?;
                    let rows = crate::agg::aggregate_table(&t, &group_idx, &compiled)?;
                    return Ok(ResultSet {
                        schema: Schema::new(out_cols)?,
                        rows,
                    });
                }
            }
            // Mask pushdown: an aggregate over a filtered column-store scan
            // never materializes the filtered table — the predicate compiles
            // to a WAH mask and the columnar kernel aggregates under it.
            if let Plan::Filter {
                input: scan,
                predicate,
            } = input.as_ref()
            {
                if let (Plan::ScanColumn { table }, Some(cat)) = (scan.as_ref(), ctx.catalog) {
                    let t = cat.get(table)?;
                    let mask = crate::bitmap_scan::predicate_mask(&t, predicate)?;
                    let (compiled, out_cols, group_idx) = compile_aggs(t.schema(), group_by, aggs)?;
                    let rows =
                        crate::agg::aggregate_table_masked(&t, &group_idx, &compiled, Some(&mask))?;
                    return Ok(ResultSet {
                        schema: Schema::new(out_cols)?,
                        rows,
                    });
                }
            }
            let input = execute(input, ctx)?;
            let (compiled, out_cols, group_idx) = compile_aggs(&input.schema, group_by, aggs)?;
            let rows = crate::agg::aggregate(&input.rows, &group_idx, &compiled)?;
            Ok(ResultSet {
                schema: Schema::new(out_cols)?,
                rows,
            })
        }
        Plan::UnionAll { left, right } => {
            let l = execute(left, ctx)?;
            let r = execute(right, ctx)?;
            if !l.schema.union_compatible(&r.schema) {
                return Err(StorageError::InvalidSchema(
                    "UNION ALL inputs have different schemas".into(),
                ));
            }
            Ok(ResultSet {
                schema: l.schema,
                rows: tuple::union_all(l.rows, r.rows),
            })
        }
    }
}

/// Resolves a plan subtree down to a single column-store base table when it
/// is a `ScanColumn` under any stack of `Project`/`Filter` nodes, returning
/// the table and the combined estimated selectivity of the filters on the
/// way down. Non-columnar subtrees return `None`.
fn scan_base(plan: &Plan, ctx: ExecContext<'_>) -> Result<Option<(Arc<Table>, f64)>, StorageError> {
    match plan {
        Plan::ScanColumn { table } => match ctx.catalog {
            Some(cat) => Ok(Some((cat.get(table)?, 1.0))),
            None => Ok(None),
        },
        Plan::Filter { input, predicate } => Ok(scan_base(input, ctx)?.map(|(t, s)| {
            let sel = crate::cost::predicate_selectivity(&t, predicate);
            (t, s * sel)
        })),
        Plan::Project { input, .. } => scan_base(input, ctx),
        _ => Ok(None),
    }
}

fn explain_node(
    plan: &Plan,
    ctx: ExecContext<'_>,
    depth: usize,
    out: &mut String,
) -> Result<f64, StorageError> {
    use std::fmt::Write as _;
    let pad = "  ".repeat(depth);
    let line = |out: &mut String, s: String, est: f64| {
        let _ = writeln!(out, "{pad}{s}  ~{est:.0} rows");
    };
    let indent_block = |out: &mut String, text: &str| {
        for l in text.lines() {
            let _ = writeln!(out, "{pad}    {l}");
        }
    };
    Ok(match plan {
        Plan::ScanColumn { table } => {
            let est = match ctx.catalog {
                Some(cat) => {
                    let t = cat.get(table)?;
                    t.rows() as f64
                }
                None => 0.0,
            };
            line(out, format!("ScanColumn {table}"), est);
            est
        }
        Plan::ScanRow { table } => {
            let est = match ctx.row_db {
                Some(db) => db.table(table)?.scan().count() as f64,
                None => 0.0,
            };
            line(out, format!("ScanRow {table}"), est);
            est
        }
        Plan::Values { rows, .. } => {
            let est = rows.len() as f64;
            line(out, "Values".to_string(), est);
            est
        }
        Plan::Project { input, columns } => {
            let mut child = String::new();
            let est = explain_node(input, ctx, depth + 1, &mut child)?;
            line(out, format!("Project [{}]", columns.join(", ")), est);
            out.push_str(&child);
            est
        }
        Plan::Filter { input, predicate } => {
            let mut child = String::new();
            let in_est = explain_node(input, ctx, depth + 1, &mut child)?;
            let sel = match scan_base(input, ctx)? {
                Some((t, _)) => crate::cost::predicate_selectivity(&t, predicate),
                None => 1.0,
            };
            let est = in_est * sel;
            line(
                out,
                format!("Filter {predicate:?} (selectivity {sel:.3})"),
                est,
            );
            out.push_str(&child);
            est
        }
        Plan::Distinct { input } => {
            let mut child = String::new();
            let est = explain_node(input, ctx, depth + 1, &mut child)?;
            line(out, "Distinct".to_string(), est);
            out.push_str(&child);
            est
        }
        Plan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
        } => {
            let mut children = String::new();
            let le = explain_node(left, ctx, depth + 1, &mut children)?;
            let re = explain_node(right, ctx, depth + 1, &mut children)?;
            let est = le.max(re);
            line(
                out,
                format!(
                    "HashJoin on {} = {}",
                    left_keys.join(","),
                    right_keys.join(",")
                ),
                est,
            );
            if let (Some((lt, _)), Some((rt, _))) = (scan_base(left, ctx)?, scan_base(right, ctx)?)
            {
                let lk: Vec<usize> = left_keys
                    .iter()
                    .map(|n| lt.schema().index_of(n))
                    .collect::<Result<_, _>>()?;
                let rk: Vec<usize> = right_keys
                    .iter()
                    .map(|n| rt.schema().index_of(n))
                    .collect::<Result<_, _>>()?;
                let budget = cods_storage::segment_cache().stats().budget;
                let jp = crate::join::plan_join(&lt, &rt, &lk, &rk, budget);
                indent_block(out, &jp.ranking.describe());
                indent_block(
                    out,
                    &format!(
                        "partitions={} est_build_bytes={} budget={}",
                        jp.partitions,
                        jp.est_build_bytes,
                        if jp.budget_bytes == u64::MAX {
                            "unlimited".to_string()
                        } else {
                            jp.budget_bytes.to_string()
                        }
                    ),
                );
            }
            out.push_str(&children);
            est
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let mut child = String::new();
            let in_est = explain_node(input, ctx, depth + 1, &mut child)?;
            let mut est = in_est;
            line(
                out,
                format!(
                    "Aggregate [{}] by [{}]",
                    aggs.iter()
                        .map(|a| a.alias.as_str())
                        .collect::<Vec<_>>()
                        .join(", "),
                    group_by.join(", ")
                ),
                est,
            );
            if let Some((t, sel)) = scan_base(input, ctx)? {
                let group_idx: Vec<usize> = group_by
                    .iter()
                    .map(|n| t.schema().index_of(n))
                    .collect::<Result<_, _>>()?;
                let distinct: f64 = group_idx
                    .iter()
                    .map(|&g| t.column(g).dict().len() as f64)
                    .product();
                est = est.min(distinct.max(1.0));
                indent_block(
                    out,
                    &crate::cost::groupby_ranking(&t, &group_idx, sel).describe(),
                );
            }
            out.push_str(&child);
            est
        }
        Plan::UnionAll { left, right } => {
            let mut children = String::new();
            let le = explain_node(left, ctx, depth + 1, &mut children)?;
            let re = explain_node(right, ctx, depth + 1, &mut children)?;
            line(out, "UnionAll".to_string(), le + re);
            out.push_str(&children);
            le + re
        }
    })
}

/// Renders a plan tree with per-operator row estimates from resident
/// segment metadata, including — for the columnar pushdown operators — the
/// cost model's ranked strategy alternatives (group-by key representation,
/// join build side and partition passes) with the rejected options listed
/// under the chosen one.
pub fn explain(plan: &Plan, ctx: ExecContext<'_>) -> Result<String, StorageError> {
    let mut out = String::new();
    explain_node(plan, ctx, 0, &mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cods_storage::{Table, ValueType};

    fn setup_catalog() -> Catalog {
        let cat = Catalog::new();
        let schema = Schema::build(
            &[
                ("employee", ValueType::Str),
                ("skill", ValueType::Str),
                ("address", ValueType::Str),
            ],
            &[],
        )
        .unwrap();
        let rows: Vec<Vec<Value>> = [
            ("Jones", "Typing", "425 Grant Ave"),
            ("Jones", "Shorthand", "425 Grant Ave"),
            ("Ellis", "Alchemy", "747 Industrial Way"),
        ]
        .iter()
        .map(|&(e, s, a)| vec![Value::str(e), Value::str(s), Value::str(a)])
        .collect();
        cat.create(Table::from_rows("R", schema, &rows).unwrap())
            .unwrap();
        cat
    }

    #[test]
    fn scan_project_distinct() {
        let cat = setup_catalog();
        let ctx = ExecContext {
            catalog: Some(&cat),
            row_db: None,
        };
        let plan = Plan::ScanColumn { table: "R".into() }
            .project(&["employee", "address"])
            .distinct();
        let rs = execute(&plan, ctx).unwrap();
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.schema.names(), vec!["employee", "address"]);
    }

    #[test]
    fn filter_plan() {
        let cat = setup_catalog();
        let ctx = ExecContext {
            catalog: Some(&cat),
            row_db: None,
        };
        let plan =
            Plan::ScanColumn { table: "R".into() }.filter(Predicate::eq("employee", "Jones"));
        let rs = execute(&plan, ctx).unwrap();
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn join_plan_reconstructs() {
        let cat = setup_catalog();
        let ctx = ExecContext {
            catalog: Some(&cat),
            row_db: None,
        };
        let s = Plan::ScanColumn { table: "R".into() }.project(&["employee", "skill"]);
        let t = Plan::ScanColumn { table: "R".into() }
            .project(&["employee", "address"])
            .distinct();
        let joined = Plan::HashJoin {
            left: Box::new(s),
            right: Box::new(t),
            left_keys: vec!["employee".into()],
            right_keys: vec!["employee".into()],
        };
        let rs = execute(&joined, ctx).unwrap();
        assert_eq!(rs.rows.len(), 3);
        assert_eq!(rs.schema.names(), vec!["employee", "skill", "address"]);
    }

    #[test]
    fn row_db_scan() {
        let mut db = RowDb::new(cods_rowstore::InsertPolicy::Batch);
        let schema = Schema::build(&[("a", ValueType::Int)], &[]).unwrap();
        db.create_table("t", schema).unwrap();
        db.insert("t", &[Value::int(1)]).unwrap();
        let ctx = ExecContext {
            catalog: None,
            row_db: Some(&db),
        };
        let rs = execute(&Plan::ScanRow { table: "t".into() }, ctx).unwrap();
        assert_eq!(rs.rows, vec![vec![Value::int(1)]]);
    }

    #[test]
    fn missing_context_errors() {
        let ctx = ExecContext::default();
        assert!(execute(&Plan::ScanColumn { table: "x".into() }, ctx).is_err());
        assert!(execute(&Plan::ScanRow { table: "x".into() }, ctx).is_err());
    }

    #[test]
    fn aggregate_plan_counts_skills_per_employee() {
        let cat = setup_catalog();
        let ctx = ExecContext {
            catalog: Some(&cat),
            row_db: None,
        };
        let plan = Plan::Aggregate {
            input: Box::new(Plan::ScanColumn { table: "R".into() }),
            group_by: vec!["employee".into()],
            aggs: vec![crate::agg::AggExpr::new(
                crate::agg::AggOp::Count,
                "skill",
                "skills",
            )],
        };
        let rs = execute(&plan, ctx).unwrap();
        assert_eq!(rs.schema.names(), vec!["employee", "skills"]);
        let m: std::collections::HashMap<_, _> = rs
            .rows
            .into_iter()
            .map(|r| (r[0].clone(), r[1].clone()))
            .collect();
        assert_eq!(m[&Value::str("Jones")], Value::int(2));
        assert_eq!(m[&Value::str("Ellis")], Value::int(1));
    }

    #[test]
    fn aggregate_over_filter_pushes_mask_into_columnar_kernel() {
        let cat = setup_catalog();
        let ctx = ExecContext {
            catalog: Some(&cat),
            row_db: None,
        };
        let filtered_agg = |input: Plan| Plan::Aggregate {
            input: Box::new(input.filter(Predicate::eq("employee", "Jones"))),
            group_by: vec!["employee".into()],
            aggs: vec![crate::agg::AggExpr::new(
                crate::agg::AggOp::Count,
                "skill",
                "skills",
            )],
        };
        let pushed = execute(&filtered_agg(Plan::ScanColumn { table: "R".into() }), ctx).unwrap();
        // Same query through the row path (Values blocks every pushdown).
        let base = execute(&Plan::ScanColumn { table: "R".into() }, ctx).unwrap();
        let row_path = execute(
            &filtered_agg(Plan::Values {
                schema: base.schema,
                rows: base.rows,
            }),
            ctx,
        )
        .unwrap();
        assert_eq!(pushed, row_path);
        assert_eq!(pushed.rows, vec![vec![Value::str("Jones"), Value::int(2)]]);
    }

    #[test]
    fn join_pushdown_matches_row_oracle_multiset() {
        let cat = setup_catalog();
        let teams =
            Schema::build(&[("name", ValueType::Str), ("team", ValueType::Str)], &[]).unwrap();
        let rows: Vec<Vec<Value>> = [("Jones", "ops"), ("Ellis", "lab"), ("Nobody", "void")]
            .iter()
            .map(|&(n, t)| vec![Value::str(n), Value::str(t)])
            .collect();
        cat.create(Table::from_rows("T", teams, &rows).unwrap())
            .unwrap();
        let ctx = ExecContext {
            catalog: Some(&cat),
            row_db: None,
        };
        let keyed = |left: Plan, right: Plan| Plan::HashJoin {
            left: Box::new(left),
            right: Box::new(right),
            left_keys: vec!["employee".into()],
            right_keys: vec!["name".into()],
        };
        let pushed = execute(
            &keyed(
                Plan::ScanColumn { table: "R".into() },
                Plan::ScanColumn { table: "T".into() },
            ),
            ctx,
        )
        .unwrap();
        // Row oracle through Values inputs (blocks the pushdown).
        let as_values = |t: &str| {
            let rs = execute(&Plan::ScanColumn { table: t.into() }, ctx).unwrap();
            Plan::Values {
                schema: rs.schema,
                rows: rs.rows,
            }
        };
        let oracle = execute(&keyed(as_values("R"), as_values("T")), ctx).unwrap();
        assert_eq!(pushed.schema, oracle.schema);
        assert_eq!(
            pushed.schema.names(),
            vec!["employee", "skill", "address", "team"]
        );
        let mut a = pushed.rows;
        let mut b = oracle.rows;
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn explain_ranks_kernel_strategies() {
        let cat = setup_catalog();
        let ctx = ExecContext {
            catalog: Some(&cat),
            row_db: None,
        };
        let plan = Plan::Aggregate {
            input: Box::new(
                Plan::ScanColumn { table: "R".into() }.filter(Predicate::eq("employee", "Jones")),
            ),
            group_by: vec!["employee".into()],
            aggs: vec![crate::agg::AggExpr::new(
                crate::agg::AggOp::Count,
                "skill",
                "skills",
            )],
        };
        let text = explain(&plan, ctx).unwrap();
        assert!(text.contains("Aggregate"), "{text}");
        assert!(text.contains("group-by strategy"), "{text}");
        assert!(text.contains("keys=packed-u64"), "{text}");
        assert!(text.contains("x "), "rejected options listed: {text}");
        let join = Plan::HashJoin {
            left: Box::new(Plan::ScanColumn { table: "R".into() }),
            right: Box::new(Plan::ScanColumn { table: "R".into() }),
            left_keys: vec!["employee".into()],
            right_keys: vec!["employee".into()],
        };
        let text = explain(&join, ctx).unwrap();
        assert!(text.contains("join build side"), "{text}");
        assert!(text.contains("partitions="), "{text}");
    }

    #[test]
    fn union_all_requires_compatible_schemas() {
        let cat = setup_catalog();
        let ctx = ExecContext {
            catalog: Some(&cat),
            row_db: None,
        };
        let a = Plan::ScanColumn { table: "R".into() }.project(&["employee"]);
        let b = Plan::ScanColumn { table: "R".into() }.project(&["skill"]);
        let u = Plan::UnionAll {
            left: Box::new(a.clone()),
            right: Box::new(b),
        };
        assert!(execute(&u, ctx).is_err());
        let ok = Plan::UnionAll {
            left: Box::new(a.clone()),
            right: Box::new(a),
        };
        assert_eq!(execute(&ok, ctx).unwrap().rows.len(), 6);
    }
}
