//! # cods-query
//!
//! Query execution and **query-level data evolution** for the CODS
//! reproduction. This crate is the "expensive path" of the paper's Figure 2:
//! it materializes columns into tuples, runs relational operators on them,
//! and loads results back — rebuilding indexes (row store) or re-compressing
//! bitmaps (column store) from scratch.
//!
//! * [`tuple`](mod@tuple) — project / distinct / hash join / union over materialized rows;
//! * [`pred`] — the predicate language shared with PARTITION TABLE;
//! * [`plan`] — a small logical-plan layer over both storage engines;
//! * [`agg`] — grouped aggregation: a row kernel plus a vectorized,
//!   dictionary-native columnar kernel (`aggregate_table_masked`);
//! * [`join`] — the partition-wise hash join over dictionary-encoded
//!   columns, with a buffer-budget-aware multi-pass fallback;
//! * [`cost`] — per-operator cost estimates from resident segment
//!   metadata, used to rank kernel strategies and plan alternatives;
//! * [`evolution`] — the four baseline drivers behind Figure 3:
//!   row-level decompose/merge (policies C, C+I, S) and column-level
//!   decompose/merge (M).
//!
//! The data-level alternative that avoids all of this lives in the `cods`
//! crate.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod agg;
pub mod bitmap_scan;
pub mod cost;
pub mod evolution;
pub mod join;
mod par;
pub mod plan;
pub mod pred;
pub mod stream;
pub mod tuple;

pub use agg::{
    aggregate, aggregate_table, aggregate_table_masked, validity, AggExpr, AggOp, GroupKeySpace,
};
pub use bitmap_scan::{filter_table, predicate_mask};
pub use cost::{CostEstimate, RankedChoice};
pub use evolution::{
    decompose_column_level, decompose_row_level, merge_column_level, merge_row_level,
    EvolutionReport,
};
pub use join::{join_collect, join_stream, plan_join, BuildSide, JoinPlan, JoinStream};
pub use plan::{execute, explain, ExecContext, Plan, ResultSet};
pub use pred::{CmpOp, CompiledPredicate, Predicate};
pub use stream::{RowBatch, ScanStream};
