//! # cods-query
//!
//! Query execution and **query-level data evolution** for the CODS
//! reproduction. This crate is the "expensive path" of the paper's Figure 2:
//! it materializes columns into tuples, runs relational operators on them,
//! and loads results back — rebuilding indexes (row store) or re-compressing
//! bitmaps (column store) from scratch.
//!
//! * [`tuple`](mod@tuple) — project / distinct / hash join / union over materialized rows;
//! * [`pred`] — the predicate language shared with PARTITION TABLE;
//! * [`plan`] — a small logical-plan layer over both storage engines;
//! * [`evolution`] — the four baseline drivers behind Figure 3:
//!   row-level decompose/merge (policies C, C+I, S) and column-level
//!   decompose/merge (M).
//!
//! The data-level alternative that avoids all of this lives in the `cods`
//! crate.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod agg;
pub mod bitmap_scan;
pub mod evolution;
pub mod plan;
pub mod pred;
pub mod stream;
pub mod tuple;

pub use agg::{aggregate, aggregate_table, AggExpr, AggOp};
pub use bitmap_scan::{filter_table, predicate_mask};
pub use evolution::{
    decompose_column_level, decompose_row_level, merge_column_level, merge_row_level,
    EvolutionReport,
};
pub use plan::{execute, ExecContext, Plan, ResultSet};
pub use pred::{CmpOp, CompiledPredicate, Predicate};
pub use stream::{RowBatch, ScanStream};
