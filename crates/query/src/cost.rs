//! Per-operator cost estimates from **resident segment metadata**.
//!
//! Every estimate here reads only what a lazily opened catalog keeps in
//! memory — zone maps, per-segment present-id/ones stats, run counts,
//! dictionary sizes — so costing a plan never faults a payload through the
//! buffer cache. The estimates drive three concrete choices:
//!
//! * the group-by key representation (packed `u64` vs composite tuples,
//!   [`groupby_ranking`]);
//! * the hash join's build side and its partition-pass count against the
//!   buffer cache's byte budget ([`join_costing`]);
//! * predicate selectivity ([`predicate_selectivity`]) feeding both — a
//!   single comparison is costed *exactly* (the per-segment `ones` stats
//!   count its matching rows), boolean combinations use the usual
//!   independence algebra.
//!
//! [`crate::plan::explain`] renders each [`RankedChoice`] with the
//! alternatives the estimate rejected, in rank order.

use crate::agg::GroupKeySpace;
use crate::bitmap_scan::sat_set;
use crate::pred::Predicate;
use cods_storage::{EncodedColumn, Table};
use std::cmp::Ordering;

/// One costed alternative of a [`RankedChoice`].
#[derive(Clone, Debug)]
pub struct CostEstimate {
    /// Short strategy label, e.g. `keys=packed-u64` or `build=right`.
    pub label: String,
    /// Relative cost units — comparable only within one choice. Infinite
    /// for infeasible alternatives.
    pub cost: f64,
    /// The metadata inputs behind the number, human-readable.
    pub detail: String,
}

/// An estimate-driven decision: the cheapest feasible alternative first
/// (the chosen one), then every rejected alternative in rank order.
#[derive(Clone, Debug)]
pub struct RankedChoice {
    /// What was being decided.
    pub decision: String,
    /// Alternatives, cheapest first. Never empty.
    pub options: Vec<CostEstimate>,
}

impl RankedChoice {
    /// Ranks `options` by cost (stable: earlier entries win ties).
    fn ranked(decision: &str, mut options: Vec<CostEstimate>) -> RankedChoice {
        options.sort_by(|a, b| a.cost.partial_cmp(&b.cost).unwrap_or(Ordering::Equal));
        RankedChoice {
            decision: decision.to_string(),
            options,
        }
    }

    /// The chosen (cheapest feasible) alternative.
    pub fn chosen(&self) -> &CostEstimate {
        &self.options[0]
    }

    /// The rejected alternatives, best runner-up first.
    pub fn rejected(&self) -> &[CostEstimate] {
        &self.options[1..]
    }

    /// Renders the choice as indented lines: chosen first (`->`), then
    /// each rejected alternative (`x`).
    pub fn describe(&self) -> String {
        let mut out = format!("{}:", self.decision);
        for (i, o) in self.options.iter().enumerate() {
            let mark = if i == 0 { "->" } else { " x" };
            let cost = if o.cost.is_finite() {
                format!("{:.0}", o.cost)
            } else {
                "inf".to_string()
            };
            out.push_str(&format!(
                "\n  {mark} {} cost={cost} ({})",
                o.label, o.detail
            ));
        }
        out
    }
}

/// Estimated fraction of `t`'s rows satisfying `pred`, in `[0, 1]`.
///
/// A single comparison is exact: its satisfying value set is resolved
/// against the dictionary once, zone-mismatched segments contribute zero,
/// and surviving segments sum the resident `ones` stats of their
/// satisfying present ids — no payload is faulted. `And`/`Or`/`Not`
/// combine by independence.
pub fn predicate_selectivity(t: &Table, pred: &Predicate) -> f64 {
    if t.rows() == 0 {
        return 0.0;
    }
    match pred {
        Predicate::True => 1.0,
        Predicate::Compare {
            column,
            op,
            literal,
        } => {
            let Ok(col) = t.column_by_name(column) else {
                return 1.0;
            };
            let sat = sat_set(col, *op, literal);
            let mut hit = 0u64;
            for (i, slot) in col.segments().iter().enumerate() {
                if !sat.zone_may_match(col.zone(i)) {
                    continue;
                }
                for (&id, &ones) in slot.present_ids().iter().zip(slot.ones().iter()) {
                    if sat.contains(id) {
                        hit += ones;
                    }
                }
            }
            hit as f64 / t.rows() as f64
        }
        Predicate::And(a, b) => predicate_selectivity(t, a) * predicate_selectivity(t, b),
        Predicate::Or(a, b) => {
            let (sa, sb) = (predicate_selectivity(t, a), predicate_selectivity(t, b));
            (sa + sb - sa * sb).min(1.0)
        }
        Predicate::Not(p) => 1.0 - predicate_selectivity(t, p),
    }
}

/// Average runs per row of one column, from the resident per-segment run
/// counts: ~1.0 for uncompressible data, → 0 for heavily clustered RLE
/// input. This is what makes the group-by estimate O(runs)-aware.
fn run_fraction(col: &EncodedColumn) -> f64 {
    let (mut runs, mut rows) = (0u64, 0u64);
    for slot in col.segments() {
        runs += slot.run_count();
        rows += slot.rows();
    }
    if rows == 0 {
        0.0
    } else {
        runs as f64 / rows as f64
    }
}

/// Ranks the group-by key strategies for grouping `t` by `group_by` under
/// a predicate of the given selectivity. The work unit is one visited
/// `(id, run)` — clustered columns cost their run count, not their row
/// count. The kernel's actual choice ([`GroupKeySpace::choose`]) always
/// matches the winner here: packing is cheaper whenever it is feasible.
pub fn groupby_ranking(t: &Table, group_by: &[usize], selectivity: f64) -> RankedChoice {
    let sel = selectivity.clamp(0.0, 1.0);
    let rows = t.rows() as f64 * sel;
    let runs: f64 = group_by
        .iter()
        .map(|&g| (run_fraction(t.column(g)) * rows).max(1.0))
        .sum::<f64>()
        .max(1.0);
    let sizes: Vec<usize> = group_by.iter().map(|&g| t.column(g).dict().len()).collect();
    let bits = GroupKeySpace::total_bits(&sizes);
    let cols = group_by.len().max(1) as f64;
    let packed = CostEstimate {
        label: "keys=packed-u64".into(),
        cost: if bits <= 64 { runs } else { f64::INFINITY },
        detail: if bits <= 64 {
            format!("{bits} key bits, ~{runs:.0} id runs, one integer hash per run")
        } else {
            format!("infeasible: {bits} key bits > 64")
        },
    };
    let composite = CostEstimate {
        label: "keys=composite".into(),
        cost: runs * (1.5 + 0.25 * cols),
        detail: format!("~{runs:.0} id runs, tuple alloc + slice hash per run"),
    };
    let row = CostEstimate {
        label: "keys=row-values".into(),
        cost: (rows * cols * 8.0).max(8.0),
        detail: format!(
            "row-materialized baseline: ~{rows:.0} rows x {cols:.0} value clones + hashes"
        ),
    };
    RankedChoice::ranked("group-by strategy", vec![packed, composite, row])
}

/// Estimated resident bytes of a hash-join build over `build`: packed key
/// (8 B) + bucket ordinal (4 B) per row, payload value ids (4 B × column)
/// per row, plus the one-off dictionary remap arrays for the key columns.
pub fn join_build_bytes(build: &Table, key_cols: &[usize], payload_cols: usize) -> u64 {
    let rows = build.rows();
    let remap: u64 = key_cols
        .iter()
        .map(|&c| build.column(c).dict().len() as u64 * 4)
        .sum();
    rows * (8 + 4) + rows * 4 * payload_cols as u64 + remap
}

/// Partition passes needed to keep each pass's build state within
/// `budget` bytes: 1 when it already fits (or the budget is unlimited),
/// otherwise `ceil(bytes / budget)` capped at 64 passes.
pub fn join_passes(build_bytes: u64, budget: u64) -> u32 {
    if budget == u64::MAX || build_bytes <= budget {
        return 1;
    }
    if budget == 0 {
        return 64;
    }
    (build_bytes.div_ceil(budget)).min(64) as u32
}

/// The costed outcome of planning one hash join: which side to build on,
/// how many partition passes, and the ranked alternatives behind it.
#[derive(Clone, Debug)]
pub struct JoinCosting {
    /// `true` = build on the right input (the classic default; ties go
    /// right so a symmetric join reproduces the row oracle's order).
    pub build_right: bool,
    /// Partition passes for the chosen side.
    pub partitions: u32,
    /// Estimated build bytes for the chosen side.
    pub est_build_bytes: u64,
    /// Both alternatives, ranked.
    pub ranking: RankedChoice,
}

/// Costs both build sides of `left ⋈ right` against `budget` (the buffer
/// cache's byte budget) and picks the cheaper: each side's cost is
/// `passes × (build bytes + probe bytes)`, since an over-budget build
/// re-streams *both* inputs once per partition pass. Building right keeps
/// only the right non-key columns as payload; building left must carry
/// every left column (the output layout is left ++ right-non-key).
pub fn join_costing(
    left: &Table,
    right: &Table,
    left_keys: &[usize],
    right_keys: &[usize],
    budget: u64,
) -> JoinCosting {
    let right_payload = (0..right.arity())
        .filter(|i| !right_keys.contains(i))
        .count();
    let probe_bytes = |t: &Table| t.rows() * 4 * t.arity().max(1) as u64;
    let rb = join_build_bytes(right, right_keys, right_payload);
    let lb = join_build_bytes(left, left_keys, left.arity());
    let rp = join_passes(rb, budget);
    let lp = join_passes(lb, budget);
    let right_cost = rp as f64 * (rb + probe_bytes(left)) as f64;
    let left_cost = lp as f64 * (lb + probe_bytes(right)) as f64;
    let opt = |side: &str, bytes: u64, passes: u32, cost: f64, build_rows: u64| CostEstimate {
        label: format!("build={side}"),
        cost,
        detail: format!("~{bytes} build bytes over {build_rows} rows, {passes} pass(es)"),
    };
    let ranking = RankedChoice::ranked(
        "join build side",
        vec![
            opt("right", rb, rp, right_cost, right.rows()),
            opt("left", lb, lp, left_cost, left.rows()),
        ],
    );
    let build_right = ranking.chosen().label == "build=right";
    JoinCosting {
        build_right,
        partitions: if build_right { rp } else { lp },
        est_build_bytes: if build_right { rb } else { lb },
        ranking,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cods_storage::{Schema, Value, ValueType};

    fn table(rows: i64, seg: u64) -> Table {
        let schema = Schema::build(&[("k", ValueType::Int), ("v", ValueType::Int)], &[]).unwrap();
        let data: Vec<Vec<Value>> = (0..rows)
            .map(|i| vec![Value::int(i / 50), Value::int(i % 97)])
            .collect();
        Table::from_rows_with_segment_rows("t", schema, &data, seg).unwrap()
    }

    #[test]
    fn comparison_selectivity_is_exact_from_metadata() {
        let t = table(1_000, 64);
        // k in [0, 20): exactly half the rows (k = i/50 < 10).
        let s = predicate_selectivity(&t, &Predicate::lt("k", 10i64));
        assert!((s - 0.5).abs() < 1e-9, "{s}");
        assert_eq!(predicate_selectivity(&t, &Predicate::True), 1.0);
        assert_eq!(predicate_selectivity(&t, &Predicate::eq("k", 9999i64)), 0.0);
        let not = predicate_selectivity(&t, &Predicate::lt("k", 10i64).not());
        assert!((not - 0.5).abs() < 1e-9);
        // Empty table: nothing selects.
        let empty = Table::from_rows(
            "e",
            Schema::build(&[("k", ValueType::Int)], &[]).unwrap(),
            &[],
        )
        .unwrap();
        assert_eq!(predicate_selectivity(&empty, &Predicate::True), 0.0);
    }

    #[test]
    fn groupby_ranking_prefers_packed_when_feasible() {
        let t = table(1_000, 64);
        let r = groupby_ranking(&t, &[0], 1.0);
        assert_eq!(r.chosen().label, "keys=packed-u64");
        assert_eq!(r.options.len(), 3);
        assert!(r.describe().contains("->"));
        // Clustered k has far fewer runs than rows: the packed estimate
        // must reflect O(runs).
        assert!(r.chosen().cost < 1_000.0 / 2.0, "{}", r.chosen().cost);
    }

    #[test]
    fn join_costing_picks_small_side_and_partitions() {
        let small = table(100, 64);
        let big = table(10_000, 64);
        // Unlimited budget: build on the smaller input.
        let c = join_costing(&big, &small, &[0], &[0], u64::MAX);
        assert!(c.build_right);
        assert_eq!(c.partitions, 1);
        let c = join_costing(&small, &big, &[0], &[0], u64::MAX);
        assert!(!c.build_right);
        // Starved budget: multi-pass, capped.
        let c = join_costing(&big, &small, &[0], &[0], 256);
        assert!(c.partitions > 1);
        assert!(c.partitions <= 64);
        assert!(c.ranking.describe().contains("pass(es)"));
        assert_eq!(join_passes(0, 0), 1);
        assert_eq!(join_passes(10, 0), 64);
    }
}
