//! Row predicates — the condition language of PARTITION TABLE and the
//! filter operator.

use cods_storage::{Dictionary, Schema, StorageError, Value};

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }

    /// Expresses the satisfying value set of `column <op> literal` as a
    /// contiguous **rank interval** `[lo, hi)` in the dictionary's value
    /// order, or `None` when the set is not an interval (only `Ne` against
    /// a non-NULL literal). This is what makes zone maps decisive for range
    /// scans: finding the satisfying set costs two binary searches over the
    /// ordered view instead of one predicate evaluation per distinct value,
    /// and a segment is prunable iff its zone's rank span misses the
    /// interval.
    ///
    /// The interval matches [`CompiledPredicate::eval`]'s collapsed
    /// three-valued logic exactly: NULL rows satisfy nothing except
    /// `Eq/Le/Ge NULL` (which compare `Equal`) and `Ne <non-null>`.
    pub fn sat_rank_interval(self, dict: &Dictionary, literal: &Value) -> Option<(u32, u32)> {
        let order = dict.value_order();
        let ordered = order.ordered();
        let d = ordered.len() as u32;
        // NULL sorts first; its rank span is [0, nulls).
        let nulls = u32::from(d > 0 && dict.value(ordered[0]) == &Value::Null);
        if literal == &Value::Null {
            return Some(match self {
                // NULL op NULL compares Equal.
                CmpOp::Eq | CmpOp::Le | CmpOp::Ge => (0, nulls),
                CmpOp::Lt | CmpOp::Gt => (0, 0),
                // value != NULL is true for every non-null value.
                CmpOp::Ne => (nulls, d),
            });
        }
        let lt = ordered.partition_point(|&id| dict.value(id) < literal) as u32;
        let le = ordered.partition_point(|&id| dict.value(id) <= literal) as u32;
        Some(match self {
            CmpOp::Eq => (lt, le),
            // NULL < literal in the total order but never satisfies a
            // range comparison: clamp the interval past the NULL rank.
            CmpOp::Lt => (nulls, lt),
            CmpOp::Le => (nulls, le),
            CmpOp::Gt => (le, d),
            CmpOp::Ge => (lt, d),
            CmpOp::Ne => return None,
        })
    }
}

/// A boolean predicate over a row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Predicate {
    /// `column <op> literal`. NULL compares false against everything except
    /// `Eq NULL` / `Ne NULL`, matching three-valued logic collapsed to bool.
    Compare {
        /// Column name.
        column: String,
        /// Comparison operator.
        op: CmpOp,
        /// Literal to compare against.
        literal: Value,
    },
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
    /// Always true.
    True,
}

impl Predicate {
    /// Convenience constructor for `column = literal`.
    pub fn eq(column: impl Into<String>, literal: impl Into<Value>) -> Predicate {
        Predicate::Compare {
            column: column.into(),
            op: CmpOp::Eq,
            literal: literal.into(),
        }
    }

    /// Convenience constructor for `column < literal`.
    pub fn lt(column: impl Into<String>, literal: impl Into<Value>) -> Predicate {
        Predicate::Compare {
            column: column.into(),
            op: CmpOp::Lt,
            literal: literal.into(),
        }
    }

    /// Convenience constructor for `column >= literal`.
    pub fn ge(column: impl Into<String>, literal: impl Into<Value>) -> Predicate {
        Predicate::Compare {
            column: column.into(),
            op: CmpOp::Ge,
            literal: literal.into(),
        }
    }

    /// Conjunction helper.
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Disjunction helper.
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Negation helper.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Predicate {
        Predicate::Not(Box::new(self))
    }

    /// Every column name the predicate references, in syntax order (with
    /// duplicates). Lets planners validate a predicate against a schema
    /// without compiling it.
    pub fn columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Predicate::Compare { column, .. } => out.push(column.as_str()),
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Predicate::Not(p) => p.collect_columns(out),
            Predicate::True => {}
        }
    }

    /// Compiles the predicate against a schema, resolving column names to
    /// positions.
    pub fn compile(&self, schema: &Schema) -> Result<CompiledPredicate, StorageError> {
        Ok(match self {
            Predicate::Compare {
                column,
                op,
                literal,
            } => CompiledPredicate::Compare {
                column: schema.index_of(column)?,
                op: *op,
                literal: literal.clone(),
            },
            Predicate::And(a, b) => {
                CompiledPredicate::And(Box::new(a.compile(schema)?), Box::new(b.compile(schema)?))
            }
            Predicate::Or(a, b) => {
                CompiledPredicate::Or(Box::new(a.compile(schema)?), Box::new(b.compile(schema)?))
            }
            Predicate::Not(p) => CompiledPredicate::Not(Box::new(p.compile(schema)?)),
            Predicate::True => CompiledPredicate::True,
        })
    }
}

/// A predicate with column names resolved to row positions.
#[derive(Clone, Debug)]
pub enum CompiledPredicate {
    /// `row[column] <op> literal`.
    Compare {
        /// Resolved column position.
        column: usize,
        /// Comparison operator.
        op: CmpOp,
        /// Literal to compare against.
        literal: Value,
    },
    /// Conjunction.
    And(Box<CompiledPredicate>, Box<CompiledPredicate>),
    /// Disjunction.
    Or(Box<CompiledPredicate>, Box<CompiledPredicate>),
    /// Negation.
    Not(Box<CompiledPredicate>),
    /// Always true.
    True,
}

impl CompiledPredicate {
    /// Evaluates against a row.
    pub fn eval(&self, row: &[Value]) -> bool {
        match self {
            CompiledPredicate::Compare {
                column,
                op,
                literal,
            } => {
                let v = &row[*column];
                match (v, literal) {
                    // NULL only matches equality against NULL.
                    (Value::Null, Value::Null) => op.eval(std::cmp::Ordering::Equal),
                    (Value::Null, _) | (_, Value::Null) => matches!(op, CmpOp::Ne),
                    _ => op.eval(v.cmp(literal)),
                }
            }
            CompiledPredicate::And(a, b) => a.eval(row) && b.eval(row),
            CompiledPredicate::Or(a, b) => a.eval(row) || b.eval(row),
            CompiledPredicate::Not(p) => !p.eval(row),
            CompiledPredicate::True => true,
        }
    }

    /// Evaluates against a single value, as if the row were `[value]`.
    /// Used by the data-level PARTITION operator, which evaluates the
    /// predicate once per *distinct dictionary value* rather than per row.
    pub fn eval_value(&self, value: &Value) -> bool {
        self.eval(std::slice::from_ref(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cods_storage::ValueType;

    fn schema() -> Schema {
        Schema::build(&[("a", ValueType::Int), ("b", ValueType::Str)], &[]).unwrap()
    }

    #[test]
    fn comparisons() {
        let s = schema();
        let row = vec![Value::int(5), Value::str("x")];
        assert!(Predicate::eq("a", 5i64).compile(&s).unwrap().eval(&row));
        assert!(Predicate::lt("a", 6i64).compile(&s).unwrap().eval(&row));
        assert!(!Predicate::lt("a", 5i64).compile(&s).unwrap().eval(&row));
        assert!(Predicate::ge("a", 5i64).compile(&s).unwrap().eval(&row));
        assert!(Predicate::eq("b", "x").compile(&s).unwrap().eval(&row));
    }

    #[test]
    fn boolean_combinators() {
        let s = schema();
        let row = vec![Value::int(5), Value::str("x")];
        let p = Predicate::eq("a", 5i64).and(Predicate::eq("b", "x"));
        assert!(p.compile(&s).unwrap().eval(&row));
        let p = Predicate::eq("a", 9i64).or(Predicate::eq("b", "x"));
        assert!(p.compile(&s).unwrap().eval(&row));
        let p = Predicate::eq("a", 5i64).not();
        assert!(!p.compile(&s).unwrap().eval(&row));
        assert!(Predicate::True.compile(&s).unwrap().eval(&row));
    }

    #[test]
    fn null_semantics() {
        let s = schema();
        let row = vec![Value::Null, Value::str("x")];
        assert!(!Predicate::eq("a", 5i64).compile(&s).unwrap().eval(&row));
        assert!(!Predicate::lt("a", 5i64).compile(&s).unwrap().eval(&row));
        // NULL = NULL treated as true (collapsed 3VL, documented).
        let p = Predicate::Compare {
            column: "a".into(),
            op: CmpOp::Eq,
            literal: Value::Null,
        };
        assert!(p.compile(&s).unwrap().eval(&row));
    }

    #[test]
    fn unknown_column_fails_compile() {
        assert!(Predicate::eq("zzz", 1i64).compile(&schema()).is_err());
    }

    #[test]
    fn sat_rank_interval_matches_eval_value() {
        // Dictionary in first-appearance order: 7, NULL, 3, 9.
        let dict = cods_storage::Dictionary::from_values(vec![
            Value::int(7),
            Value::Null,
            Value::int(3),
            Value::int(9),
        ])
        .unwrap();
        let ranks = dict.value_order().ranks().to_vec();
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            for lit in [
                Value::Null,
                Value::int(2),
                Value::int(3),
                Value::int(8),
                Value::int(9),
                Value::int(10),
            ] {
                let probe = CompiledPredicate::Compare {
                    column: 0,
                    op,
                    literal: lit.clone(),
                };
                let interval = op.sat_rank_interval(&dict, &lit);
                match interval {
                    Some((lo, hi)) => {
                        for (id, v) in dict.iter() {
                            let r = ranks[id as usize];
                            assert_eq!(
                                lo <= r && r < hi,
                                probe.eval_value(v),
                                "{op:?} {lit} id {id} ({v})"
                            );
                        }
                    }
                    None => assert_eq!(op, CmpOp::Ne, "only Ne falls back"),
                }
            }
        }
        // Empty dictionary: every interval is empty.
        let empty = cods_storage::Dictionary::new();
        assert_eq!(
            CmpOp::Lt.sat_rank_interval(&empty, &Value::int(1)),
            Some((0, 0))
        );
    }

    #[test]
    fn eval_value_single_column() {
        let p = Predicate::Compare {
            column: "v".into(),
            op: CmpOp::Ge,
            literal: Value::int(10),
        };
        let s = Schema::build(&[("v", ValueType::Int)], &[]).unwrap();
        let c = p.compile(&s).unwrap();
        assert!(c.eval_value(&Value::int(10)));
        assert!(!c.eval_value(&Value::int(9)));
    }
}
