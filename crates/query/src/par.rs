//! Segment fan-out for the vectorized query kernels.
//!
//! Mirrors the evolution engine's pool seam: work decomposes into one task
//! per segment batch and runs on `rayon`'s persistent process-wide pool.
//! With one item or one worker the map degenerates to the serial loop, so
//! single-core hosts pay nothing for the seam.

use std::sync::OnceLock;

/// Worker count the kernels size their fan-out against. `CODS_QUERY_THREADS`
/// overrides the pool's native width — the thread-scaling smoke's knob, so a
/// 1-core CI container can still exercise the N>1 fan-out path (tasks then
/// interleave on the single worker; results must stay bit-identical).
pub(crate) fn threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("CODS_QUERY_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(rayon::current_num_threads)
    })
}

/// Maps `f` over `items` in parallel, preserving order.
pub(crate) fn map_parallel<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if items.len() <= 1 || threads() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    rayon::scope(|scope| {
        let f = &f;
        for (slot, item) in out.iter_mut().zip(items) {
            scope.spawn(move |_| {
                *slot = Some(f(item));
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("pool task did not complete"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let out = map_parallel(vec![1, 2, 3, 4], |x| x * 10);
        assert_eq!(out, vec![10, 20, 30, 40]);
    }

    #[test]
    fn empty_and_single() {
        let out: Vec<i32> = map_parallel(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
        assert_eq!(map_parallel(vec![7], |x| x + 1), vec![8]);
    }
}
