//! Data-level selection: evaluate a predicate *on the compressed
//! representation* — once per distinct dictionary value, never per row —
//! producing a row-selection [`Wah`] mask. The plan executor uses this as
//! the fast path for `Filter ∘ ScanColumn`, and PARTITION TABLE builds its
//! split masks the same way.
//!
//! Segment pruning: the scan walks the column's segment directory, and a
//! segment whose present-id stats contain none of the satisfying value ids
//! contributes a zero fill in O(1) — its bitmap words are never touched.
//! For a predicate selecting values concentrated in part of the table, the
//! scan cost is proportional to the segments where they occur.

use crate::pred::{CompiledPredicate, Predicate};
use cods_bitmap::Wah;
use cods_storage::{EncodedColumn, StorageError, Table};

/// Builds the selection mask of `pred` over `table` at data level.
///
/// Comparisons are evaluated per *distinct dictionary value*. Within each
/// segment — of either encoding — the present-id stats prune segments
/// containing no satisfying value to a zero fill in O(1). For bitmap
/// segments: when few present values satisfy, their compressed bitmaps are
/// OR-ed; when many do, a single id pass over the segment emits the mask
/// bits directly (avoiding a quadratic accumulation). For RLE segments the
/// mask is emitted run by run — O(runs), never O(rows). Boolean
/// combinators map to compressed-form AND/OR/NOT.
pub fn predicate_mask(table: &Table, pred: &Predicate) -> Result<Wah, StorageError> {
    let rows = table.rows();
    Ok(match pred {
        Predicate::Compare {
            column,
            op,
            literal,
        } => {
            let col = table.column_by_name(column)?;
            let probe = CompiledPredicate::Compare {
                column: 0,
                op: *op,
                literal: literal.clone(),
            };
            let sat: Vec<bool> = col
                .dict()
                .iter()
                .map(|(_, v)| probe.eval_value(v))
                .collect();
            column_mask(col, &sat)
        }
        Predicate::And(a, b) => predicate_mask(table, a)?.and(&predicate_mask(table, b)?),
        Predicate::Or(a, b) => predicate_mask(table, a)?.or(&predicate_mask(table, b)?),
        Predicate::Not(p) => predicate_mask(table, p)?.not(),
        Predicate::True => Wah::ones(rows),
    })
}

/// Emits the selection mask of the satisfying value ids (`sat[id]`) over
/// one column, walking its segment directory with stat-based pruning.
fn column_mask(col: &EncodedColumn, sat: &[bool]) -> Wah {
    let mut mask = Wah::new();
    match col {
        EncodedColumn::Bitmap(col) => {
            for seg in col.segments() {
                let satisfying: Vec<&Wah> = seg
                    .present_ids()
                    .iter()
                    .zip(seg.bitmaps())
                    .filter(|(&id, _)| sat[id as usize])
                    .map(|(_, bm)| bm)
                    .collect();
                if satisfying.is_empty() {
                    // Pruned: stats show no satisfying value in this range.
                    mask.append_run(false, seg.rows());
                } else if satisfying.len() <= 64 {
                    mask.append_bitmap(&Wah::union_many(satisfying, seg.rows()));
                } else {
                    // Many satisfying values: one pass over the segment's
                    // set bits instead of a wide union.
                    let mut bits = vec![false; seg.rows() as usize];
                    for bm in satisfying {
                        for pos in bm.iter_ones() {
                            bits[pos as usize] = true;
                        }
                    }
                    for b in bits {
                        mask.push(b);
                    }
                }
            }
        }
        EncodedColumn::Rle(col) => {
            for seg in col.segments() {
                if !seg.present_ids().iter().any(|&id| sat[id as usize]) {
                    // Pruned: run data never touched.
                    mask.append_run(false, seg.rows());
                    continue;
                }
                for &(id, n) in seg.seq().runs() {
                    mask.append_run(sat[id as usize], n);
                }
            }
        }
    }
    mask
}

/// Data-level table filter: bitmap-filters every column by the predicate
/// mask, returning the selected rows as a new (compressed) table in each
/// column's own encoding. The mask stays in compressed form end to end
/// (per-segment splits inside
/// [`cods_storage::EncodedColumn::filter_bitmap`]).
pub fn filter_table(table: &Table, pred: &Predicate) -> Result<Table, StorageError> {
    let mask = predicate_mask(table, pred)?;
    let columns: Vec<std::sync::Arc<EncodedColumn>> = table
        .columns()
        .iter()
        .map(|c| std::sync::Arc::new(c.filter_bitmap(&mask)))
        .collect();
    let schema = cods_storage::Schema::new(table.schema().columns().to_vec())?;
    Table::new(table.name(), schema, columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cods_storage::{Schema, Value, ValueType};

    fn table() -> Table {
        let schema = Schema::build(&[("k", ValueType::Int), ("v", ValueType::Str)], &[]).unwrap();
        let rows: Vec<Vec<Value>> = (0..100)
            .map(|i| vec![Value::int(i % 10), Value::str(format!("s{}", i % 3))])
            .collect();
        Table::from_rows("t", schema, &rows).unwrap()
    }

    #[test]
    fn mask_counts_match_row_filtering() {
        let t = table();
        let pred = Predicate::lt("k", 3i64);
        let mask = predicate_mask(&t, &pred).unwrap();
        let naive = t
            .to_rows()
            .iter()
            .filter(|r| matches!(&r[0], Value::Int(i) if *i < 3))
            .count() as u64;
        assert_eq!(mask.count_ones(), naive);
        for (row, tuple) in t.to_rows().iter().enumerate() {
            let expect = matches!(&tuple[0], Value::Int(i) if *i < 3);
            assert_eq!(mask.get(row as u64), expect, "row {row}");
        }
    }

    #[test]
    fn combinators_compose() {
        let t = table();
        let a = predicate_mask(&t, &Predicate::lt("k", 3i64)).unwrap();
        let b = predicate_mask(&t, &Predicate::eq("v", "s0")).unwrap();
        let and =
            predicate_mask(&t, &Predicate::lt("k", 3i64).and(Predicate::eq("v", "s0"))).unwrap();
        assert_eq!(and, a.and(&b));
        let not = predicate_mask(&t, &Predicate::lt("k", 3i64).not()).unwrap();
        assert_eq!(not, a.not());
    }

    #[test]
    fn many_satisfying_values_path() {
        // Predicate satisfied by > 64 distinct values exercises the id path.
        let schema = Schema::build(&[("k", ValueType::Int)], &[]).unwrap();
        let rows: Vec<Vec<Value>> = (0..1000).map(|i| vec![Value::int(i % 200)]).collect();
        let t = Table::from_rows("t", schema, &rows).unwrap();
        let mask = predicate_mask(&t, &Predicate::lt("k", 150i64)).unwrap();
        assert_eq!(mask.count_ones(), 750);
    }

    #[test]
    fn filter_table_returns_selected_rows() {
        let t = table();
        let filtered = filter_table(&t, &Predicate::eq("v", "s1")).unwrap();
        filtered.check_invariants().unwrap();
        assert_eq!(filtered.rows(), 33);
        for row in filtered.to_rows() {
            assert_eq!(row[1], Value::str("s1"));
        }
    }

    #[test]
    fn rle_masks_match_bitmap_masks() {
        let t = table();
        let rle = t.recoded(cods_storage::Encoding::Rle).unwrap();
        for pred in [
            Predicate::lt("k", 3i64),
            Predicate::eq("v", "s0"),
            Predicate::lt("k", 3i64).and(Predicate::eq("v", "s0")),
            Predicate::eq("k", 99i64), // nothing satisfies
            Predicate::True,
        ] {
            assert_eq!(
                predicate_mask(&t, &pred).unwrap(),
                predicate_mask(&rle, &pred).unwrap(),
                "masks diverge for {pred:?}"
            );
        }
    }

    #[test]
    fn rle_filter_preserves_encoding() {
        let t = table().recoded(cods_storage::Encoding::Rle).unwrap();
        let filtered = filter_table(&t, &Predicate::eq("v", "s1")).unwrap();
        filtered.check_invariants().unwrap();
        assert_eq!(filtered.rows(), 33);
        assert!(filtered
            .columns()
            .iter()
            .all(|c| c.encoding() == cods_storage::Encoding::Rle));
    }

    #[test]
    fn rle_segment_pruning_skips_absent_ranges() {
        // Value 0 lives only in the first quarter of the rows: the mask for
        // k = 0 over the clustered RLE column must come from pruned fills
        // plus one run walk, and still match the bitmap answer.
        let schema = Schema::build(&[("k", ValueType::Int)], &[]).unwrap();
        let rows: Vec<Vec<Value>> = (0..1_000).map(|i| vec![Value::int(i / 250)]).collect();
        let t = cods_storage::Table::from_rows_with_segment_rows("t", schema, &rows, 100).unwrap();
        let rle = t.recoded(cods_storage::Encoding::Rle).unwrap();
        let pred = Predicate::eq("k", 0i64);
        let mask = predicate_mask(&rle, &pred).unwrap();
        assert_eq!(mask, predicate_mask(&t, &pred).unwrap());
        assert_eq!(mask.count_ones(), 250);
        assert_eq!(mask.iter_ones().max(), Some(249));
    }
}
