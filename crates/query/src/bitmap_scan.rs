//! Data-level selection: evaluate a predicate *on the compressed
//! representation* — once per distinct dictionary value, never per row —
//! producing a row-selection [`Wah`] mask. The plan executor uses this as
//! the fast path for `Filter ∘ ScanColumn`, and PARTITION TABLE builds its
//! split masks the same way.
//!
//! The scan is stats-driven end to end:
//!
//! 1. **Satisfying set.** Range and equality comparisons resolve their
//!    satisfying value set to a contiguous *rank interval* in the
//!    dictionary's value order ([`CmpOp::sat_rank_interval`]) — two binary
//!    searches instead of one predicate evaluation per distinct value.
//!    Only `Ne <non-null>` falls back to a per-value boolean table.
//! 2. **Zone pruning.** Each segment carries a zone map (min/max present
//!    value in value order). A segment whose zone's rank span misses the
//!    satisfying interval is emitted as a zero fill in O(1) — neither its
//!    present-id stats nor its payload are touched.
//! 3. **Present-id pruning.** Surviving segments still skip to a zero fill
//!    when none of their present ids satisfies, exactly as before.
//!
//! Pruning never changes results: a pruned segment is one the unpruned walk
//! would have emitted as the same zero fill, so
//! [`predicate_mask`] and [`predicate_mask_unpruned`] are bit-identical
//! (locked by the `scan_pruning` bench and a differential proptest).

use crate::pred::{CmpOp, CompiledPredicate, Predicate};
use cods_bitmap::Wah;
use cods_storage::{EncodedColumn, SegmentEnc, StorageError, Table, Value, Zone};

/// The satisfying value set of one comparison, in whichever form the
/// operator admits: a rank interval in value order (everything except
/// `Ne`), or a per-id boolean table.
pub(crate) enum SatSet<'a> {
    /// Ids whose value-order rank lies in `[lo, hi)` satisfy.
    Interval {
        /// `ranks[id]` = value-order rank (borrowed from the dictionary's
        /// cached [`cods_storage::ValueOrder`]).
        ranks: &'a [u32],
        /// Inclusive lower rank bound.
        lo: u32,
        /// Exclusive upper rank bound.
        hi: u32,
    },
    /// Per-id satisfaction, indexed by value id.
    Bools(Vec<bool>),
}

impl SatSet<'_> {
    #[inline]
    pub(crate) fn contains(&self, id: u32) -> bool {
        match self {
            SatSet::Interval { ranks, lo, hi } => {
                let r = ranks[id as usize];
                *lo <= r && r < *hi
            }
            SatSet::Bools(sat) => sat[id as usize],
        }
    }

    /// Zone test: `false` only when *no* value inside the zone's
    /// `[min, max]` value interval can satisfy — sound because the
    /// satisfying set is a rank interval and every present id's rank lies
    /// within the zone's span. The boolean fallback never zone-prunes.
    #[inline]
    pub(crate) fn zone_may_match(&self, zone: Zone) -> bool {
        match self {
            SatSet::Interval { ranks, lo, hi } => {
                let zone_lo = ranks[zone.min_id as usize];
                let zone_hi = ranks[zone.max_id as usize];
                zone_hi >= *lo && zone_lo < *hi
            }
            SatSet::Bools(_) => true,
        }
    }
}

/// Builds the selection mask of `pred` over `table` at data level, with
/// zone-map pruning (see the module docs for the three pruning tiers).
pub fn predicate_mask(table: &Table, pred: &Predicate) -> Result<Wah, StorageError> {
    mask_rec(table, pred, true)
}

/// [`predicate_mask`] with zone pruning disabled: every segment's
/// present-id stats are consulted even when its zone already rules it out.
/// Exists for the pruning benchmarks and the differential test harness —
/// the two functions are bit-identical by construction.
pub fn predicate_mask_unpruned(table: &Table, pred: &Predicate) -> Result<Wah, StorageError> {
    mask_rec(table, pred, false)
}

fn mask_rec(table: &Table, pred: &Predicate, zones: bool) -> Result<Wah, StorageError> {
    let rows = table.rows();
    Ok(match pred {
        Predicate::Compare {
            column,
            op,
            literal,
        } => {
            let col = table.column_by_name(column)?;
            let sat = sat_set(col, *op, literal);
            column_mask(col, &sat, zones)
        }
        Predicate::And(a, b) => match fused_range_mask(table, a, b, zones)? {
            Some(mask) => mask,
            None => mask_rec(table, a, zones)?.and(&mask_rec(table, b, zones)?),
        },
        Predicate::Or(a, b) => mask_rec(table, a, zones)?.or(&mask_rec(table, b, zones)?),
        Predicate::Not(p) => mask_rec(table, p, zones)?.not(),
        Predicate::True => Wah::ones(rows),
    })
}

/// BETWEEN fusion: a conjunction of two interval-admitting comparisons on
/// the *same column* (`k >= a AND k < b` and friends) is one rank interval
/// — the intersection — so it scans the column once instead of building and
/// AND-ing two half-range masks that each touch most of the table. Each row
/// holds exactly one value, so satisfying both comparisons is exactly
/// having its rank in both intervals; the fused mask is bit-identical to
/// the composed one. This is what makes zone maps decisive for range
/// scans: only the segments overlapping `[a, b)` are ever visited.
fn fused_range_mask(
    table: &Table,
    a: &Predicate,
    b: &Predicate,
    zones: bool,
) -> Result<Option<Wah>, StorageError> {
    let (
        Predicate::Compare {
            column: col_a,
            op: op_a,
            literal: lit_a,
        },
        Predicate::Compare {
            column: col_b,
            op: op_b,
            literal: lit_b,
        },
    ) = (a, b)
    else {
        return Ok(None);
    };
    if col_a != col_b {
        return Ok(None);
    }
    let col = table.column_by_name(col_a)?;
    let dict = col.dict();
    let (Some((lo_a, hi_a)), Some((lo_b, hi_b))) = (
        op_a.sat_rank_interval(dict, lit_a),
        op_b.sat_rank_interval(dict, lit_b),
    ) else {
        return Ok(None);
    };
    let sat = SatSet::Interval {
        ranks: dict.value_order().ranks(),
        lo: lo_a.max(lo_b),
        hi: hi_a.min(hi_b),
    };
    Ok(Some(column_mask(col, &sat, zones)))
}

/// Resolves one comparison's satisfying set against a column's dictionary:
/// rank interval when the operator admits one, per-value booleans otherwise.
pub(crate) fn sat_set<'a>(col: &'a EncodedColumn, op: CmpOp, literal: &Value) -> SatSet<'a> {
    let dict = col.dict();
    match op.sat_rank_interval(dict, literal) {
        Some((lo, hi)) => SatSet::Interval {
            ranks: dict.value_order().ranks(),
            lo,
            hi,
        },
        None => {
            let probe = CompiledPredicate::Compare {
                column: 0,
                op,
                literal: literal.clone(),
            };
            SatSet::Bools(dict.iter().map(|(_, v)| probe.eval_value(v)).collect())
        }
    }
}

/// Emits the selection mask of the satisfying value set over one column,
/// walking its unified segment directory with zone- and stat-based pruning
/// and dispatching the mask build on each segment's own encoding — a mixed
/// directory's bitmap and RLE segments each take their native path, and
/// the resulting mask is byte-identical whatever the mix.
///
/// Both pruning tiers run on the slot's *resident metadata* (zone, present
/// ids, cached ones): a pruned segment of a lazily opened column is never
/// faulted in — only survivors touch the buffer cache.
fn column_mask(col: &EncodedColumn, sat: &SatSet<'_>, zones: bool) -> Wah {
    let mut mask = Wah::new();
    for (i, slot) in col.segments().iter().enumerate() {
        if zones && !sat.zone_may_match(col.zone(i)) {
            // Zone-pruned: neither stats nor payload touched.
            mask.append_run(false, slot.rows());
            continue;
        }
        // Present-id tier, still metadata-only: stats show whether any
        // satisfying value lives in this row range, and how many rows.
        let mut sat_rows = 0u64;
        let mut sat_ids = 0usize;
        for (&id, &ones) in slot.present_ids().iter().zip(slot.ones().iter()) {
            if sat.contains(id) {
                sat_ids += 1;
                sat_rows += ones;
            }
        }
        if sat_ids == 0 {
            // Pruned: no satisfying value in this range; payload untouched.
            mask.append_run(false, slot.rows());
            continue;
        }
        // Survivor: fault the payload in (through the buffer cache) and
        // build this range's mask on its native encoding.
        match &slot.enc() {
            SegmentEnc::Bitmap(seg) => {
                let mut satisfying: Vec<&Wah> = Vec::with_capacity(sat_ids);
                for (&id, bm) in seg.present_ids().iter().zip(seg.bitmaps()) {
                    if sat.contains(id) {
                        satisfying.push(bm);
                    }
                }
                if satisfying.len() <= 64 {
                    mask.append_bitmap(&Wah::union_many(satisfying, seg.rows()));
                } else if sat_rows * 8 <= seg.rows() {
                    // Many values but few rows (the cached ones say so up
                    // front): merge the set positions — O(selected · log)
                    // instead of paging a dense bit-vector over the whole
                    // segment. This is the hot shape of a range scan over a
                    // wide dictionary.
                    let mut positions: Vec<u64> = Vec::with_capacity(sat_rows as usize);
                    for bm in &satisfying {
                        positions.extend(bm.iter_ones());
                    }
                    positions.sort_unstable();
                    mask.append_bitmap(&Wah::from_sorted_positions(positions, seg.rows()));
                } else {
                    // Many satisfying values and dense selection: one pass
                    // over the segment's set bits instead of a wide union.
                    let mut bits = vec![false; seg.rows() as usize];
                    for bm in satisfying {
                        for pos in bm.iter_ones() {
                            bits[pos as usize] = true;
                        }
                    }
                    for b in bits {
                        mask.push(b);
                    }
                }
            }
            SegmentEnc::Rle(seg) => {
                for &(id, n) in seg.seq().runs() {
                    mask.append_run(sat.contains(id), n);
                }
            }
        }
    }
    mask
}

/// Data-level table filter: bitmap-filters every column by the predicate
/// mask, returning the selected rows as a new (compressed) table in each
/// column's own encoding. The mask stays in compressed form end to end
/// (per-segment splits inside
/// [`cods_storage::EncodedColumn::filter_bitmap`]).
pub fn filter_table(table: &Table, pred: &Predicate) -> Result<Table, StorageError> {
    let mask = predicate_mask(table, pred)?;
    let columns: Vec<std::sync::Arc<EncodedColumn>> = table
        .columns()
        .iter()
        .map(|c| std::sync::Arc::new(c.filter_bitmap(&mask)))
        .collect();
    let schema = cods_storage::Schema::new(table.schema().columns().to_vec())?;
    Table::new(table.name(), schema, columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cods_storage::{Schema, Value, ValueType};

    fn table() -> Table {
        let schema = Schema::build(&[("k", ValueType::Int), ("v", ValueType::Str)], &[]).unwrap();
        let rows: Vec<Vec<Value>> = (0..100)
            .map(|i| vec![Value::int(i % 10), Value::str(format!("s{}", i % 3))])
            .collect();
        Table::from_rows("t", schema, &rows).unwrap()
    }

    #[test]
    fn mask_counts_match_row_filtering() {
        let t = table();
        let pred = Predicate::lt("k", 3i64);
        let mask = predicate_mask(&t, &pred).unwrap();
        let naive = t
            .to_rows()
            .iter()
            .filter(|r| matches!(&r[0], Value::Int(i) if *i < 3))
            .count() as u64;
        assert_eq!(mask.count_ones(), naive);
        for (row, tuple) in t.to_rows().iter().enumerate() {
            let expect = matches!(&tuple[0], Value::Int(i) if *i < 3);
            assert_eq!(mask.get(row as u64), expect, "row {row}");
        }
    }

    #[test]
    fn combinators_compose() {
        let t = table();
        let a = predicate_mask(&t, &Predicate::lt("k", 3i64)).unwrap();
        let b = predicate_mask(&t, &Predicate::eq("v", "s0")).unwrap();
        let and =
            predicate_mask(&t, &Predicate::lt("k", 3i64).and(Predicate::eq("v", "s0"))).unwrap();
        assert_eq!(and, a.and(&b));
        let not = predicate_mask(&t, &Predicate::lt("k", 3i64).not()).unwrap();
        assert_eq!(not, a.not());
    }

    #[test]
    fn many_satisfying_values_path() {
        // Predicate satisfied by > 64 distinct values exercises the id path.
        let schema = Schema::build(&[("k", ValueType::Int)], &[]).unwrap();
        let rows: Vec<Vec<Value>> = (0..1000).map(|i| vec![Value::int(i % 200)]).collect();
        let t = Table::from_rows("t", schema, &rows).unwrap();
        let mask = predicate_mask(&t, &Predicate::lt("k", 150i64)).unwrap();
        assert_eq!(mask.count_ones(), 750);
    }

    #[test]
    fn filter_table_returns_selected_rows() {
        let t = table();
        let filtered = filter_table(&t, &Predicate::eq("v", "s1")).unwrap();
        filtered.check_invariants().unwrap();
        assert_eq!(filtered.rows(), 33);
        for row in filtered.to_rows() {
            assert_eq!(row[1], Value::str("s1"));
        }
    }

    #[test]
    fn rle_masks_match_bitmap_masks() {
        let t = table();
        let rle = t.recoded(cods_storage::Encoding::Rle).unwrap();
        for pred in [
            Predicate::lt("k", 3i64),
            Predicate::eq("v", "s0"),
            Predicate::lt("k", 3i64).and(Predicate::eq("v", "s0")),
            Predicate::eq("k", 99i64), // nothing satisfies
            Predicate::True,
        ] {
            assert_eq!(
                predicate_mask(&t, &pred).unwrap(),
                predicate_mask(&rle, &pred).unwrap(),
                "masks diverge for {pred:?}"
            );
        }
    }

    #[test]
    fn rle_filter_preserves_encoding() {
        let t = table().recoded(cods_storage::Encoding::Rle).unwrap();
        let filtered = filter_table(&t, &Predicate::eq("v", "s1")).unwrap();
        filtered.check_invariants().unwrap();
        assert_eq!(filtered.rows(), 33);
        assert!(filtered
            .columns()
            .iter()
            .all(|c| c.is_uniform(cods_storage::Encoding::Rle)));
    }

    #[test]
    fn pruned_and_unpruned_masks_are_bit_identical() {
        // Clustered + uniform, bitmap + RLE, every operator, literals in
        // and out of range, NULL literals, and boolean combinations.
        let schema = Schema::build(&[("k", ValueType::Int), ("v", ValueType::Int)], &[]).unwrap();
        let rows: Vec<Vec<Value>> = (0..2_000)
            .map(|i| {
                vec![
                    Value::int(i / 50), // clustered
                    if i % 13 == 0 {
                        Value::Null
                    } else {
                        Value::int((i * 37) % 97) // scattered, with NULLs
                    },
                ]
            })
            .collect();
        let bitmap =
            cods_storage::Table::from_rows_with_segment_rows("t", schema, &rows, 128).unwrap();
        let rle = bitmap.recoded(cods_storage::Encoding::Rle).unwrap();
        let preds = [
            Predicate::lt("k", 7i64),
            Predicate::ge("k", 33i64),
            Predicate::eq("k", 17i64),
            Predicate::eq("k", 999i64), // matches nothing
            Predicate::lt("k", -5i64),  // below every value
            Predicate::ge("k", 0i64),   // matches everything
            Predicate::lt("v", 40i64),
            Predicate::eq("v", 0i64).not(),
            Predicate::Compare {
                column: "v".into(),
                op: CmpOp::Ne,
                literal: Value::int(3),
            },
            Predicate::Compare {
                column: "v".into(),
                op: CmpOp::Eq,
                literal: Value::Null,
            },
            Predicate::Compare {
                column: "v".into(),
                op: CmpOp::Le,
                literal: Value::Null,
            },
            Predicate::ge("k", 10i64).and(Predicate::lt("k", 12i64)),
            Predicate::lt("k", 3i64).or(Predicate::ge("v", 90i64)),
            Predicate::True,
        ];
        for t in [&bitmap, &rle] {
            for pred in &preds {
                let pruned = predicate_mask(t, pred).unwrap();
                let unpruned = predicate_mask_unpruned(t, pred).unwrap();
                assert_eq!(pruned, unpruned, "masks diverge for {pred:?}");
                // Cross-check against row-level evaluation.
                let compiled = pred.compile(t.schema()).unwrap();
                for (row, tuple) in t.to_rows().iter().enumerate() {
                    assert_eq!(
                        pruned.get(row as u64),
                        compiled.eval(tuple),
                        "row {row} for {pred:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn between_fusion_is_bit_identical_to_composed_masks() {
        let schema = Schema::build(&[("k", ValueType::Int), ("v", ValueType::Int)], &[]).unwrap();
        let rows: Vec<Vec<Value>> = (0..3_000)
            .map(|i| vec![Value::int(i / 30), Value::int((i * 41) % 50)])
            .collect();
        let bitmap =
            cods_storage::Table::from_rows_with_segment_rows("t", schema, &rows, 256).unwrap();
        let rle = bitmap.recoded(cods_storage::Encoding::Rle).unwrap();
        for t in [&bitmap, &rle] {
            for (lo, hi) in [(10i64, 20i64), (0, 1), (95, 200), (-5, 3), (40, 30)] {
                let between = Predicate::ge("k", lo).and(Predicate::lt("k", hi));
                let fused = predicate_mask(t, &between).unwrap();
                let composed = predicate_mask(t, &Predicate::ge("k", lo))
                    .unwrap()
                    .and(&predicate_mask(t, &Predicate::lt("k", hi)).unwrap());
                assert_eq!(fused, composed, "between [{lo}, {hi})");
                assert_eq!(fused, predicate_mask_unpruned(t, &between).unwrap());
            }
            // Mixed-column And and Ne sides fall back to composition.
            let mixed = Predicate::ge("k", 5i64).and(Predicate::lt("v", 25i64));
            let m = predicate_mask(t, &mixed).unwrap();
            assert_eq!(m, predicate_mask_unpruned(t, &mixed).unwrap());
            let ne_side = Predicate::ge("k", 5i64).and(Predicate::Compare {
                column: "k".into(),
                op: CmpOp::Ne,
                literal: Value::int(7),
            });
            let m = predicate_mask(t, &ne_side).unwrap();
            assert_eq!(m, predicate_mask_unpruned(t, &ne_side).unwrap());
            let compiled = ne_side.compile(t.schema()).unwrap();
            for (row, tuple) in t.to_rows().iter().enumerate() {
                assert_eq!(m.get(row as u64), compiled.eval(tuple), "row {row}");
            }
        }
    }

    #[test]
    fn zone_pruning_skips_range_mismatched_segments() {
        // k is clustered: segment s covers values [4s, 4(s+1)). A narrow
        // range predicate must produce the same mask whether or not zones
        // are consulted, and the zones must actually exclude the segment.
        let schema = Schema::build(&[("k", ValueType::Int)], &[]).unwrap();
        let rows: Vec<Vec<Value>> = (0..1_000).map(|i| vec![Value::int(i / 25)]).collect();
        let t = cods_storage::Table::from_rows_with_segment_rows("t", schema, &rows, 100).unwrap();
        let col = t.column(0);
        // Segment 0 holds values 0..4; its zone cannot match k >= 20.
        let (lo, hi) = CmpOp::Ge
            .sat_rank_interval(col.dict(), &Value::int(20))
            .unwrap();
        let sat = SatSet::Interval {
            ranks: col.dict().value_order().ranks(),
            lo,
            hi,
        };
        assert!(!sat.zone_may_match(col.zone(0)));
        assert!(sat.zone_may_match(col.zone(col.segment_count() - 1)));
        let pred = Predicate::ge("k", 20i64);
        assert_eq!(
            predicate_mask(&t, &pred).unwrap(),
            predicate_mask_unpruned(&t, &pred).unwrap()
        );
        assert_eq!(predicate_mask(&t, &pred).unwrap().count_ones(), 500);
    }

    #[test]
    fn rle_segment_pruning_skips_absent_ranges() {
        // Value 0 lives only in the first quarter of the rows: the mask for
        // k = 0 over the clustered RLE column must come from pruned fills
        // plus one run walk, and still match the bitmap answer.
        let schema = Schema::build(&[("k", ValueType::Int)], &[]).unwrap();
        let rows: Vec<Vec<Value>> = (0..1_000).map(|i| vec![Value::int(i / 250)]).collect();
        let t = cods_storage::Table::from_rows_with_segment_rows("t", schema, &rows, 100).unwrap();
        let rle = t.recoded(cods_storage::Encoding::Rle).unwrap();
        let pred = Predicate::eq("k", 0i64);
        let mask = predicate_mask(&rle, &pred).unwrap();
        assert_eq!(mask, predicate_mask(&t, &pred).unwrap());
        assert_eq!(mask.count_ones(), 250);
        assert_eq!(mask.iter_ones().max(), Some(249));
    }
}
