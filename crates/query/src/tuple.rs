//! Tuple-at-a-time operators over materialized rows — the machinery
//! query-level evolution is forced to run (Figure 2, right-hand path):
//! project, distinct, hash join, union.

use cods_storage::Value;
use std::collections::HashMap;

/// Projects each row to the given column positions.
pub fn project(rows: &[Vec<Value>], columns: &[usize]) -> Vec<Vec<Value>> {
    rows.iter()
        .map(|r| columns.iter().map(|&c| r[c].clone()).collect())
        .collect()
}

/// Removes duplicate rows (hash-based DISTINCT), preserving first-seen order.
pub fn distinct(rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    let mut seen: HashMap<Vec<Value>, ()> = HashMap::with_capacity(rows.len());
    let mut out = Vec::new();
    for r in rows {
        if seen.insert(r.clone(), ()).is_none() {
            out.push(r);
        }
    }
    out
}

/// Hash equi-join. Builds on `right`, probes with `left`. The output row is
/// the left row followed by the right row's columns *excluding* the join
/// columns (natural-join column layout).
pub fn hash_join(
    left: &[Vec<Value>],
    right: &[Vec<Value>],
    left_keys: &[usize],
    right_keys: &[usize],
) -> Vec<Vec<Value>> {
    assert_eq!(left_keys.len(), right_keys.len(), "join key arity mismatch");
    let mut table: HashMap<Vec<Value>, Vec<&Vec<Value>>> = HashMap::with_capacity(right.len());
    for r in right {
        let key: Vec<Value> = right_keys.iter().map(|&k| r[k].clone()).collect();
        table.entry(key).or_default().push(r);
    }
    let right_payload: Vec<usize> = (0..right.first().map_or(0, |r| r.len()))
        .filter(|i| !right_keys.contains(i))
        .collect();
    let mut out = Vec::new();
    for l in left {
        let key: Vec<Value> = left_keys.iter().map(|&k| l[k].clone()).collect();
        if let Some(matches) = table.get(&key) {
            for r in matches {
                let mut row = l.clone();
                row.extend(right_payload.iter().map(|&i| r[i].clone()));
                out.push(row);
            }
        }
    }
    out
}

/// Concatenates two row sets (UNION ALL).
pub fn union_all(mut a: Vec<Vec<Value>>, b: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    a.extend(b);
    a
}

/// Counts occurrences of each distinct key projection — the first pass of
/// general mergence at query level, and a general GROUP BY COUNT.
pub fn group_counts(rows: &[Vec<Value>], keys: &[usize]) -> HashMap<Vec<Value>, u64> {
    let mut counts = HashMap::new();
    for r in rows {
        let key: Vec<Value> = keys.iter().map(|&k| r[k].clone()).collect();
        *counts.entry(key).or_insert(0) += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(items: &[(&str, i64)]) -> Vec<Vec<Value>> {
        items
            .iter()
            .map(|&(s, i)| vec![Value::str(s), Value::int(i)])
            .collect()
    }

    #[test]
    fn project_reorders() {
        let rows = v(&[("a", 1), ("b", 2)]);
        let p = project(&rows, &[1, 0]);
        assert_eq!(p[0], vec![Value::int(1), Value::str("a")]);
        assert_eq!(p[1], vec![Value::int(2), Value::str("b")]);
    }

    #[test]
    fn distinct_dedups_preserving_order() {
        let rows = v(&[("a", 1), ("b", 2), ("a", 1), ("c", 3), ("b", 2)]);
        let d = distinct(rows);
        assert_eq!(d, v(&[("a", 1), ("b", 2), ("c", 3)]));
    }

    #[test]
    fn hash_join_basic() {
        // left(emp, addr_id) ⋈ right(addr_id, addr)
        let left = v(&[("jones", 1), ("ellis", 2), ("none", 9)]);
        let right: Vec<Vec<Value>> = vec![
            vec![Value::int(1), Value::str("grant ave")],
            vec![Value::int(2), Value::str("industrial way")],
        ];
        let joined = hash_join(&left, &right, &[1], &[0]);
        assert_eq!(joined.len(), 2);
        assert_eq!(
            joined[0],
            vec![Value::str("jones"), Value::int(1), Value::str("grant ave")]
        );
    }

    #[test]
    fn hash_join_duplicates_multiply() {
        let left: Vec<Vec<Value>> = vec![
            vec![Value::int(1), Value::str("l1")],
            vec![Value::int(1), Value::str("l2")],
        ];
        let right: Vec<Vec<Value>> = vec![
            vec![Value::int(1), Value::str("r1")],
            vec![Value::int(1), Value::str("r2")],
        ];
        let joined = hash_join(&left, &right, &[0], &[0]);
        assert_eq!(joined.len(), 4); // n1 × n2
    }

    #[test]
    fn hash_join_empty_sides() {
        let rows = v(&[("a", 1)]);
        assert!(hash_join(&[], &rows, &[1], &[1]).is_empty());
        assert!(hash_join(&rows, &[], &[1], &[1]).is_empty());
    }

    #[test]
    fn group_counts_counts() {
        let rows = v(&[("a", 1), ("a", 2), ("b", 3)]);
        let counts = group_counts(&rows, &[0]);
        assert_eq!(counts[&vec![Value::str("a")]], 2);
        assert_eq!(counts[&vec![Value::str("b")]], 1);
    }

    #[test]
    fn union_all_concatenates() {
        let a = v(&[("a", 1)]);
        let b = v(&[("b", 2)]);
        assert_eq!(union_all(a, b).len(), 2);
    }
}
