//! Partition-wise hash join over dictionary-encoded columns.
//!
//! The join never compares values in its inner loop. Dictionary id spaces
//! are reconciled **once** up front: each probe-side key dictionary is
//! remapped into the build-side key dictionary ([`Dictionary::remap_to`]),
//! so a probe row whose key value is absent from the build dictionary is
//! rejected by a single array lookup, and every surviving comparison is a
//! `u32`/`u64` hash-map probe. Build keys pack into one `u64` when the
//! combined dictionary widths fit ([`GroupKeySpace`]), falling back to
//! composite id tuples.
//!
//! Memory is bounded on both sides:
//!
//! * the **probe** side streams through [`ScanStream`], so at most ~one
//!   segment per column is resident at a time;
//! * the **build** side is guarded by the buffer cache's byte budget — if
//!   the estimated build state does not fit ([`cost::join_passes`]), the
//!   join runs multiple partition passes, each building only the rows
//!   whose key hashes into the current partition and re-streaming the
//!   probe side.
//!
//! With `build = Right` and one partition, the output is row-identical to
//! the row-oracle [`crate::tuple::hash_join`] (probe rows in table order,
//! bucket entries in build-row order). Other plans permute row order but
//! keep the output multiset identical. NULL keys join (matching the
//! oracle's `Value::Null == Value::Null` semantics): NULL is just another
//! dictionary id here.

use crate::agg::GroupKeySpace;
use crate::cost::{self, RankedChoice};
use crate::pred::Predicate;
use crate::stream::ScanStream;
use cods_storage::{segment_cache, Table, Value};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Which input the hash table is built over.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BuildSide {
    /// Build over the left input, stream the right.
    Left,
    /// Build over the right input, stream the left (the row oracle's shape).
    Right,
}

/// The cost model's verdict for one hash join, produced by [`plan_join`].
#[derive(Clone, Debug)]
pub struct JoinPlan {
    /// Chosen build side.
    pub build: BuildSide,
    /// Partition passes the build side is split into (1 = fits in budget).
    pub partitions: u32,
    /// Byte budget the build state was planned against.
    pub budget_bytes: u64,
    /// Estimated resident bytes of a single-pass build.
    pub est_build_bytes: u64,
    /// The ranked build-side alternatives behind the decision.
    pub ranking: RankedChoice,
}

/// Costs both build sides of `left ⋈ right` against `budget_bytes` and
/// returns the chosen strategy with its ranked alternatives.
pub fn plan_join(
    left: &Table,
    right: &Table,
    left_keys: &[usize],
    right_keys: &[usize],
    budget_bytes: u64,
) -> JoinPlan {
    let c = cost::join_costing(left, right, left_keys, right_keys, budget_bytes);
    JoinPlan {
        build: if c.build_right {
            BuildSide::Right
        } else {
            BuildSide::Left
        },
        partitions: c.partitions.max(1),
        budget_bytes,
        est_build_bytes: c.est_build_bytes,
        ranking: c.ranking,
    }
}

/// Join key in the **build** dictionary id space.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum JoinKey {
    Packed(u64),
    Composite(Box<[u32]>),
}

/// How key ids combine into a [`JoinKey`].
enum KeyRep {
    Packed { shifts: Vec<u32> },
    Composite,
}

impl KeyRep {
    fn choose(build: &Table, build_keys: &[usize]) -> KeyRep {
        let sizes: Vec<usize> = build_keys
            .iter()
            .map(|&c| build.column(c).dict().len())
            .collect();
        match GroupKeySpace::choose(&sizes) {
            GroupKeySpace::Packed { shifts, .. } => KeyRep::Packed { shifts },
            GroupKeySpace::Composite => KeyRep::Composite,
        }
    }

    fn key_of(&self, ids: &[u32]) -> JoinKey {
        match self {
            KeyRep::Packed { shifts } => JoinKey::Packed(
                ids.iter()
                    .zip(shifts)
                    .fold(0u64, |k, (&id, &s)| k | (id as u64) << s),
            ),
            KeyRep::Composite => JoinKey::Composite(ids.into()),
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn key_partition(key: &JoinKey, partitions: u32) -> u32 {
    let h = match key {
        JoinKey::Packed(v) => splitmix64(*v),
        JoinKey::Composite(ids) => {
            let fnv = ids.iter().fold(0xCBF2_9CE4_8422_2325u64, |h, &id| {
                (h ^ id as u64).wrapping_mul(0x0000_0100_0000_01B3)
            });
            splitmix64(fnv)
        }
    };
    (h % partitions as u64) as u32
}

/// The partition pass a key lands in under this join's hash, or `None`
/// when some key value is absent from the build-side dictionaries (such a
/// row can never match). Exposed so differential tests can replicate the
/// stream's pass-major output order exactly.
pub fn partition_of(
    build: &Table,
    build_keys: &[usize],
    partitions: u32,
    key: &[Value],
) -> Option<u32> {
    let rep = KeyRep::choose(build, build_keys);
    let mut ids = Vec::with_capacity(build_keys.len());
    for (&c, v) in build_keys.iter().zip(key) {
        ids.push(build.column(c).dict().id_of(v)?);
    }
    Some(key_partition(&rep.key_of(&ids), partitions.max(1)))
}

/// Where an output column's values come from while probing.
enum Src {
    /// Index into the probe row (already-materialized values).
    Probe(usize),
    /// Index into the build payload arrays (value ids, decoded on emit).
    Payload(usize),
}

const BUILD_BATCH: u64 = 8_192;

/// Streaming partition-wise hash join. Yields output rows
/// (`left columns ++ right non-key columns`) one at a time; peak memory is
/// one partition's build state plus ~one resident segment per probe
/// column. Construct via [`join_stream`].
pub struct JoinStream {
    probe: Arc<Table>,
    build: Arc<Table>,
    probe_keys: Vec<usize>,
    build_keys: Vec<usize>,
    /// Per probe key column: probe dictionary id -> build dictionary id.
    remaps: Vec<Vec<Option<u32>>>,
    rep: KeyRep,
    out_src: Vec<Src>,
    payload_src: Vec<usize>,
    partitions: u32,
    pass: u32,
    /// Key -> bucket of build-row ordinals, in build-row order.
    table_map: HashMap<JoinKey, Vec<u32>>,
    /// Per payload column: value id per bucket ordinal.
    payload: Vec<Vec<u32>>,
    scan: Option<ScanStream>,
    out_buf: VecDeque<Vec<Value>>,
    done: bool,
}

fn non_key_cols(arity: usize, keys: &[usize]) -> Vec<usize> {
    (0..arity).filter(|i| !keys.contains(i)).collect()
}

/// Opens a [`JoinStream`] for `left ⋈ right` under `plan`. `left_keys` and
/// `right_keys` pair up positionally; the output schema is every left
/// column followed by the right non-key columns, matching
/// [`crate::tuple::hash_join`].
pub fn join_stream(
    left: Arc<Table>,
    right: Arc<Table>,
    left_keys: &[usize],
    right_keys: &[usize],
    plan: &JoinPlan,
) -> JoinStream {
    let (build, probe, build_keys, probe_keys) = match plan.build {
        BuildSide::Right => (right.clone(), left.clone(), right_keys, left_keys),
        BuildSide::Left => (left.clone(), right.clone(), left_keys, right_keys),
    };
    // Reconcile dictionaries once: probe key ids -> build key ids.
    let remaps: Vec<Vec<Option<u32>>> = probe_keys
        .iter()
        .zip(build_keys)
        .map(|(&p, &b)| probe.column(p).dict().remap_to(build.column(b).dict()))
        .collect();
    let rep = KeyRep::choose(&build, build_keys);
    let (out_src, payload_src) = match plan.build {
        BuildSide::Right => {
            // Payload: right non-key columns; probe rows carry all of left.
            let payload_src = non_key_cols(right.arity(), right_keys);
            let mut out_src: Vec<Src> = (0..left.arity()).map(Src::Probe).collect();
            out_src.extend((0..payload_src.len()).map(Src::Payload));
            (out_src, payload_src)
        }
        BuildSide::Left => {
            // Payload: every left column (the output needs them all);
            // probe rows carry the right non-key columns.
            let payload_src: Vec<usize> = (0..left.arity()).collect();
            let mut out_src: Vec<Src> = (0..left.arity()).map(Src::Payload).collect();
            out_src.extend(
                non_key_cols(right.arity(), right_keys)
                    .into_iter()
                    .map(Src::Probe),
            );
            (out_src, payload_src)
        }
    };
    JoinStream {
        probe,
        build,
        probe_keys: probe_keys.to_vec(),
        build_keys: build_keys.to_vec(),
        remaps,
        rep,
        out_src,
        payload_src,
        partitions: plan.partitions.max(1),
        pass: 0,
        table_map: HashMap::new(),
        payload: Vec::new(),
        scan: None,
        out_buf: VecDeque::new(),
        done: false,
    }
}

impl JoinStream {
    /// (Re)builds the hash table for partition `pass`, dropping the
    /// previous pass's state first.
    fn build_pass(&mut self) {
        self.table_map.clear();
        self.payload = vec![Vec::new(); self.payload_src.len()];
        let rows = self.build.rows();
        let mut ord: u32 = 0;
        let mut lo = 0u64;
        while lo < rows {
            let hi = rows.min(lo + BUILD_BATCH);
            let key_ids: Vec<Vec<u32>> = self
                .build_keys
                .iter()
                .map(|&c| self.build.column(c).ids_range(lo..hi))
                .collect();
            let pay_ids: Vec<Vec<u32>> = self
                .payload_src
                .iter()
                .map(|&c| self.build.column(c).ids_range(lo..hi))
                .collect();
            let mut ids = vec![0u32; self.build_keys.len()];
            for r in 0..(hi - lo) as usize {
                for (slot, col_ids) in ids.iter_mut().zip(&key_ids) {
                    *slot = col_ids[r];
                }
                let key = self.rep.key_of(&ids);
                if self.partitions > 1 && key_partition(&key, self.partitions) != self.pass {
                    continue;
                }
                self.table_map.entry(key).or_default().push(ord);
                for (p, col_ids) in self.payload.iter_mut().zip(&pay_ids) {
                    p.push(col_ids[r]);
                }
                ord += 1;
            }
            lo = hi;
        }
    }

    /// Probes one streamed batch against the current pass's table and
    /// queues the matches.
    fn match_batch(&mut self, range: std::ops::Range<u64>, rows: &[Vec<Value>]) {
        let key_ids: Vec<Vec<u32>> = self
            .probe_keys
            .iter()
            .map(|&c| self.probe.column(c).ids_range(range.clone()))
            .collect();
        let mut ids = vec![0u32; self.probe_keys.len()];
        'row: for (r, probe_row) in rows.iter().enumerate() {
            for ((slot, col_ids), remap) in ids.iter_mut().zip(&key_ids).zip(&self.remaps) {
                match remap[col_ids[r] as usize] {
                    // Key value absent from the build dictionary: no match.
                    None => continue 'row,
                    Some(b) => *slot = b,
                }
            }
            let key = self.rep.key_of(&ids);
            if self.partitions > 1 && key_partition(&key, self.partitions) != self.pass {
                continue;
            }
            let Some(bucket) = self.table_map.get(&key) else {
                continue;
            };
            for &ord in bucket {
                let row: Vec<Value> = self
                    .out_src
                    .iter()
                    .map(|src| match *src {
                        Src::Probe(i) => probe_row[i].clone(),
                        Src::Payload(p) => self
                            .build
                            .column(self.payload_src[p])
                            .dict()
                            .value(self.payload[p][ord as usize])
                            .clone(),
                    })
                    .collect();
                self.out_buf.push_back(row);
            }
        }
    }
}

impl Iterator for JoinStream {
    type Item = Vec<Value>;

    fn next(&mut self) -> Option<Vec<Value>> {
        loop {
            if let Some(row) = self.out_buf.pop_front() {
                return Some(row);
            }
            if self.done {
                return None;
            }
            if self.scan.is_none() {
                if self.pass >= self.partitions {
                    self.done = true;
                    continue;
                }
                self.build_pass();
                self.scan = Some(
                    ScanStream::new(self.probe.clone(), &Predicate::True, None)
                        .expect("unfiltered unprojected scan cannot fail"),
                );
            }
            match self.scan.as_mut().and_then(|s| s.next()) {
                Some(batch) => self.match_batch(batch.range, &batch.rows),
                None => {
                    self.scan = None;
                    self.pass += 1;
                }
            }
        }
    }
}

/// Plans and fully runs `left ⋈ right`, sizing the build side against the
/// live buffer-cache budget. Returns the plan alongside the output rows.
pub fn join_collect(
    left: &Arc<Table>,
    right: &Arc<Table>,
    left_keys: &[usize],
    right_keys: &[usize],
) -> (JoinPlan, Vec<Vec<Value>>) {
    let plan = plan_join(
        left,
        right,
        left_keys,
        right_keys,
        segment_cache().stats().budget,
    );
    let rows = join_stream(left.clone(), right.clone(), left_keys, right_keys, &plan).collect();
    (plan, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;
    use cods_storage::{Schema, ValueType};

    fn arc_table(name: &str, cols: &[(&str, ValueType)], rows: Vec<Vec<Value>>) -> Arc<Table> {
        let schema = Schema::build(cols, &[]).unwrap();
        Arc::new(Table::from_rows_with_segment_rows(name, schema, &rows, 64).unwrap())
    }

    fn orders_and_skills() -> (Arc<Table>, Arc<Table>) {
        let left = arc_table(
            "orders",
            &[("who", ValueType::Str), ("qty", ValueType::Int)],
            (0..500)
                .map(|i| {
                    let who = match i % 5 {
                        0 => Value::from("ada"),
                        1 => Value::from("grace"),
                        2 => Value::from("alan"),
                        3 => Value::Null,
                        _ => Value::from("ghost"), // absent from right
                    };
                    vec![who, Value::int(i)]
                })
                .collect(),
        );
        let right = arc_table(
            "people",
            &[("name", ValueType::Str), ("team", ValueType::Str)],
            vec![
                vec![Value::from("grace"), Value::from("navy")],
                vec![Value::from("ada"), Value::from("analytical")],
                vec![Value::Null, Value::from("unknown")],
                vec![Value::from("ada"), Value::from("engines")], // dup key
                vec![Value::from("nobody"), Value::from("empty")],
            ],
        );
        (left, right)
    }

    fn oracle(left: &Table, right: &Table, lk: &[usize], rk: &[usize]) -> Vec<Vec<Value>> {
        tuple::hash_join(&left.to_rows(), &right.to_rows(), lk, rk)
    }

    fn sorted(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
        rows.sort();
        rows
    }

    #[test]
    fn build_right_single_pass_is_row_identical_to_oracle() {
        let (left, right) = orders_and_skills();
        let plan = JoinPlan {
            build: BuildSide::Right,
            partitions: 1,
            budget_bytes: u64::MAX,
            est_build_bytes: 0,
            ranking: plan_join(&left, &right, &[0], &[0], u64::MAX).ranking,
        };
        let got: Vec<_> = join_stream(left.clone(), right.clone(), &[0], &[0], &plan).collect();
        assert_eq!(got, oracle(&left, &right, &[0], &[0]));
        // NULL keys joined (the oracle treats Null == Null).
        assert!(got.iter().any(|r| r[0] == Value::Null));
        // Probe keys missing from the build dictionary never match.
        assert!(got.iter().all(|r| r[0] != Value::from("ghost")));
    }

    #[test]
    fn build_left_is_multiset_identical() {
        let (left, right) = orders_and_skills();
        let plan = JoinPlan {
            build: BuildSide::Left,
            partitions: 1,
            budget_bytes: u64::MAX,
            est_build_bytes: 0,
            ranking: plan_join(&left, &right, &[0], &[0], u64::MAX).ranking,
        };
        let got: Vec<_> = join_stream(left.clone(), right.clone(), &[0], &[0], &plan).collect();
        assert_eq!(sorted(got), sorted(oracle(&left, &right, &[0], &[0])));
    }

    #[test]
    fn multi_pass_partitions_match_oracle_in_pass_major_order() {
        let (left, right) = orders_and_skills();
        let mut plan = plan_join(&left, &right, &[0], &[0], 64);
        assert!(plan.partitions > 1, "tiny budget must force partitioning");
        plan.build = BuildSide::Right;
        let got: Vec<_> = join_stream(left.clone(), right.clone(), &[0], &[0], &plan).collect();
        // Replicate pass-major order on the row oracle via partition_of.
        let all = oracle(&left, &right, &[0], &[0]);
        let mut expect = Vec::new();
        for pass in 0..plan.partitions {
            for row in &all {
                if partition_of(&right, &[0], plan.partitions, &row[..1]) == Some(pass) {
                    expect.push(row.clone());
                }
            }
        }
        assert_eq!(got, expect);
        assert_eq!(sorted(got), sorted(all));
    }

    #[test]
    fn multi_column_composite_keys_agree() {
        let left = arc_table(
            "l",
            &[
                ("a", ValueType::Int),
                ("b", ValueType::Int),
                ("x", ValueType::Int),
            ],
            (0..200)
                .map(|i| vec![Value::int(i % 7), Value::int(i % 3), Value::int(i)])
                .collect(),
        );
        let right = arc_table(
            "r",
            &[
                ("a", ValueType::Int),
                ("b", ValueType::Int),
                ("y", ValueType::Int),
            ],
            (0..60)
                .map(|i| vec![Value::int(i % 9), Value::int(i % 3), Value::int(i * 10)])
                .collect(),
        );
        let plan = plan_join(&left, &right, &[0, 1], &[0, 1], u64::MAX);
        let got: Vec<_> =
            join_stream(left.clone(), right.clone(), &[0, 1], &[0, 1], &plan).collect();
        assert_eq!(sorted(got), sorted(oracle(&left, &right, &[0, 1], &[0, 1])));
    }

    #[test]
    fn empty_inputs_yield_no_rows() {
        let empty = arc_table("e", &[("k", ValueType::Int)], vec![]);
        let full = arc_table(
            "f",
            &[("k", ValueType::Int)],
            (0..10).map(|i| vec![Value::int(i)]).collect(),
        );
        for (l, r) in [(&empty, &full), (&full, &empty), (&empty, &empty)] {
            let (plan, rows) = join_collect(l, r, &[0], &[0]);
            assert!(rows.is_empty());
            assert!(plan.partitions >= 1);
        }
    }

    #[test]
    fn join_collect_reports_plan_against_cache_budget() {
        let (left, right) = orders_and_skills();
        let (plan, rows) = join_collect(&left, &right, &[0], &[0]);
        assert_eq!(plan.build, BuildSide::Right, "smaller side builds");
        assert_eq!(sorted(rows), sorted(oracle(&left, &right, &[0], &[0])));
        assert!(plan.ranking.describe().contains("build=right"));
    }
}
