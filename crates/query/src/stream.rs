//! Streaming, segment-batched table scans — the query surface the network
//! serving layer drains.
//!
//! [`filter_table`](crate::filter_table) materializes the whole selected
//! result before anything can be sent; over a long-running connection that
//! means peak memory proportional to the *result*, not to the working set.
//! [`ScanStream`] instead yields [`RowBatch`]es whose row ranges follow the
//! scanned table's **segment directory** (column 0's row-range shards):
//!
//! 1. the predicate is evaluated once on the compressed representation
//!    ([`predicate_mask`](crate::predicate_mask)), and the resulting mask
//!    is held as its maximal one-intervals — bounded by the mask's run
//!    count, never by the selected row count;
//! 2. each batch decodes only the segments overlapping its row range
//!    ([`cods_storage::EncodedColumn::ids_range`]), so peak memory is one
//!    segment's ids per projected column;
//! 3. batches with no selected rows are skipped without touching any
//!    payload — zone- and stat-pruned ranges stream at metadata speed.
//!
//! The concatenation of all batches is row-for-row identical to
//! `filter_table(...)` followed by projection (locked by tests here and by
//! the `serve_stream` bench).

use crate::pred::Predicate;
use cods_storage::{StorageError, Table, Value};
use std::ops::Range;
use std::sync::Arc;

/// One streamed slice of a scan result: the selected, projected tuples
/// whose row ids fall inside `range` (a run of whole segments of the
/// scanned table).
#[derive(Debug, Clone, PartialEq)]
pub struct RowBatch {
    /// Row-id range of the underlying table this batch was decoded from.
    pub range: Range<u64>,
    /// Selected tuples in row order, each projected to the stream's
    /// column selection.
    pub rows: Vec<Vec<Value>>,
}

/// A pull-based streaming scan: predicate once, then segment-sized
/// [`RowBatch`]es on demand.
///
/// The stream owns an [`Arc`] of the table, so it keeps the scanned
/// version alive (and consistent) even while the catalog moves on to newer
/// table versions — exactly the contract a snapshot session needs.
pub struct ScanStream {
    table: Arc<Table>,
    /// Projected column indices, in output order.
    projection: Vec<usize>,
    /// Batch boundaries: `bounds[i]..bounds[i + 1]` is batch `i`'s row
    /// range, aligned to column 0's segment directory.
    bounds: Vec<u64>,
    /// Maximal one-intervals of the selection mask as half-open
    /// `(start, end)` row-id ranges, ascending and disjoint.
    intervals: Vec<(u64, u64)>,
    /// Total selected rows (the mask's ones count).
    selected: u64,
    /// Next batch index to emit.
    next_batch: usize,
    /// First interval that can still overlap the next batch.
    iv_cursor: usize,
}

impl ScanStream {
    /// Plans a streaming scan of `table`: rows satisfying `pred`, projected
    /// to `projection` (column names, output order) or to the full schema
    /// when `None`. Fails on unknown column names; the predicate is
    /// evaluated here, so a returned stream cannot fail mid-flight.
    pub fn new(
        table: Arc<Table>,
        pred: &Predicate,
        projection: Option<&[String]>,
    ) -> Result<Self, StorageError> {
        let projection: Vec<usize> = match projection {
            None => (0..table.arity()).collect(),
            Some(names) => names
                .iter()
                .map(|n| table.schema().index_of(n))
                .collect::<Result<_, _>>()?,
        };
        let mask = crate::predicate_mask(&table, pred)?;
        let selected = mask.count_ones();
        let intervals: Vec<(u64, u64)> = mask
            .iter_intervals()
            .map(|(start, len)| (start, start + len))
            .collect();
        let rows = table.rows();
        let mut bounds = Vec::new();
        bounds.push(0);
        if let Some(col) = table.columns().first() {
            let mut at = 0u64;
            for slot in col.segments() {
                at += slot.rows();
                bounds.push(at);
            }
        } else if rows > 0 {
            bounds.push(rows);
        }
        Ok(ScanStream {
            table,
            projection,
            bounds,
            intervals,
            selected,
            next_batch: 0,
            iv_cursor: 0,
        })
    }

    /// Total rows the stream will yield across all batches (known up front
    /// from the selection mask).
    pub fn total_selected(&self) -> u64 {
        self.selected
    }

    /// The projected column indices, in output order.
    pub fn projection(&self) -> &[usize] {
        &self.projection
    }

    /// The table version this stream scans. Holding the stream holds the
    /// version alive regardless of later catalog commits.
    pub fn table(&self) -> &Arc<Table> {
        &self.table
    }

    /// Drains the stream into one materialized row set — the
    /// anti-streaming baseline; tests and benches use it to check batch
    /// concatenation against [`crate::filter_table`].
    pub fn collect_rows(self) -> Vec<Vec<Value>> {
        let mut out = Vec::new();
        for batch in self {
            out.extend(batch.rows);
        }
        out
    }

    /// Selected row ids inside `lo..hi`, advancing the interval cursor past
    /// every interval that ends at or before `hi`.
    fn selected_in(&mut self, lo: u64, hi: u64) -> Vec<u64> {
        while self.iv_cursor < self.intervals.len() && self.intervals[self.iv_cursor].1 <= lo {
            self.iv_cursor += 1;
        }
        let mut sel = Vec::new();
        let mut i = self.iv_cursor;
        while i < self.intervals.len() && self.intervals[i].0 < hi {
            let (start, end) = self.intervals[i];
            sel.extend(start.max(lo)..end.min(hi));
            if end <= hi {
                i += 1;
            } else {
                // The interval spills into the next batch: keep it current.
                break;
            }
        }
        self.iv_cursor = i;
        sel
    }
}

impl Iterator for ScanStream {
    type Item = RowBatch;

    fn next(&mut self) -> Option<RowBatch> {
        while self.next_batch + 1 < self.bounds.len() {
            let lo = self.bounds[self.next_batch];
            let hi = self.bounds[self.next_batch + 1];
            self.next_batch += 1;
            let sel = self.selected_in(lo, hi);
            if sel.is_empty() {
                // Nothing selected in this row range: no payload faulted.
                continue;
            }
            // Decode each projected column's overlapping segments once.
            let ids_per_col: Vec<Vec<u32>> = self
                .projection
                .iter()
                .map(|&ci| self.table.column(ci).ids_range(lo..hi))
                .collect();
            let rows: Vec<Vec<Value>> = sel
                .iter()
                .map(|&r| {
                    self.projection
                        .iter()
                        .zip(&ids_per_col)
                        .map(|(&ci, ids)| {
                            let id = ids[(r - lo) as usize];
                            self.table.column(ci).dict().value(id).clone()
                        })
                        .collect()
                })
                .collect();
            return Some(RowBatch {
                range: lo..hi,
                rows,
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter_table;
    use cods_storage::{Schema, ValueType};

    fn table(rows: usize, seg: u64) -> Arc<Table> {
        let schema = Schema::build(
            &[
                ("k", ValueType::Int),
                ("v", ValueType::Str),
                ("f", ValueType::Float),
            ],
            &[],
        )
        .unwrap();
        let data: Vec<Vec<Value>> = (0..rows)
            .map(|i| {
                vec![
                    Value::int((i % 17) as i64),
                    Value::str(format!("s{}", i % 5)),
                    Value::float(i as f64 / 3.0),
                ]
            })
            .collect();
        Arc::new(Table::from_rows_with_segment_rows("t", schema, &data, seg).unwrap())
    }

    fn expected(t: &Table, pred: &Predicate, proj: &[usize]) -> Vec<Vec<Value>> {
        filter_table(t, pred)
            .unwrap()
            .to_rows()
            .into_iter()
            .map(|row| proj.iter().map(|&c| row[c].clone()).collect())
            .collect()
    }

    #[test]
    fn batches_concatenate_to_the_filtered_table() {
        let t = table(1_000, 64);
        for pred in [
            Predicate::lt("k", 5i64),
            Predicate::eq("v", "s2"),
            Predicate::lt("k", 5i64).and(Predicate::eq("v", "s2")),
            Predicate::eq("k", 999i64), // selects nothing
            Predicate::True,
        ] {
            let stream = ScanStream::new(Arc::clone(&t), &pred, None).unwrap();
            let want = expected(&t, &pred, &[0, 1, 2]);
            assert_eq!(stream.total_selected() as usize, want.len());
            assert_eq!(stream.collect_rows(), want, "diverges for {pred:?}");
        }
    }

    #[test]
    fn batches_follow_segment_boundaries() {
        let t = table(1_000, 64);
        let stream = ScanStream::new(Arc::clone(&t), &Predicate::True, None).unwrap();
        let mut next = 0u64;
        for batch in stream {
            assert_eq!(batch.range.start, next, "batches must tile the table");
            assert!(batch.range.end - batch.range.start <= 64);
            assert_eq!(batch.rows.len() as u64, batch.range.end - batch.range.start);
            next = batch.range.end;
        }
        assert_eq!(next, 1_000);
    }

    #[test]
    fn sparse_selection_skips_empty_batches() {
        // k == 16 hits 1 row in 17: most 8-row segments select nothing and
        // must be skipped entirely.
        let t = table(1_000, 8);
        let pred = Predicate::eq("k", 16i64);
        let stream = ScanStream::new(Arc::clone(&t), &pred, None).unwrap();
        let batches: Vec<RowBatch> = stream.collect();
        assert!(batches.iter().all(|b| !b.rows.is_empty()));
        assert!(batches.len() < 125, "empty segment ranges must be skipped");
        let got: Vec<Vec<Value>> = batches.into_iter().flat_map(|b| b.rows).collect();
        assert_eq!(got, expected(&t, &pred, &[0, 1, 2]));
    }

    #[test]
    fn projection_reorders_and_drops_columns() {
        let t = table(300, 50);
        let proj = ["f".to_string(), "k".to_string()];
        let pred = Predicate::lt("k", 3i64);
        let stream = ScanStream::new(Arc::clone(&t), &pred, Some(&proj)).unwrap();
        assert_eq!(stream.projection(), &[2, 0]);
        assert_eq!(stream.collect_rows(), expected(&t, &pred, &[2, 0]));
        // Unknown projection column fails up front.
        assert!(ScanStream::new(
            Arc::clone(&t),
            &Predicate::True,
            Some(&["nope".to_string()])
        )
        .is_err());
    }

    #[test]
    fn rle_and_bitmap_streams_agree() {
        let t = table(600, 100);
        let rle = Arc::new(t.recoded(cods_storage::Encoding::Rle).unwrap());
        let pred = Predicate::lt("k", 9i64).or(Predicate::eq("v", "s4"));
        let a = ScanStream::new(Arc::clone(&t), &pred, None)
            .unwrap()
            .collect_rows();
        let b = ScanStream::new(rle, &pred, None).unwrap().collect_rows();
        assert_eq!(a, b);
    }

    #[test]
    fn stream_survives_table_replacement() {
        // The stream pins its Arc: dropping every other reference mid-scan
        // must not disturb the remaining batches.
        let t = table(500, 64);
        let pred = Predicate::True;
        let mut stream = ScanStream::new(Arc::clone(&t), &pred, None).unwrap();
        let first = stream.next().unwrap();
        drop(t);
        let rest: Vec<Vec<Value>> = stream.flat_map(|b| b.rows).collect();
        assert_eq!(first.rows.len() + rest.len(), 500);
    }
}
