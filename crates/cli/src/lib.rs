//! # cods-cli
//!
//! The interactive CODS shell (library part). `commands` implements the
//! command language the binary REPL drives; exposing it as a library makes
//! the whole demo workflow scriptable and testable.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod commands;
pub mod remote;

pub use commands::{run_command, Outcome, HELP};
pub use remote::{connect_command, connect_repl, serve, ServeOptions};
