//! Command parsing and execution for the CODS shell.

use cods::{Cods, ColumnFill, DecomposeSpec, MergeStrategy, Smo};
use cods_query::{AggExpr, AggOp, CmpOp, ExecContext, Plan, Predicate};
use cods_storage::persist::{read_catalog, save_catalog};
use cods_storage::{load_file, segment_cache, ColumnDef, LoadOptions, Schema, Value, ValueType};
use cods_workload::figure1;

/// Result of running one command line.
pub enum Outcome {
    /// Keep reading commands.
    Continue,
    /// Exit the shell.
    Quit,
}

/// The help text (mirrors the buttons of the demo UI in Figure 4).
pub const HELP: &str = "\
commands:
  create <table> <name:type,...> [key=<col,...>]   create an empty table
  load <table> <file.csv> <name:type,...>          create and bulk-load from CSV
  demo                                             load the paper's Figure 1 table R
  tables                                           list tables
  display <table> [limit]                          show rows
  stats <table>                                    storage statistics (per-segment encoding
                                                   histogram, zones, run/distinct ratios,
                                                   per-segment chooser picks, buffer-cache
                                                   residency, per-file heap occupancy with
                                                   the dead bytes a vacuum would reclaim)
  cache [<bytes>|unlimited]                        show buffer-cache telemetry (budget,
                                                   resident bytes, hit/miss/eviction counts)
                                                   or set the byte budget (suffixes k/m/g)
  recode <table> <col|*> <rle|bitmap|auto> [a..b]  re-encode a column (or all) in place;
                                                   rle/bitmap pins, auto hands back to the
                                                   stats-driven per-segment chooser; a..b
                                                   restricts to a segment-index range
  decompose <in> <out1> <cols> <out2> <cols>       DECOMPOSE TABLE (cols: a,b,c)
  merge <left> <right> <out>                       MERGE TABLES (auto strategy)
  partition <in> <col><op><lit> <out1> <out2>      PARTITION TABLE (op: = != < <= > >=)
  union <left> <right> <out>                       UNION TABLES (keeps inputs)
  copy <from> <to> | rename <from> <to> | drop <t> COPY/RENAME/DROP TABLE
  addcol <table> <name:type> <default>             ADD COLUMN
  dropcol <table> <col>                            DROP COLUMN
  renamecol <table> <from> <to>                    RENAME COLUMN
  exec <SMO statement>                             full statement language, e.g.
                                                   exec MERGE TABLES s, t INTO r
  run <file.smo>                                   plan + execute an SMO script atomically
                                                   (validated up front; all-or-nothing commit)
  plan <file.smo>                                  validate a script and print its DAG,
                                                   fusion decisions, and elided intermediates
  explain agg <table> <cols|-> <op:col,…> [where <col><op><lit>]
  explain join <left> <right> <lcol=rcol,…>        per-operator row estimates from resident
                                                   segment metadata, with the cost model's
                                                   chosen strategy and ranked rejected
                                                   alternatives (key packing, build side,
                                                   partition passes)
  history                                          executed SMOs with timings, grouped per plan
  save <file> | open <file>                        persist / restore the catalog (open is
                                                   lazy: segment payloads load on demand;
                                                   re-saving appends only what changed)
  vacuum <file>                                    compact a saved catalog's payload heap,
                                                   reclaiming bytes append-saves left dead
                                                   (re-open afterwards to pick up the
                                                   compacted layout)
  wal <file>                                       durability status of a saved catalog:
                                                   rollback-journal state plus the commit
                                                   log's records / torn bytes / spill files
  help | quit
";

fn parse_type(s: &str) -> Result<ValueType, String> {
    match s {
        "int" => Ok(ValueType::Int),
        "str" | "string" | "text" => Ok(ValueType::Str),
        "float" => Ok(ValueType::Float),
        "bool" => Ok(ValueType::Bool),
        other => Err(format!("unknown type {other:?} (use int/str/float/bool)")),
    }
}

fn parse_schema(spec: &str, key: Option<&str>) -> Result<Schema, String> {
    let mut cols = Vec::new();
    for part in spec.split(',') {
        let (name, ty) = part
            .split_once(':')
            .ok_or_else(|| format!("column spec {part:?} must be name:type"))?;
        cols.push((name.trim(), parse_type(ty.trim())?));
    }
    let keys: Vec<&str> = key
        .map(|k| k.split(',').map(str::trim).collect())
        .unwrap_or_default();
    let col_refs: Vec<(&str, ValueType)> = cols.clone();
    Schema::build(&col_refs, &keys).map_err(|e| e.to_string())
}

fn parse_predicate(expr: &str, table: &cods_storage::Table) -> Result<Predicate, String> {
    for op_str in ["!=", "<=", ">=", "=", "<", ">"] {
        if let Some((col, lit)) = expr.split_once(op_str) {
            let col = col.trim();
            let lit = lit.trim();
            let def = table.schema().column(col).map_err(|e| e.to_string())?;
            let literal = Value::parse(lit, def.ty).map_err(|e| e.to_string())?;
            let op = match op_str {
                "=" => CmpOp::Eq,
                "!=" => CmpOp::Ne,
                "<" => CmpOp::Lt,
                "<=" => CmpOp::Le,
                ">" => CmpOp::Gt,
                ">=" => CmpOp::Ge,
                _ => unreachable!(),
            };
            return Ok(Predicate::Compare {
                column: col.to_string(),
                op,
                literal,
            });
        }
    }
    Err(format!("cannot parse predicate {expr:?}"))
}

fn cols_of(spec: &str) -> Vec<String> {
    spec.split(',').map(|s| s.trim().to_string()).collect()
}

const EXPLAIN_USAGE: &str = "usage: explain agg <table> <cols|-> <op:col,…> [where <pred>] \
                             | explain join <left> <right> <lcol=rcol,…>";

/// `op:col` → aggregate expression, aliased like the server's agg output
/// (`count(skill)`).
fn parse_agg_expr(spec: &str) -> Result<AggExpr, String> {
    let (op, col) = spec
        .split_once(':')
        .ok_or_else(|| format!("bad aggregate {spec:?}, want op:col"))?;
    let op = match op {
        "count" => AggOp::Count,
        "distinct" => AggOp::CountDistinct,
        "sum" => AggOp::Sum,
        "min" => AggOp::Min,
        "max" => AggOp::Max,
        other => return Err(format!("unknown aggregate op {other:?}")),
    };
    Ok(AggExpr::new(
        op,
        col,
        format!("{op:?}({col})").to_lowercase(),
    ))
}

/// Renders the `stats` output: per-column segment-encoding histogram (a
/// mixed directory shows e.g. `4×bitmap/12×rle`), pin state, segment
/// directory shape, zone-map coverage and value range, run/distinct
/// ratios, the per-segment chooser's would-be picks, and compression
/// numbers.
pub fn render_stats(name: &str, t: &cods_storage::Table) -> String {
    use std::fmt::Write as _;
    let stats = cods_storage::TableStats::of(t);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{name}: {} rows, {} columns, {} bytes compressed, {} resident / {} on-disk segments",
        stats.rows, stats.arity, stats.total_bytes, stats.resident_segments, stats.on_disk_segments
    );
    for (def, c) in t.schema().columns().iter().zip(&stats.columns) {
        let enc = match c.encoding {
            Some(e) => e.to_string(),
            None => format!("{}×bitmap/{}×rle", c.bitmap_segments, c.rle_segments),
        };
        let pin = if c.encoding_pinned {
            " (pinned)".to_string()
        } else if c.pinned_segments > 0 {
            format!(" ({}×pinned)", c.pinned_segments)
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "  {:<12} enc={:<7}{} distinct={:<8} segments={:<5} max-seg-distinct={:<8} payload={}B ratio={:.1}x",
            def.name,
            enc,
            pin,
            c.distinct,
            c.segments,
            c.max_segment_distinct,
            c.payload_bytes,
            c.compression_ratio
        );
        let range = match &c.value_range {
            Some((lo, hi)) => format!("[{lo} .. {hi}]"),
            None => "(empty)".to_string(),
        };
        let _ = writeln!(
            out,
            "  {:<12} zones={}/{} range={} runs={} avg-run={:.1} run/distinct={:.1} chooser={}×bitmap/{}×rle{}",
            "",
            c.zoned_segments,
            c.segments,
            range,
            c.runs,
            c.avg_run_len,
            if c.distinct == 0 {
                0.0
            } else {
                c.runs as f64 / c.distinct as f64
            },
            c.chooser_bitmap_segments,
            c.chooser_rle_segments,
            if c.chooser_disagreements > 0 {
                format!(" ({} would re-encode)", c.chooser_disagreements)
            } else {
                String::new()
            }
        );
    }
    // Per-file heap occupancy: every v6 file this table's segments page
    // from, with the dead bytes a `vacuum` of that file would reclaim.
    let mut files: Vec<std::path::PathBuf> = Vec::new();
    for c in t.columns() {
        for s in c.segments() {
            if let Some(p) = s.backing_path() {
                if !files.contains(&p) {
                    files.push(p);
                }
            }
        }
    }
    for path in files {
        match cods_storage::heap_stats(&path) {
            Ok(h) => {
                let _ = writeln!(
                    out,
                    "  file {}: {} bytes ({} heap = {} live + {} dead, {} meta); vacuum reclaims ~{} bytes",
                    path.display(),
                    h.file_bytes,
                    h.heap_bytes,
                    h.live_bytes,
                    h.dead_bytes,
                    h.meta_bytes,
                    h.dead_bytes
                );
            }
            Err(e) => {
                let _ = writeln!(
                    out,
                    "  file {}: heap stats unavailable ({e})",
                    path.display()
                );
            }
        }
    }
    out
}

/// Renders the `cache` command's telemetry: the process-wide buffer-cache
/// budget, resident bytes, and fault/eviction counters.
pub fn render_cache() -> String {
    let s = segment_cache().stats();
    let budget = if s.budget == u64::MAX {
        "unlimited".to_string()
    } else {
        format!("{} bytes", s.budget)
    };
    format!(
        "buffer cache: budget={budget} resident={} bytes\n\
         faults: {} hits, {} misses ({} bytes decoded), {} evictions\n",
        s.resident_bytes, s.hits, s.misses, s.decoded_bytes, s.evictions
    )
}

/// Parses the `cache` command's byte-budget argument: a plain byte count
/// or one with a binary k/m/g suffix, or `unlimited`.
fn parse_budget(spec: &str) -> Result<u64, String> {
    if spec == "unlimited" {
        return Ok(u64::MAX);
    }
    let (digits, unit) = match spec.as_bytes().last() {
        Some(b'k' | b'K') => (&spec[..spec.len() - 1], 1u64 << 10),
        Some(b'm' | b'M') => (&spec[..spec.len() - 1], 1u64 << 20),
        Some(b'g' | b'G') => (&spec[..spec.len() - 1], 1u64 << 30),
        _ => (spec, 1),
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("bad byte budget {spec:?} (use e.g. 4096, 64m, unlimited)"))?;
    n.checked_mul(unit)
        .ok_or_else(|| format!("byte budget {spec:?} overflows"))
}

/// Parses the `recode` command's optional segment-range argument
/// (`from..to`, segment indices, end exclusive).
fn parse_segment_range(spec: &str) -> Result<std::ops::Range<usize>, String> {
    let (from, to) = spec
        .split_once("..")
        .ok_or_else(|| format!("segment range {spec:?} must be from..to"))?;
    let from: usize = from
        .trim()
        .parse()
        .map_err(|_| format!("bad range start {from:?}"))?;
    let to: usize = to
        .trim()
        .parse()
        .map_err(|_| format!("bad range end {to:?}"))?;
    Ok(from..to)
}

/// Executes one command line against the platform.
pub fn run_command(cods: &mut Cods, line: &str) -> Result<Outcome, String> {
    let mut parts = line.split_whitespace();
    let Some(cmd) = parts.next() else {
        return Ok(Outcome::Continue);
    };
    let args: Vec<&str> = parts.collect();
    match cmd {
        "help" => print!("{HELP}"),
        "quit" | "exit" => return Ok(Outcome::Quit),
        "demo" => {
            cods.catalog()
                .create(figure1::table_r())
                .map_err(|e| e.to_string())?;
            println!("loaded Figure 1 table R (7 rows)");
        }
        "tables" => {
            for name in cods.catalog().table_names() {
                let t = cods.table(&name).map_err(|e| e.to_string())?;
                println!(
                    "  {name}: {} rows, columns [{}]",
                    t.rows(),
                    t.schema().names().join(", ")
                );
            }
        }
        "create" => {
            let [name, spec, rest @ ..] = args.as_slice() else {
                return Err("usage: create <table> <name:type,...> [key=cols]".into());
            };
            let key = rest.first().and_then(|s| s.strip_prefix("key="));
            let schema = parse_schema(spec, key)?;
            cods.execute(Smo::CreateTable {
                name: name.to_string(),
                schema,
            })
            .map_err(|e| e.to_string())?;
            println!("created {name}");
        }
        "load" => {
            let [name, file, spec] = args.as_slice() else {
                return Err("usage: load <table> <file.csv> <name:type,...>".into());
            };
            let schema = parse_schema(spec, None)?;
            let t = load_file(name, &schema, file, &LoadOptions::default())
                .map_err(|e| e.to_string())?;
            let rows = t.rows();
            cods.catalog().create(t).map_err(|e| e.to_string())?;
            println!("loaded {rows} rows into {name}");
        }
        "display" => {
            let Some(name) = args.first() else {
                return Err("usage: display <table> [limit]".into());
            };
            let limit: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(20);
            let t = cods.table(name).map_err(|e| e.to_string())?;
            println!("{}", t.schema().names().join(" | "));
            for i in 0..t.rows().min(limit) {
                let cells: Vec<String> = t.row(i).iter().map(|v| v.to_string()).collect();
                println!("{}", cells.join(" | "));
            }
            if t.rows() > limit {
                println!("… ({} more rows)", t.rows() - limit);
            }
        }
        "stats" => {
            let Some(name) = args.first() else {
                return Err("usage: stats <table>".into());
            };
            let t = cods.table(name).map_err(|e| e.to_string())?;
            print!("{}", render_stats(name, &t));
        }
        "cache" => match args.as_slice() {
            [] => print!("{}", render_cache()),
            [spec] => {
                let budget = parse_budget(spec)?;
                segment_cache().set_budget(budget);
                if budget == u64::MAX {
                    println!("buffer cache budget: unlimited");
                } else {
                    println!("buffer cache budget: {budget} bytes");
                }
            }
            _ => return Err("usage: cache [<bytes>|unlimited]".into()),
        },
        "recode" => {
            let (name, col, enc, range) = match args.as_slice() {
                [name, col, enc] => (name, col, enc, None),
                [name, col, enc, range] => (name, col, enc, Some(parse_segment_range(range)?)),
                _ => {
                    return Err("usage: recode <table> <col|*> <rle|bitmap|auto> [from..to]".into())
                }
            };
            let t = cods.table(name).map_err(|e| e.to_string())?;
            if let Some(range) = range {
                // Segment-range form: touch only the named column's
                // segments with indices in [from, to).
                if *col == "*" {
                    return Err("segment ranges need a named column, not *".into());
                }
                if *enc == "auto" {
                    let out = t
                        .auto_encode_column_range(col, range.clone())
                        .map_err(|e| e.to_string())?;
                    let c = out.column_by_name(col).map_err(|e| e.to_string())?;
                    let (b, r) = c.encoding_counts();
                    cods.catalog().put(out);
                    println!(
                        "recoded {name}.{col} segments {}..{} by chooser: now {b}\u{d7}bitmap/{r}\u{d7}rle",
                        range.start, range.end
                    );
                    return Ok(Outcome::Continue);
                }
                let encoding = match *enc {
                    "rle" => cods_storage::Encoding::Rle,
                    "bitmap" => cods_storage::Encoding::Bitmap,
                    other => {
                        return Err(format!("unknown encoding {other:?} (use rle/bitmap/auto)"))
                    }
                };
                let out = t
                    .with_column_segment_range_encoding(col, encoding, range.clone())
                    .map_err(|e| e.to_string())?;
                cods.catalog().put(out);
                println!(
                    "recoded {name}.{col} segments {}..{} to {encoding} (pinned)",
                    range.start, range.end
                );
                return Ok(Outcome::Continue);
            }
            if *enc == "auto" {
                // Hand the column(s) back to the stats-driven chooser:
                // clear any pin and apply its pick.
                let mut out = (*t).clone();
                if *col == "*" {
                    let names: Vec<String> =
                        out.schema().names().iter().map(|s| s.to_string()).collect();
                    for n in names {
                        out = out.auto_encode_column(&n).map_err(|e| e.to_string())?;
                    }
                } else {
                    out = out.auto_encode_column(col).map_err(|e| e.to_string())?;
                }
                let picks: Vec<String> = out
                    .schema()
                    .names()
                    .iter()
                    .zip(out.columns())
                    .filter(|(n, _)| *col == "*" || *n == col)
                    .map(|(n, c)| match c.uniform_encoding() {
                        Some(e) => format!("{n}={e}"),
                        None => {
                            let (b, r) = c.encoding_counts();
                            format!("{n}={b}\u{d7}bitmap/{r}\u{d7}rle")
                        }
                    })
                    .collect();
                cods.catalog().put(out);
                println!("recoded {name}.{col} by chooser: {}", picks.join(", "));
                return Ok(Outcome::Continue);
            }
            let encoding = match *enc {
                "rle" => cods_storage::Encoding::Rle,
                "bitmap" => cods_storage::Encoding::Bitmap,
                other => return Err(format!("unknown encoding {other:?} (use rle/bitmap/auto)")),
            };
            // Explicit encodings pin the column against the chooser.
            let recoded = if *col == "*" {
                t.recoded_pinned(encoding)
            } else {
                t.with_column_encoding_pinned(col, encoding)
            }
            .map_err(|e| e.to_string())?;
            cods.catalog().put(recoded);
            println!("recoded {name}.{col} to {encoding} (pinned)");
        }
        "decompose" => {
            let [input, out1, cols1, out2, cols2] = args.as_slice() else {
                return Err("usage: decompose <in> <out1> <a,b> <out2> <a,c>".into());
            };
            let status = cods
                .execute(Smo::DecomposeTable {
                    input: input.to_string(),
                    spec: DecomposeSpec {
                        unchanged_name: out1.to_string(),
                        unchanged_cols: cols_of(cols1),
                        changed_name: out2.to_string(),
                        changed_cols: cols_of(cols2),
                        verify_fd: true,
                    },
                })
                .map_err(|e| e.to_string())?;
            print!("{}", status.render());
        }
        "merge" => {
            let [left, right, out] = args.as_slice() else {
                return Err("usage: merge <left> <right> <out>".into());
            };
            let status = cods
                .execute(Smo::MergeTables {
                    left: left.to_string(),
                    right: right.to_string(),
                    output: out.to_string(),
                    strategy: MergeStrategy::Auto,
                })
                .map_err(|e| e.to_string())?;
            print!("{}", status.render());
        }
        "partition" => {
            let [input, pred, out1, out2] = args.as_slice() else {
                return Err("usage: partition <in> <col><op><lit> <out1> <out2>".into());
            };
            let t = cods.table(input).map_err(|e| e.to_string())?;
            let predicate = parse_predicate(pred, &t)?;
            let status = cods
                .execute(Smo::PartitionTable {
                    input: input.to_string(),
                    predicate,
                    satisfying: out1.to_string(),
                    rest: out2.to_string(),
                })
                .map_err(|e| e.to_string())?;
            print!("{}", status.render());
        }
        "union" => {
            let [left, right, out] = args.as_slice() else {
                return Err("usage: union <left> <right> <out>".into());
            };
            let status = cods
                .execute(Smo::UnionTables {
                    left: left.to_string(),
                    right: right.to_string(),
                    output: out.to_string(),
                    drop_inputs: false,
                })
                .map_err(|e| e.to_string())?;
            print!("{}", status.render());
        }
        "copy" => {
            let [from, to] = args.as_slice() else {
                return Err("usage: copy <from> <to>".into());
            };
            cods.execute(Smo::CopyTable {
                from: from.to_string(),
                to: to.to_string(),
            })
            .map_err(|e| e.to_string())?;
        }
        "rename" => {
            let [from, to] = args.as_slice() else {
                return Err("usage: rename <from> <to>".into());
            };
            cods.execute(Smo::RenameTable {
                from: from.to_string(),
                to: to.to_string(),
            })
            .map_err(|e| e.to_string())?;
        }
        "drop" => {
            let [name] = args.as_slice() else {
                return Err("usage: drop <table>".into());
            };
            cods.execute(Smo::DropTable {
                name: name.to_string(),
            })
            .map_err(|e| e.to_string())?;
        }
        "addcol" => {
            let [table, spec, default] = args.as_slice() else {
                return Err("usage: addcol <table> <name:type> <default>".into());
            };
            let (name, ty) = spec
                .split_once(':')
                .ok_or("column spec must be name:type")?;
            let ty = parse_type(ty)?;
            let value = Value::parse(default, ty).map_err(|e| e.to_string())?;
            cods.execute(Smo::AddColumn {
                table: table.to_string(),
                column: ColumnDef::new(name, ty),
                fill: ColumnFill::Default(value),
            })
            .map_err(|e| e.to_string())?;
        }
        "dropcol" => {
            let [table, col] = args.as_slice() else {
                return Err("usage: dropcol <table> <col>".into());
            };
            cods.execute(Smo::DropColumn {
                table: table.to_string(),
                column: col.to_string(),
            })
            .map_err(|e| e.to_string())?;
        }
        "renamecol" => {
            let [table, from, to] = args.as_slice() else {
                return Err("usage: renamecol <table> <from> <to>".into());
            };
            cods.execute(Smo::RenameColumn {
                table: table.to_string(),
                from: from.to_string(),
                to: to.to_string(),
            })
            .map_err(|e| e.to_string())?;
        }
        "exec" => {
            // Full SMO statement language (see cods::parser), e.g.
            //   exec DECOMPOSE TABLE R INTO S (employee, skill), T (employee, address)
            let stmt = line["exec".len()..].trim();
            let smo = cods::parse_smo(stmt).map_err(|e| e.to_string())?;
            let status = cods.execute(smo).map_err(|e| e.to_string())?;
            print!("{}", status.render());
        }
        "run" => {
            // The whole script goes through the planner: validated against
            // one catalog snapshot up front, executed with fusion and DAG
            // parallelism, committed atomically. A failure anywhere — parse,
            // validation, or a data-dependent error mid-script — leaves the
            // catalog untouched.
            let [file] = args.as_slice() else {
                return Err("usage: run <script.smo>".into());
            };
            let text = std::fs::read_to_string(file).map_err(|e| e.to_string())?;
            let plan = cods.plan_script(&text).map_err(|e| e.to_string())?;
            let n = plan.nodes().len();
            let report = plan.execute().map_err(|e| e.to_string())?;
            print!("{}", report.log.render());
            println!(
                "executed {n} operator{} from {file} (atomic commit: {} put{}, {} drop{}, {} intermediate{} elided)",
                if n == 1 { "" } else { "s" },
                report.committed_puts,
                if report.committed_puts == 1 { "" } else { "s" },
                report.committed_drops,
                if report.committed_drops == 1 { "" } else { "s" },
                report.elided.len(),
                if report.elided.len() == 1 { "" } else { "s" },
            );
        }
        "plan" => {
            let [file] = args.as_slice() else {
                return Err("usage: plan <script.smo>".into());
            };
            let text = std::fs::read_to_string(file).map_err(|e| e.to_string())?;
            let plan = cods.plan_script(&text).map_err(|e| e.to_string())?;
            print!("{}", plan.describe());
        }
        "explain" => {
            let plan = match args.as_slice() {
                ["agg", table, groups, specs, rest @ ..] => {
                    let t = cods.table(table).map_err(|e| e.to_string())?;
                    let pred = match rest {
                        [] => Predicate::True,
                        ["where", expr @ ..] if !expr.is_empty() => {
                            parse_predicate(&expr.join(" "), &t)?
                        }
                        _ => return Err(EXPLAIN_USAGE.into()),
                    };
                    let group_by: Vec<String> = if *groups == "-" {
                        Vec::new()
                    } else {
                        cols_of(groups)
                    };
                    let aggs: Vec<AggExpr> = specs
                        .split(',')
                        .map(parse_agg_expr)
                        .collect::<Result<_, _>>()?;
                    let scan = Plan::ScanColumn {
                        table: table.to_string(),
                    };
                    let input = if matches!(pred, Predicate::True) {
                        scan
                    } else {
                        scan.filter(pred)
                    };
                    Plan::Aggregate {
                        input: Box::new(input),
                        group_by,
                        aggs,
                    }
                }
                ["join", left, right, pairs] => {
                    let mut left_keys = Vec::new();
                    let mut right_keys = Vec::new();
                    for pair in pairs.split(',') {
                        let (lk, rk) = pair
                            .split_once('=')
                            .ok_or_else(|| format!("bad key pair {pair:?}, want lcol=rcol"))?;
                        left_keys.push(lk.trim().to_string());
                        right_keys.push(rk.trim().to_string());
                    }
                    Plan::HashJoin {
                        left: Box::new(Plan::ScanColumn {
                            table: left.to_string(),
                        }),
                        right: Box::new(Plan::ScanColumn {
                            table: right.to_string(),
                        }),
                        left_keys,
                        right_keys,
                    }
                }
                _ => return Err(EXPLAIN_USAGE.into()),
            };
            let ctx = ExecContext {
                catalog: Some(cods.catalog()),
                row_db: None,
            };
            print!(
                "{}",
                cods_query::explain(&plan, ctx).map_err(|e| e.to_string())?
            );
        }
        "history" => {
            // Records of one plan are contiguous and share a plan id;
            // multi-operator plans print grouped under one header.
            let hist = cods.history();
            let mut i = 0;
            while i < hist.len() {
                let id = hist[i].plan_id;
                let mut j = i + 1;
                while id.is_some() && j < hist.len() && hist[j].plan_id == id {
                    j += 1;
                }
                if j - i > 1 {
                    println!(
                        "  plan #{} ({} operators, atomic commit):",
                        id.expect("grouped records carry a plan id"),
                        j - i
                    );
                    for rec in &hist[i..j] {
                        println!(
                            "    {:<58} {:>9.3} ms",
                            rec.operator,
                            rec.status.total.as_secs_f64() * 1e3
                        );
                    }
                } else {
                    println!(
                        "  {:<60} {:>9.3} ms",
                        hist[i].operator,
                        hist[i].status.total.as_secs_f64() * 1e3
                    );
                }
                i = j;
            }
        }
        "save" => {
            let [file] = args.as_slice() else {
                return Err("usage: save <file>".into());
            };
            save_catalog(cods.catalog(), file).map_err(|e| e.to_string())?;
            println!("saved catalog to {file}");
        }
        "open" => {
            let [file] = args.as_slice() else {
                return Err("usage: open <file>".into());
            };
            let catalog = read_catalog(file).map_err(|e| e.to_string())?;
            *cods = Cods::with_catalog(catalog);
            println!("opened catalog from {file}");
        }
        "wal" => {
            let [file] = args.as_slice() else {
                return Err("usage: wal <file>".into());
            };
            let path = std::path::Path::new(file);
            match cods_storage::journal_status(path) {
                cods_storage::JournalStatus::Absent => {
                    println!("journal: none (no save in progress)")
                }
                cods_storage::JournalStatus::Sealed { bytes } => println!(
                    "journal: sealed, {bytes} bytes (an interrupted save will roll back on open)"
                ),
                cods_storage::JournalStatus::Torn { bytes } => println!(
                    "journal: torn, {bytes} bytes (crashed before seal; discarded on open)"
                ),
            }
            let s = cods_storage::log_status(path).map_err(|e| e.to_string())?;
            if !s.exists {
                println!("commit log: none (catalog not opened durably)");
            } else {
                println!(
                    "commit log: {} record(s) pending checkpoint, {} valid bytes{}",
                    s.records,
                    s.valid_bytes,
                    if s.torn_bytes > 0 {
                        format!(" (+{} torn tail bytes, discarded on open)", s.torn_bytes)
                    } else {
                        String::new()
                    }
                );
                println!("spills: {} file(s), {} bytes", s.spill_files, s.spill_bytes);
            }
        }
        "vacuum" => {
            let [file] = args.as_slice() else {
                return Err("usage: vacuum <file>".into());
            };
            let report = cods_storage::vacuum_file(file).map_err(|e| e.to_string())?;
            println!(
                "vacuumed {file}: {} -> {} bytes ({} reclaimed; {} live payload bytes across {} segments)",
                report.before_bytes,
                report.after_bytes,
                report.reclaimed_bytes(),
                report.live_payload_bytes,
                report.segments
            );
        }
        other => return Err(format!("unknown command {other:?} (try: help)")),
    }
    Ok(Outcome::Continue)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shell() -> Cods {
        Cods::new()
    }

    fn run(cods: &mut Cods, line: &str) {
        run_command(cods, line).unwrap_or_else(|e| panic!("{line:?} failed: {e}"));
    }

    #[test]
    fn explain_command_parses_both_shapes() {
        let mut cods = shell();
        run(&mut cods, "demo");
        run(&mut cods, "copy R R2");
        // Output goes to stdout; here we only check the commands parse,
        // resolve columns, and execute without error. Rendering is
        // covered by cods_query's explain tests.
        run(&mut cods, "explain agg R employee count:skill");
        run(
            &mut cods,
            "explain agg R - count:skill where employee=Jones",
        );
        run(&mut cods, "explain join R R2 employee=employee");
        assert!(run_command(&mut cods, "explain agg").is_err());
        assert!(run_command(&mut cods, "explain join R R2 employee").is_err());
        assert!(run_command(&mut cods, "explain agg R employee bogus:skill").is_err());
    }

    #[test]
    fn demo_decompose_merge_flow() {
        let mut cods = shell();
        run(&mut cods, "demo");
        run(&mut cods, "decompose R S employee,skill T employee,address");
        assert!(cods.catalog().contains("S"));
        assert_eq!(cods.table("T").unwrap().rows(), 4);
        run(&mut cods, "merge S T R2");
        assert_eq!(cods.table("R2").unwrap().rows(), 7);
        assert_eq!(cods.history().len(), 2);
    }

    #[test]
    fn create_and_column_commands() {
        let mut cods = shell();
        run(&mut cods, "create t id:int,name:str key=id");
        assert!(cods.catalog().contains("t"));
        run(&mut cods, "addcol t dept:str eng");
        assert!(cods.table("t").unwrap().schema().contains("dept"));
        run(&mut cods, "renamecol t dept division");
        assert!(cods.table("t").unwrap().schema().contains("division"));
        run(&mut cods, "dropcol t division");
        assert_eq!(cods.table("t").unwrap().arity(), 2);
        run(&mut cods, "copy t t2");
        run(&mut cods, "rename t2 t3");
        run(&mut cods, "drop t3");
        assert_eq!(cods.catalog().table_names(), vec!["t"]);
    }

    #[test]
    fn recode_and_stats_report_rle_segments() {
        let mut cods = shell();
        run(&mut cods, "demo");
        // Bitmap columns report their segment directory...
        let t = cods.table("R").unwrap();
        let before = render_stats("R", &t);
        assert!(before.contains("enc=bitmap"), "stats: {before}");
        assert!(before.contains("segments=1"), "stats: {before}");
        assert!(!before.contains("enc=rle"), "stats: {before}");
        // ...and after recoding, RLE columns report theirs too (the old
        // stats path simply had no RLE columns to count).
        run(&mut cods, "recode R skill rle");
        let t = cods.table("R").unwrap();
        let after = render_stats("R", &t);
        assert!(after.contains("enc=rle"), "stats: {after}");
        assert_eq!(
            after.matches("segments=1").count(),
            3,
            "RLE column must report its segment count: {after}"
        );
        assert!(t
            .column_by_name("skill")
            .unwrap()
            .is_uniform(cods_storage::Encoding::Rle));
        // Whole-table recode and round trip back.
        run(&mut cods, "recode R * rle");
        assert!(cods
            .table("R")
            .unwrap()
            .columns()
            .iter()
            .all(|c| c.is_uniform(cods_storage::Encoding::Rle)));
        run(&mut cods, "recode R * bitmap");
        assert!(cods
            .table("R")
            .unwrap()
            .columns()
            .iter()
            .all(|c| c.is_uniform(cods_storage::Encoding::Bitmap)));
        assert_eq!(cods.table("R").unwrap().rows(), 7);
        // Bad arguments are rejected.
        assert!(run_command(&mut cods, "recode R skill zigzag").is_err());
        assert!(run_command(&mut cods, "recode missing skill rle").is_err());
    }

    #[test]
    fn stats_report_zones_ratios_and_chooser_pick() {
        let mut cods = shell();
        run(&mut cods, "demo");
        let t = cods.table("R").unwrap();
        let out = render_stats("R", &t);
        // Zone coverage: every segment of every column carries a zone.
        assert_eq!(out.matches("zones=1/1").count(), 3, "stats: {out}");
        // Value range folded from the zone maps.
        assert!(out.contains("range=[Ellis .. Roberts]"), "stats: {out}");
        // Run/distinct ratios and the chooser's pick are reported per
        // column; nothing is pinned yet.
        assert!(out.contains("runs="), "stats: {out}");
        assert!(out.contains("run/distinct="), "stats: {out}");
        assert!(out.contains("chooser="), "stats: {out}");
        assert!(!out.contains("(pinned)"), "stats: {out}");

        // An explicit recode pins and is reported as such; the chooser
        // line flags the disagreement when its pick differs.
        run(&mut cods, "recode R skill rle");
        let out = render_stats("R", &cods.table("R").unwrap());
        assert!(out.contains("enc=rle     (pinned)"), "stats: {out}");

        // `recode ... auto` hands the column back to the per-segment
        // chooser: pin cleared and every segment matches the chooser's own
        // pick for it.
        run(&mut cods, "recode R skill auto");
        let t = cods.table("R").unwrap();
        let col = t.column_by_name("skill").unwrap();
        assert!(!col.encoding_pinned());
        assert!((0..col.segment_count())
            .all(|i| col.segment_encoding(i) == col.choose_segment_encoding(i)));
        // Whole-table auto brings every segment to the chooser's pick, so
        // no stats line flags a pending re-encode any more.
        run(&mut cods, "recode R * auto");
        let t = cods.table("R").unwrap();
        assert!(t
            .columns()
            .iter()
            .all(|c| !c.encoding_pinned() && !c.needs_auto_recode()));
        let out = render_stats("R", &t);
        assert!(!out.contains("would re-encode"), "stats: {out}");
    }

    #[test]
    fn recode_segment_range_form_mixes_and_pins() {
        let mut cods = shell();
        run(&mut cods, "demo");
        // The demo table has one segment per column: range 0..1 recodes and
        // pins that single segment without touching the column-level pin.
        run(&mut cods, "recode R skill rle 0..1");
        let t = cods.table("R").unwrap();
        let col = t.column_by_name("skill").unwrap();
        assert!(col.is_uniform(cods_storage::Encoding::Rle));
        assert!(!col.encoding_pinned(), "range recode is not a column pin");
        assert!(col.segment_pinned(0), "range recode pins its segments");
        let out = render_stats("R", &t);
        assert!(out.contains("(1\u{d7}pinned)"), "stats: {out}");
        // `auto` over the range clears the pin and re-applies the chooser.
        run(&mut cods, "recode R skill auto 0..1");
        let t = cods.table("R").unwrap();
        let col = t.column_by_name("skill").unwrap();
        assert!(!col.segment_pinned(0));
        assert_eq!(col.segment_encoding(0), col.choose_segment_encoding(0));
        // Bad ranges and `*` with a range are rejected.
        assert!(run_command(&mut cods, "recode R skill rle 5..9").is_err());
        assert!(run_command(&mut cods, "recode R skill rle 1").is_err());
        assert!(run_command(&mut cods, "recode R * rle 0..1").is_err());
    }

    #[test]
    fn stats_report_mixed_directory_histogram() {
        // A multi-segment table loaded through the CLI, with half of one
        // column's segments recoded RLE: stats must show the histogram.
        let dir = std::env::temp_dir().join("cods_cli_mixed_test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("mixed.csv");
        let csv: String = (0..400).map(|i| format!("{}\n", i / 50)).collect();
        std::fs::write(&file, csv).unwrap();
        let mut cods = shell();
        run(&mut cods, &format!("load t {} k:int", file.display()));
        // Re-segment small enough to get several segments.
        let small = cods.table("t").unwrap().to_rows();
        let schema = cods.table("t").unwrap().schema().clone();
        let resegmented =
            cods_storage::Table::from_rows_with_segment_rows("t", schema, &small, 100).unwrap();
        cods.catalog().put(resegmented);
        run(&mut cods, "recode t k rle 0..2");
        let t = cods.table("t").unwrap();
        assert_eq!(t.column(0).encoding_counts(), (2, 2));
        let out = render_stats("t", &t);
        assert!(out.contains("enc=2\u{d7}bitmap/2\u{d7}rle"), "stats: {out}");
        assert!(out.contains("(2\u{d7}pinned)"), "stats: {out}");
        std::fs::remove_file(&file).ok();
    }

    #[test]
    fn partition_and_union_commands() {
        let mut cods = shell();
        run(&mut cods, "demo");
        run(&mut cods, "partition R employee=Jones jones others");
        assert_eq!(cods.table("jones").unwrap().rows(), 3);
        assert_eq!(cods.table("others").unwrap().rows(), 4);
        run(&mut cods, "union jones others R");
        assert_eq!(cods.table("R").unwrap().rows(), 7);
    }

    #[test]
    fn predicate_operators_parse() {
        let mut cods = shell();
        run(&mut cods, "create t v:int");
        let table = cods.table("t").unwrap();
        for (expr, op) in [
            ("v=3", CmpOp::Eq),
            ("v!=3", CmpOp::Ne),
            ("v<3", CmpOp::Lt),
            ("v<=3", CmpOp::Le),
            ("v>3", CmpOp::Gt),
            ("v>=3", CmpOp::Ge),
        ] {
            match parse_predicate(expr, &table).unwrap() {
                Predicate::Compare { op: got, .. } => assert_eq!(got, op, "{expr}"),
                other => panic!("unexpected predicate {other:?}"),
            }
        }
        assert!(parse_predicate("nonsense", &table).is_err());
        assert!(parse_predicate("missing=1", &table).is_err());
    }

    #[test]
    fn exec_statement_language() {
        let mut cods = shell();
        run(&mut cods, "demo");
        run(
            &mut cods,
            "exec DECOMPOSE TABLE R INTO S (employee, skill), T (employee, address)",
        );
        assert_eq!(cods.table("T").unwrap().rows(), 4);
        run(&mut cods, "exec MERGE TABLES S, T INTO R2");
        assert_eq!(cods.table("R2").unwrap().rows(), 7);
        assert!(run_command(&mut cods, "exec NONSENSE").is_err());
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        let mut cods = shell();
        assert!(run_command(&mut cods, "display nope").is_err());
        assert!(run_command(&mut cods, "create").is_err());
        assert!(run_command(&mut cods, "frobnicate").is_err());
        // Empty lines and comments are no-ops.
        assert!(matches!(
            run_command(&mut cods, "").unwrap(),
            Outcome::Continue
        ));
        assert!(matches!(
            run_command(&mut cods, "quit").unwrap(),
            Outcome::Quit
        ));
    }

    #[test]
    fn run_command_goes_through_the_atomic_plan_path() {
        let dir = std::env::temp_dir().join("cods_cli_run_test");
        std::fs::create_dir_all(&dir).unwrap();

        // A valid script executes end to end with one atomic commit.
        let ok = dir.join("ok.smo");
        std::fs::write(
            &ok,
            "DECOMPOSE TABLE R INTO S (employee, skill), T (employee, address)\n\
             MERGE TABLES S, T INTO R2\n",
        )
        .unwrap();
        let mut cods = shell();
        run(&mut cods, "demo");
        let v0 = cods.catalog().version();
        run(&mut cods, &format!("run {}", ok.display()));
        assert!(cods.catalog().contains("R2"));
        assert_eq!(cods.catalog().version(), v0 + 1, "one atomic commit");

        // Regression: a script failing mid-way (the second statement's
        // output name collides with an existing table) must leave the
        // catalog exactly as it was — no partial mutation.
        let bad = dir.join("bad.smo");
        std::fs::write(
            &bad,
            "COPY TABLE R2 TO R3\nRENAME TABLE R3 TO S\nDROP TABLE R2\nDROP TABLE missing\n",
        )
        .unwrap();
        let names_before = cods.catalog().table_names();
        let v1 = cods.catalog().version();
        assert!(run_command(&mut cods, &format!("run {}", bad.display())).is_err());
        assert_eq!(cods.catalog().table_names(), names_before);
        assert_eq!(cods.catalog().version(), v1);

        std::fs::remove_file(&ok).ok();
        std::fs::remove_file(&bad).ok();
    }

    #[test]
    fn plan_command_prints_dag_and_fusion() {
        let dir = std::env::temp_dir().join("cods_cli_plan_test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("script.smo");
        std::fs::write(
            &file,
            "ADD COLUMN dept str DEFAULT eng TO R\nDROP COLUMN dept FROM R\n",
        )
        .unwrap();
        let mut cods = shell();
        run(&mut cods, "demo");
        // `plan` only validates and prints; nothing executes.
        run(&mut cods, &format!("plan {}", file.display()));
        assert_eq!(cods.table("R").unwrap().arity(), 3);
        assert!(cods.history().is_empty());
        let plan = cods
            .plan_script(&std::fs::read_to_string(&file).unwrap())
            .unwrap();
        assert!(plan.describe().contains("FUSED COLUMN PASS ON R"));
        std::fs::remove_file(&file).ok();
    }

    #[test]
    fn history_groups_plan_records() {
        let mut cods = shell();
        run(&mut cods, "demo");
        let report = cods
            .plan_script("COPY TABLE R TO A\nCOPY TABLE R TO B")
            .unwrap()
            .execute()
            .unwrap();
        let id = report.records[0].plan_id.unwrap();
        assert!(report.records.iter().all(|r| r.plan_id == Some(id)));
        run(&mut cods, "drop A");
        let hist = cods.history();
        assert_eq!(hist.len(), 3);
        assert_eq!(hist[0].plan_id, hist[1].plan_id);
        assert_ne!(hist[2].plan_id, hist[0].plan_id);
        // The grouped renderer must not panic on mixed histories.
        run(&mut cods, "history");
    }

    /// Serialises the tests that set or observe the process-wide buffer
    /// cache so a concurrently shrunk budget can't evict segments whose
    /// residency another test is asserting.
    static CACHE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn cache_command_reports_and_sets_the_budget() {
        let _guard = CACHE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut cods = shell();
        run(&mut cods, "demo");
        // `stats` reports residency: a freshly built table is fully
        // resident with nothing paged out.
        let out = render_stats("R", &cods.table("R").unwrap());
        assert!(
            out.contains("3 resident / 0 on-disk segments"),
            "stats: {out}"
        );
        // `cache <bytes>` sets the budget, with binary suffixes; `cache
        // unlimited` clears it.
        run(&mut cods, "cache 65536");
        assert_eq!(segment_cache().stats().budget, 65536);
        run(&mut cods, "cache 64k");
        assert_eq!(segment_cache().stats().budget, 65536);
        run(&mut cods, "cache 2m");
        assert_eq!(segment_cache().stats().budget, 2 << 20);
        run(&mut cods, "cache unlimited");
        assert_eq!(segment_cache().stats().budget, u64::MAX);
        // Telemetry renders budget, resident bytes, and counters.
        let out = render_cache();
        assert!(out.contains("budget=unlimited"), "cache: {out}");
        assert!(out.contains("resident="), "cache: {out}");
        assert!(out.contains("misses"), "cache: {out}");
        assert!(out.contains("evictions"), "cache: {out}");
        // Bad arguments are rejected.
        assert!(run_command(&mut cods, "cache nonsense").is_err());
        assert!(run_command(&mut cods, "cache 1 2").is_err());
        run(&mut cods, "cache"); // bare form prints, never errors
    }

    #[test]
    fn open_is_lazy_and_stats_show_residency() {
        let _guard = CACHE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let dir = std::env::temp_dir().join("cods_cli_lazy_test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("lazy.catalog");
        let mut cods = shell();
        run(&mut cods, "demo");
        run(&mut cods, &format!("save {}", file.display()));
        let mut fresh = shell();
        run(&mut fresh, &format!("open {}", file.display()));
        // The reopened catalog is metadata-only until something reads it,
        // and `stats` itself must not fault anything in.
        let t = fresh.table("R").unwrap();
        let out = render_stats("R", &t);
        assert!(
            out.contains("0 resident / 3 on-disk segments"),
            "stats: {out}"
        );
        assert_eq!(t.residency_counts(), (0, 3), "stats faulted payloads in");
        // Reading the data faults it in; stats now reflect that.
        assert_eq!(t.rows(), 7);
        assert_eq!(t.to_rows().len(), 7);
        let out = render_stats("R", &t);
        assert!(
            out.contains("3 resident / 0 on-disk segments"),
            "stats: {out}"
        );
        std::fs::remove_file(&file).ok();
    }

    #[test]
    fn vacuum_command_compacts_and_stats_report_heap_occupancy() {
        let dir = std::env::temp_dir().join("cods_cli_vacuum_test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("churn.catalog");
        std::fs::remove_file(&file).ok();
        let mut cods = shell();
        run(&mut cods, "demo");
        run(&mut cods, &format!("save {}", file.display()));

        // After the first save everything is live; `stats` reports the
        // backing file's heap occupancy.
        let out = render_stats("R", &cods.table("R").unwrap());
        assert!(out.contains("file "), "stats: {out}");
        assert!(out.contains("+ 0 dead"), "stats: {out}");

        // Churn one column: the other columns' extents stay reused, so the
        // saves take the append path and strand the recoded payloads.
        run(&mut cods, "recode R skill rle");
        run(&mut cods, &format!("save {}", file.display()));
        run(&mut cods, "recode R skill bitmap");
        run(&mut cods, &format!("save {}", file.display()));
        let churned = cods_storage::heap_stats(&file).unwrap();
        assert!(churned.dead_bytes > 0, "{churned:?}");
        let out = render_stats("R", &cods.table("R").unwrap());
        assert!(!out.contains("+ 0 dead"), "stats: {out}");

        // `vacuum <file>` compacts; the file reopens equal and fully live.
        run(&mut cods, &format!("vacuum {}", file.display()));
        let after = cods_storage::heap_stats(&file).unwrap();
        assert_eq!(after.dead_bytes, 0, "{after:?}");
        assert!(after.file_bytes < churned.file_bytes);
        let mut fresh = shell();
        run(&mut fresh, &format!("open {}", file.display()));
        assert_eq!(fresh.table("R").unwrap().rows(), 7);

        // Bad arguments are rejected.
        assert!(run_command(&mut cods, "vacuum").is_err());
        assert!(run_command(&mut cods, "vacuum /nonexistent/x.catalog").is_err());
        std::fs::remove_file(&file).ok();
    }

    #[test]
    fn save_and_open_round_trip() {
        let dir = std::env::temp_dir().join("cods_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("demo.catalog");
        let mut cods = shell();
        run(&mut cods, "demo");
        run(&mut cods, &format!("save {}", file.display()));
        let mut fresh = shell();
        run(&mut fresh, &format!("open {}", file.display()));
        assert!(fresh.catalog().contains("R"));
        assert_eq!(fresh.table("R").unwrap().rows(), 7);
        std::fs::remove_file(&file).ok();
    }
}
