//! `cods` — an interactive shell reproducing the CODS demonstration
//! workflow (Section 3 / Figure 4 of the paper): create tables, load data,
//! queue and execute schema modification operators, and watch the "Data
//! Evolution Status" log.
//!
//! ```text
//! cargo run -p cods-cli
//! cods> demo
//! cods> decompose R S employee,skill T employee,address
//! cods> display T
//! ```
//!
//! Non-interactive use: pipe commands on stdin or pass a script file as the
//! first argument.

use cods::Cods;
use cods_cli::{run_command, Outcome, HELP};
use std::io::{BufRead, Write};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // Network subcommands dispatch before the script-path fallback.
    match args.get(1).map(String::as_str) {
        Some("serve") => {
            let addr = args.get(2).map(String::as_str).unwrap_or("127.0.0.1:4050");
            let demo = args.iter().any(|a| a == "--demo");
            if let Err(e) = cods_cli::serve(addr, demo) {
                eprintln!("{e}");
                std::process::exit(1);
            }
            return;
        }
        Some("connect") => {
            let Some(addr) = args.get(2) else {
                eprintln!("usage: cods connect <addr>");
                std::process::exit(1);
            };
            let stdin = std::io::stdin();
            let mut stdout = std::io::stdout();
            if let Err(e) = cods_cli::connect_repl(addr, stdin.lock(), &mut stdout, true) {
                eprintln!("{e}");
                std::process::exit(1);
            }
            return;
        }
        _ => {}
    }

    let mut cods = Cods::new();
    let script = std::env::args().nth(1);
    let interactive = script.is_none();

    println!("CODS — Column Oriented Database Schema update (VLDB 2010 reproduction)");
    if interactive {
        print!("{HELP}");
    }

    let reader: Box<dyn BufRead> = match &script {
        Some(path) => Box::new(std::io::BufReader::new(
            std::fs::File::open(path).unwrap_or_else(|e| {
                eprintln!("cannot open {path}: {e}");
                std::process::exit(1);
            }),
        )),
        None => Box::new(std::io::BufReader::new(std::io::stdin())),
    };

    if interactive {
        print!("cods> ");
        std::io::stdout().flush().ok();
    }
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let trimmed = line.trim();
        if !trimmed.is_empty() && !trimmed.starts_with('#') {
            match run_command(&mut cods, trimmed) {
                Ok(Outcome::Quit) => break,
                Ok(Outcome::Continue) => {}
                Err(msg) => eprintln!("error: {msg}"),
            }
        }
        if interactive {
            print!("cods> ");
            std::io::stdout().flush().ok();
        }
    }
    println!();
}
