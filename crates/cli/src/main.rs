//! `cods` — an interactive shell reproducing the CODS demonstration
//! workflow (Section 3 / Figure 4 of the paper): create tables, load data,
//! queue and execute schema modification operators, and watch the "Data
//! Evolution Status" log.
//!
//! ```text
//! cargo run -p cods-cli
//! cods> demo
//! cods> decompose R S employee,skill T employee,address
//! cods> display T
//! ```
//!
//! Non-interactive use: pipe commands on stdin or pass a script file as the
//! first argument.

use cods::Cods;
use cods_cli::{run_command, Outcome, HELP};
use std::io::{BufRead, Write};

fn usage_exit(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!(
        "usage: cods serve [addr] [--demo] [--durable <file>] \
         [--idle-timeout <secs>] [--write-timeout <secs>]"
    );
    std::process::exit(1);
}

fn parse_secs(arg: Option<&String>) -> std::time::Duration {
    let Some(arg) = arg else {
        usage_exit("serve: timeout flags need a seconds value");
    };
    match arg.parse::<u64>() {
        Ok(s) if s > 0 => std::time::Duration::from_secs(s),
        _ => usage_exit(&format!("serve: bad timeout {arg:?}, want seconds > 0")),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // Network subcommands dispatch before the script-path fallback.
    match args.get(1).map(String::as_str) {
        Some("serve") => {
            let mut addr = "127.0.0.1:4050".to_string();
            let mut opts = cods_cli::ServeOptions::default();
            let mut rest = args[2..].iter();
            while let Some(arg) = rest.next() {
                match arg.as_str() {
                    "--demo" => opts.preload_demo = true,
                    "--durable" => match rest.next() {
                        Some(file) => opts.durable = Some(file.clone()),
                        None => usage_exit("serve: --durable needs a catalog file"),
                    },
                    "--idle-timeout" => opts.idle_timeout = Some(parse_secs(rest.next())),
                    "--write-timeout" => opts.write_timeout = Some(parse_secs(rest.next())),
                    a if a.starts_with('-') => {
                        usage_exit(&format!("serve: unknown flag {a}"));
                    }
                    a => addr = a.to_string(),
                }
            }
            if let Err(e) = cods_cli::serve(&addr, &opts) {
                eprintln!("{e}");
                std::process::exit(1);
            }
            return;
        }
        Some("connect") => {
            let Some(addr) = args.get(2) else {
                eprintln!("usage: cods connect <addr>");
                std::process::exit(1);
            };
            let stdin = std::io::stdin();
            let mut stdout = std::io::stdout();
            if let Err(e) = cods_cli::connect_repl(addr, stdin.lock(), &mut stdout, true) {
                eprintln!("{e}");
                std::process::exit(1);
            }
            return;
        }
        _ => {}
    }

    let mut cods = Cods::new();
    let script = std::env::args().nth(1);
    let interactive = script.is_none();

    println!("CODS — Column Oriented Database Schema update (VLDB 2010 reproduction)");
    if interactive {
        print!("{HELP}");
    }

    let reader: Box<dyn BufRead> = match &script {
        Some(path) => Box::new(std::io::BufReader::new(
            std::fs::File::open(path).unwrap_or_else(|e| {
                eprintln!("cannot open {path}: {e}");
                std::process::exit(1);
            }),
        )),
        None => Box::new(std::io::BufReader::new(std::io::stdin())),
    };

    if interactive {
        print!("cods> ");
        std::io::stdout().flush().ok();
    }
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let trimmed = line.trim();
        if !trimmed.is_empty() && !trimmed.starts_with('#') {
            match run_command(&mut cods, trimmed) {
                Ok(Outcome::Quit) => break,
                Ok(Outcome::Continue) => {}
                Err(msg) => eprintln!("error: {msg}"),
            }
        }
        if interactive {
            print!("cods> ");
            std::io::stdout().flush().ok();
        }
    }
    println!();
}
