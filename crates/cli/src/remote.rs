//! The network side of the CLI: `cods serve <addr>` hosts a platform
//! behind the framed TCP protocol, `cods connect <addr>` is a small
//! client REPL over [`cods_server::Client`].
//!
//! The connect command language (one command per line):
//!
//! ```text
//! ping                                    liveness probe
//! refresh                                 re-pin the session snapshot
//! metrics                                 server counters + buffer cache
//! stats <table>                           table statistics at the snapshot
//! tables? use `metrics` / `stats`; the catalog listing is script-side
//! count <table> [where <col> <op> <lit>]  predicate-selected row count
//! scan <table> [select c1,c2] [where …]   stream selected rows
//! agg <table> by <c1,c2|-> <op:col,…> [where …]
//! join <left> <right> on <lcol=rcol,…>    partition-wise hash join
//! run <smo script>                        execute an SMO line remotely
//! quit
//! ```

use cods_query::{AggOp, CmpOp, Predicate};
use cods_server::{Client, ClientError, ServerConfig};
use cods_storage::Value;
use std::io::Write;
use std::time::Duration;

/// How `cods serve` should host the platform, parsed from the command
/// line by `main`.
#[derive(Debug, Default, Clone)]
pub struct ServeOptions {
    /// Start with the paper's demo table loaded.
    pub preload_demo: bool,
    /// Open this catalog file durably ([`cods_storage::open_durable`]):
    /// replay its commit log, and acknowledge every script only after the
    /// group fsync covering its commit. A `kill -9` at any point loses no
    /// acknowledged commit.
    pub durable: Option<String>,
    /// Evict connections idle longer than this.
    pub idle_timeout: Option<Duration>,
    /// Fail writes to clients that stop reading for longer than this.
    pub write_timeout: Option<Duration>,
}

/// In durable mode, how often the background checkpointer folds the
/// commit log into a full save.
const CHECKPOINT_INTERVAL: Duration = Duration::from_secs(30);

/// Hosts `cods` behind `addr` until the process is killed.
pub fn serve(addr: &str, opts: &ServeOptions) -> Result<(), String> {
    let (mut cods, log) = match &opts.durable {
        Some(file) => {
            let (catalog, log, replay) = cods_storage::open_durable(std::path::Path::new(file))
                .map_err(|e| format!("cannot open {file} durably: {e}"))?;
            println!(
                "opened {file} durably: {} commit(s) replayed{}{}",
                replay.replayed,
                if replay.discarded_torn {
                    ", torn tail discarded"
                } else {
                    ""
                },
                if replay.orphan_spills > 0 {
                    format!(", {} orphan spill(s) removed", replay.orphan_spills)
                } else {
                    String::new()
                },
            );
            (cods::Cods::with_catalog(catalog), Some(log))
        }
        None => (cods::Cods::new(), None),
    };
    if opts.preload_demo {
        crate::run_command(&mut cods, "demo")?;
    }
    let config = ServerConfig {
        idle_timeout: opts.idle_timeout,
        write_timeout: opts.write_timeout,
        commit_log: log.clone(),
        ..ServerConfig::default()
    };
    let cods = std::sync::Arc::new(cods);
    // Periodic checkpointing keeps the log short; recovery does not need
    // it (a kill at any moment replays the log), it only bounds replay
    // work and disk growth.
    if let Some(log) = log {
        let cods = std::sync::Arc::clone(&cods);
        std::thread::spawn(move || loop {
            std::thread::sleep(CHECKPOINT_INTERVAL);
            if log.stats().pending_records > 0 {
                match log.checkpoint(cods.catalog()) {
                    Ok(n) => println!("checkpoint: {n} commit record(s) folded into the save"),
                    Err(e) => eprintln!("checkpoint failed: {e}"),
                }
            }
        });
    }
    let handle = cods_server::Server::bind(addr, cods, config)
        .map_err(|e| format!("cannot bind {addr}: {e}"))?;
    println!("serving on {}", handle.local_addr());
    println!("connect with: cods connect {}", handle.local_addr());
    loop {
        std::thread::park();
    }
}

/// Runs the connect REPL against `addr`, reading commands from `input`
/// and writing results to `out`.
pub fn connect_repl(
    addr: &str,
    input: impl std::io::BufRead,
    out: &mut impl Write,
    interactive: bool,
) -> Result<(), String> {
    let mut client = Client::connect(addr).map_err(|e| format!("cannot connect {addr}: {e}"))?;
    writeln!(
        out,
        "connected to {addr} (catalog v{})",
        client.catalog_version()
    )
    .ok();
    if interactive {
        write!(out, "cods@{addr}> ").ok();
        out.flush().ok();
    }
    for line in input.lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if !line.is_empty() && !line.starts_with('#') {
            match connect_command(&mut client, line, out) {
                Ok(true) => break,
                Ok(false) => {}
                Err(msg) => {
                    writeln!(out, "error: {msg}").ok();
                }
            }
        }
        if interactive {
            write!(out, "cods@{addr}> ").ok();
            out.flush().ok();
        }
    }
    Ok(())
}

/// Executes one connect-REPL command. Returns `true` to quit.
pub fn connect_command(
    client: &mut Client,
    line: &str,
    out: &mut impl Write,
) -> Result<bool, String> {
    let mut words = line.split_whitespace();
    let cmd = words.next().unwrap_or("");
    let rest: Vec<&str> = words.collect();
    match cmd {
        "quit" | "exit" => return Ok(true),
        "ping" => {
            client.ping().map_err(fmt_err)?;
            writeln!(out, "pong").ok();
        }
        "refresh" => {
            let v = client.refresh().map_err(fmt_err)?;
            writeln!(out, "snapshot re-pinned at catalog v{v}").ok();
        }
        "metrics" => {
            let m = client.metrics().map_err(fmt_err)?;
            writeln!(
                out,
                "connections: {} open / {} total",
                m.connections_open, m.connections_total
            )
            .ok();
            writeln!(
                out,
                "requests: {} in flight, {} queued, {} admitted, {} rejected",
                m.in_flight, m.queued, m.admitted_total, m.rejected_total
            )
            .ok();
            writeln!(
                out,
                "streamed: {} rows, {} bytes",
                m.rows_streamed, m.bytes_streamed
            )
            .ok();
            writeln!(
                out,
                "cache: {} resident bytes, {} hits, {} misses, {} evictions",
                m.cache.resident_bytes, m.cache.hits, m.cache.misses, m.cache.evictions
            )
            .ok();
            if m.idle_evicted > 0 {
                writeln!(out, "idle-evicted: {} connection(s)", m.idle_evicted).ok();
            }
            if m.durability.enabled == 1 {
                let d = &m.durability;
                writeln!(
                    out,
                    "durability: {} commit(s) over {} fsync(s) (max batch {}, {} us fsync time); \
                     {} record(s) pending checkpoint, {} log bytes",
                    d.commits, d.fsyncs, d.max_batch, d.fsync_micros, d.log_pending, d.log_bytes
                )
                .ok();
            }
        }
        "stats" => {
            let table = rest.first().ok_or("usage: stats <table>")?;
            let s = client.stats(table).map_err(fmt_err)?;
            writeln!(
                out,
                "{table}@v{}: {} rows x {} cols, {} bytes, segments {} resident / {} on disk",
                s.catalog_version,
                s.rows,
                s.arity,
                s.total_bytes,
                s.resident_segments,
                s.on_disk_segments
            )
            .ok();
        }
        "count" => {
            let (table, tail) = rest.split_first().ok_or("usage: count <table> [where …]")?;
            let pred = parse_where(tail)?;
            let (rows, selected, v) = client.mask(table, pred).map_err(fmt_err)?;
            writeln!(out, "{selected} of {rows} rows satisfy (catalog v{v})").ok();
        }
        "scan" => {
            let (table, tail) = rest.split_first().ok_or("usage: scan <table> …")?;
            let (projection, tail) = parse_select(tail)?;
            let pred = parse_where(tail)?;
            let summary = client
                .scan_with(table, pred, projection, |cols, rows| {
                    for row in rows {
                        let cells: Vec<String> = cols
                            .iter()
                            .zip(&row)
                            .map(|((name, _), v)| format!("{name}={v}"))
                            .collect();
                        writeln!(out, "  {}", cells.join(", ")).ok();
                    }
                })
                .map_err(fmt_err)?;
            writeln!(
                out,
                "{} row(s) in {} batch(es)",
                summary.rows, summary.batches
            )
            .ok();
        }
        "agg" => {
            // agg <table> by <c1,c2|-> <op:col,…> [where …]
            let (table, tail) = rest.split_first().ok_or(AGG_USAGE)?;
            let tail = match tail.split_first() {
                Some((&"by", t)) => t,
                _ => return Err(AGG_USAGE.into()),
            };
            let (groups, tail) = tail.split_first().ok_or(AGG_USAGE)?;
            let group_by: Vec<String> = if *groups == "-" {
                Vec::new()
            } else {
                groups.split(',').map(str::to_string).collect()
            };
            let (specs, tail) = tail.split_first().ok_or(AGG_USAGE)?;
            let aggs: Vec<(AggOp, String)> = specs
                .split(',')
                .map(parse_agg_spec)
                .collect::<Result<_, String>>()?;
            let pred = parse_where(tail)?;
            // The chunked GroupBy command: identical results to Agg, but
            // group batches arrive in bounded frames.
            let (cols, rows) = client
                .group_by(table, pred, group_by, aggs)
                .map_err(fmt_err)?;
            let names: Vec<&str> = cols.iter().map(|(n, _)| n.as_str()).collect();
            writeln!(out, "  {}", names.join(" | ")).ok();
            for row in &rows {
                let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
                writeln!(out, "  {}", cells.join(" | ")).ok();
            }
            writeln!(out, "{} group(s)", rows.len()).ok();
        }
        "join" => {
            // join <left> <right> on <lcol=rcol,…>
            let (left, right, pairs) = match rest.as_slice() {
                [l, r, on, p] if *on == "on" => (*l, *r, *p),
                _ => return Err(JOIN_USAGE.into()),
            };
            let mut left_keys = Vec::new();
            let mut right_keys = Vec::new();
            for pair in pairs.split(',') {
                let (lk, rk) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("bad key pair {pair:?}, want lcol=rcol"))?;
                left_keys.push(lk.to_string());
                right_keys.push(rk.to_string());
            }
            let summary = client
                .join_with(left, right, left_keys, right_keys, |cols, rows| {
                    for row in rows {
                        let cells: Vec<String> = cols
                            .iter()
                            .zip(&row)
                            .map(|((name, _), v)| format!("{name}={v}"))
                            .collect();
                        writeln!(out, "  {}", cells.join(", ")).ok();
                    }
                })
                .map_err(fmt_err)?;
            writeln!(
                out,
                "{} match(es) in {} batch(es)",
                summary.rows, summary.batches
            )
            .ok();
        }
        "run" => {
            if rest.is_empty() {
                return Err("usage: run <smo script line>".into());
            }
            let script = rest.join(" ");
            let msg = client.script(&script).map_err(fmt_err)?;
            writeln!(out, "{msg}").ok();
        }
        "help" => {
            writeln!(
                out,
                "commands: ping refresh metrics stats count scan agg join run quit"
            )
            .ok();
        }
        other => return Err(format!("unknown command: {other} (try help)")),
    }
    Ok(false)
}

const AGG_USAGE: &str = "usage: agg <table> by <c1,c2|-> <op:col,…> [where …]";
const JOIN_USAGE: &str = "usage: join <left> <right> on <lcol=rcol,…>";

fn fmt_err(e: ClientError) -> String {
    e.to_string()
}

/// `op:col` → aggregate spec; ops: count, distinct, sum, min, max.
fn parse_agg_spec(spec: &str) -> Result<(AggOp, String), String> {
    let (op, col) = spec
        .split_once(':')
        .ok_or_else(|| format!("bad aggregate {spec:?}, want op:col"))?;
    let op = match op {
        "count" => AggOp::Count,
        "distinct" => AggOp::CountDistinct,
        "sum" => AggOp::Sum,
        "min" => AggOp::Min,
        "max" => AggOp::Max,
        other => return Err(format!("unknown aggregate op {other:?}")),
    };
    Ok((op, col.to_string()))
}

/// Optional `select c1,c2` prefix; returns the projection and the rest.
fn parse_select<'a>(words: &'a [&'a str]) -> Result<(Option<Vec<String>>, &'a [&'a str]), String> {
    match words.split_first() {
        Some((&"select", tail)) => {
            let (cols, tail) = tail
                .split_first()
                .ok_or("select needs a column list: select c1,c2")?;
            Ok((Some(cols.split(',').map(str::to_string).collect()), tail))
        }
        _ => Ok((None, words)),
    }
}

/// Optional `where <col> <op> <literal>` suffix → predicate.
fn parse_where(words: &[&str]) -> Result<Predicate, String> {
    match words.split_first() {
        None => Ok(Predicate::True),
        Some((&"where", tail)) => match tail {
            [col, op, lit @ ..] if !lit.is_empty() => {
                let op = match *op {
                    "=" | "==" => CmpOp::Eq,
                    "!=" | "<>" => CmpOp::Ne,
                    "<" => CmpOp::Lt,
                    "<=" => CmpOp::Le,
                    ">" => CmpOp::Gt,
                    ">=" => CmpOp::Ge,
                    other => return Err(format!("unknown comparison {other:?}")),
                };
                Ok(Predicate::Compare {
                    column: (*col).to_string(),
                    op,
                    literal: parse_literal(&lit.join(" ")),
                })
            }
            _ => Err("usage: where <column> <op> <literal>".into()),
        },
        Some((other, _)) => Err(format!("expected `where`, got {other:?}")),
    }
}

/// Untyped literal parsing: null / bool / int / float, else string.
fn parse_literal(s: &str) -> Value {
    match s {
        "null" | "NULL" => return Value::Null,
        "true" => return Value::Bool(true),
        "false" => return Value::Bool(false),
        _ => {}
    }
    if let Ok(i) = s.parse::<i64>() {
        return Value::int(i);
    }
    if let Ok(f) = s.parse::<f64>() {
        return Value::float(f);
    }
    Value::str(s.trim_matches('\''))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cods_server::{Server, ServerConfig};
    use std::sync::Arc;

    fn demo_server() -> cods_server::ServerHandle {
        let mut cods = cods::Cods::new();
        crate::run_command(&mut cods, "demo").unwrap();
        Server::bind("127.0.0.1:0", Arc::new(cods), ServerConfig::default()).unwrap()
    }

    fn run(client: &mut Client, line: &str) -> String {
        let mut out = Vec::new();
        connect_command(client, line, &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn literal_parsing_is_untyped_but_sensible() {
        assert_eq!(parse_literal("null"), Value::Null);
        assert_eq!(parse_literal("true"), Value::Bool(true));
        assert_eq!(parse_literal("42"), Value::int(42));
        assert_eq!(parse_literal("4.5"), Value::float(4.5));
        assert_eq!(parse_literal("'Jones'"), Value::str("Jones"));
        assert_eq!(parse_literal("Jones"), Value::str("Jones"));
    }

    #[test]
    fn repl_surfaces_scan_count_and_metrics() {
        let server = demo_server();
        let mut client = Client::connect(server.local_addr()).unwrap();

        let count = run(&mut client, "count R where employee = Jones");
        assert!(count.contains("3 of 7 rows"), "got: {count}");

        let scan = run(&mut client, "scan R select skill where employee = Jones");
        assert!(scan.contains("skill=Typing"), "got: {scan}");
        assert!(scan.contains("3 row(s)"), "got: {scan}");

        let agg = run(&mut client, "agg R by employee count:skill");
        assert!(agg.contains("count(skill)"), "got: {agg}");
        assert!(agg.contains("4 group(s)"), "got: {agg}");

        let stats = run(&mut client, "stats R");
        assert!(stats.contains("7 rows x 3 cols"), "got: {stats}");

        // The metrics satellite: counters visible through the REPL, with
        // the rows we just streamed accounted for.
        let metrics = run(&mut client, "metrics");
        assert!(metrics.contains("connections: 1 open"), "got: {metrics}");
        assert!(metrics.contains("admitted"), "got: {metrics}");
        assert!(metrics.contains("cache:"), "got: {metrics}");
        let rows_line = metrics
            .lines()
            .find(|l| l.starts_with("streamed:"))
            .expect("streamed line");
        assert!(!rows_line.contains("streamed: 0 rows"), "got: {metrics}");
    }

    #[test]
    fn repl_streams_joins() {
        let server = demo_server();
        let mut client = Client::connect(server.local_addr()).unwrap();
        // Second table to join against: a copy of the demo table.
        run(&mut client, "run COPY TABLE R TO R2");
        let joined = run(&mut client, "join R R2 on employee=employee");
        // Jones has 3 skill rows on each side: 9 Jones matches, plus
        // Ellis 1x1 and the remaining singletons.
        assert!(joined.contains("match(es)"), "got: {joined}");
        assert!(joined.contains("employee=Jones"), "got: {joined}");
        let mut out = Vec::new();
        assert!(connect_command(&mut client, "join R R2 on", &mut out).is_err());
        assert!(connect_command(&mut client, "join R R2 on employee", &mut out).is_err());
    }

    #[test]
    fn repl_runs_scripts_and_sees_its_own_writes() {
        let server = demo_server();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let msg = run(&mut client, "run COPY TABLE R TO R2");
        assert!(msg.contains("1 operator(s) committed"), "got: {msg}");
        // Read-your-writes: the session snapshot moved with the script.
        let stats = run(&mut client, "stats R2");
        assert!(stats.contains("7 rows"), "got: {stats}");
        // Unknown commands and server-side errors surface as Err.
        let mut out = Vec::new();
        assert!(connect_command(&mut client, "bogus", &mut out).is_err());
        assert!(connect_command(&mut client, "stats nope", &mut out).is_err());
    }
}
