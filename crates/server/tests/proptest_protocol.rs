//! Property tests for the wire layer: random commands and replies must
//! survive encode → frame → read → decode byte-exactly, and random
//! truncation/corruption must never be silently accepted — mirroring the
//! WAL's torn-frame guarantees at the network boundary.

use cods_query::{AggOp, CmpOp, Predicate};
use cods_server::proto::{
    decode_command, decode_reply, encode_command, encode_reply, Command, DurabilityReply,
    MetricsReply, Reply, StatsReply,
};
use cods_server::{frame, FrameError};
use cods_storage::{CacheStats, OrderedF64, Value, ValueType};
use proptest::prelude::*;
use proptest::{BoxedStrategy, UnitF64};
use std::io::Cursor;

fn name() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..26, 1..9)
        .prop_map(|v| v.iter().map(|b| (b'a' + b) as char).collect())
}

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<u64>().prop_map(|u| Value::Int(u as i64)),
        // Raw bit patterns: NaNs and negative zero included.
        any::<u64>().prop_map(|b| Value::Float(OrderedF64(f64::from_bits(b)))),
        name().prop_map(Value::str),
    ]
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn leaf() -> BoxedStrategy<Predicate> {
    prop_oneof![
        Just(Predicate::True),
        (name(), cmp_op(), value()).prop_map(|(column, op, literal)| Predicate::Compare {
            column,
            op,
            literal,
        }),
    ]
    .boxed()
}

fn predicate(depth: u32) -> BoxedStrategy<Predicate> {
    if depth == 0 {
        return leaf();
    }
    prop_oneof![
        leaf(),
        (predicate(depth - 1), predicate(depth - 1)).prop_map(|(a, b)| a.and(b)),
        (predicate(depth - 1), predicate(depth - 1)).prop_map(|(a, b)| a.or(b)),
        predicate(depth - 1).prop_map(|p| p.not()),
    ]
    .boxed()
}

fn agg_op() -> impl Strategy<Value = AggOp> {
    prop_oneof![
        Just(AggOp::Count),
        Just(AggOp::CountDistinct),
        Just(AggOp::Sum),
        Just(AggOp::Min),
        Just(AggOp::Max),
    ]
}

fn command() -> BoxedStrategy<Command> {
    prop_oneof![
        Just(Command::Ping),
        Just(Command::Refresh),
        Just(Command::Metrics),
        name().prop_map(|table| Command::Stats { table }),
        name().prop_map(|text| Command::Script { text }),
        (
            name(),
            predicate(3),
            prop_oneof![
                Just(None),
                prop::collection::vec(name(), 0..4).prop_map(Some)
            ]
        )
            .prop_map(|(table, predicate, projection)| Command::Scan {
                table,
                predicate,
                projection,
            }),
        (name(), predicate(3)).prop_map(|(table, predicate)| Command::Mask { table, predicate }),
        (
            name(),
            predicate(2),
            prop::collection::vec(name(), 0..3),
            prop::collection::vec((agg_op(), name()), 0..3)
        )
            .prop_map(|(table, predicate, group_by, aggs)| Command::Agg {
                table,
                predicate,
                group_by,
                aggs,
            }),
    ]
    .boxed()
}

fn value_type() -> impl Strategy<Value = ValueType> {
    prop_oneof![
        Just(ValueType::Bool),
        Just(ValueType::Int),
        Just(ValueType::Float),
        Just(ValueType::Str),
    ]
}

fn rows() -> impl Strategy<Value = Vec<Vec<Value>>> {
    prop::collection::vec(prop::collection::vec(value(), 0..5), 0..6)
}

fn reply() -> BoxedStrategy<Reply> {
    prop_oneof![
        any::<u64>().prop_map(|catalog_version| Reply::Hello { catalog_version }),
        Just(Reply::Pong),
        any::<u64>().prop_map(|catalog_version| Reply::Refreshed { catalog_version }),
        name().prop_map(|message| Reply::Ok { message }),
        (any::<u16>(), name()).prop_map(|(code, message)| Reply::Error { code, message }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(in_flight, queued)| Reply::Overloaded { in_flight, queued }),
        (
            prop::collection::vec((name(), value_type()), 0..5),
            any::<u64>()
        )
            .prop_map(|(columns, total_rows)| Reply::RowHeader {
                columns,
                total_rows,
            }),
        rows().prop_map(|rows| Reply::Rows { rows }),
        (any::<u64>(), any::<u64>()).prop_map(|(batches, rows)| Reply::Done { batches, rows }),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(rows, selected, catalog_version)| {
            Reply::MaskSummary {
                rows,
                selected,
                catalog_version,
            }
        }),
        prop::collection::vec(any::<u64>(), 22).prop_map(|v| {
            Reply::Metrics(MetricsReply {
                connections_open: v[0],
                connections_total: v[1],
                in_flight: v[2],
                queued: v[3],
                admitted_total: v[4],
                rejected_total: v[5],
                bytes_streamed: v[6],
                rows_streamed: v[7],
                idle_evicted: v[14],
                cache: CacheStats {
                    budget: v[8],
                    resident_bytes: v[9],
                    hits: v[10],
                    misses: v[11],
                    evictions: v[12],
                    decoded_bytes: v[13],
                },
                durability: DurabilityReply {
                    enabled: v[15],
                    commits: v[16],
                    fsyncs: v[17],
                    max_batch: v[18],
                    fsync_micros: v[19],
                    log_pending: v[20],
                    log_bytes: v[21],
                },
            })
        }),
        prop::collection::vec(any::<u64>(), 6).prop_map(|v| {
            Reply::Stats(StatsReply {
                rows: v[0],
                arity: v[1],
                total_bytes: v[2],
                resident_segments: v[3],
                on_disk_segments: v[4],
                catalog_version: v[5],
            })
        }),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn commands_round_trip_through_frames(cmd in command()) {
        let mut wire = Vec::new();
        frame::write_frame(&mut wire, cmd.kind(), &encode_command(&cmd)).unwrap();
        let (kind, payload) =
            frame::read_frame(&mut Cursor::new(&wire), frame::DEFAULT_MAX_FRAME_BYTES).unwrap();
        prop_assert_eq!(kind, cmd.kind());
        prop_assert_eq!(decode_command(kind, &payload).unwrap(), cmd);
    }

    #[test]
    fn replies_round_trip_through_frames(reply in reply()) {
        let mut wire = Vec::new();
        frame::write_frame(&mut wire, reply.kind(), &encode_reply(&reply)).unwrap();
        let (kind, payload) =
            frame::read_frame(&mut Cursor::new(&wire), frame::DEFAULT_MAX_FRAME_BYTES).unwrap();
        prop_assert_eq!(kind, reply.kind());
        prop_assert_eq!(decode_reply(kind, &payload).unwrap(), reply);
    }

    #[test]
    fn truncated_frames_read_as_torn(cmd in command(), keep in UnitF64) {
        let mut wire = Vec::new();
        frame::write_frame(&mut wire, cmd.kind(), &encode_command(&cmd)).unwrap();
        let cut = 1 + ((wire.len() - 1) as f64 * keep) as usize;
        if cut < wire.len() {
            let err =
                frame::read_frame(&mut Cursor::new(&wire[..cut]), frame::DEFAULT_MAX_FRAME_BYTES)
                    .unwrap_err();
            prop_assert!(matches!(err, FrameError::Torn), "cut {}: {:?}", cut, err);
        }
    }

    #[test]
    fn corrupted_frames_never_decode_silently(
        cmd in command(),
        at in UnitF64,
        flip in 1u32..256,
    ) {
        let mut wire = Vec::new();
        frame::write_frame(&mut wire, cmd.kind(), &encode_command(&cmd)).unwrap();
        let idx = ((wire.len() - 1) as f64 * at) as usize;
        wire[idx] ^= flip as u8;
        match frame::read_frame(&mut Cursor::new(&wire), frame::DEFAULT_MAX_FRAME_BYTES) {
            // The checksum (or a length-field side effect) must catch it.
            Err(FrameError::Corrupt | FrameError::Torn | FrameError::TooLarge { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error class: {:?}", e),
            Ok(_) => prop_assert!(false, "corrupted frame passed the checksum"),
        }
    }
}
