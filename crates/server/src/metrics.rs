//! Server-wide counters, updated lock-free by connection threads and
//! snapshotted into a [`MetricsReply`] on demand.

use crate::proto::MetricsReply;
use cods_storage::segment_cache;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic (and two gauge) counters shared by every connection thread.
/// All updates are `Relaxed`: the metrics command reads a statistically
/// consistent snapshot, not a linearized one.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Connections currently open (gauge).
    pub connections_open: AtomicU64,
    /// Connections accepted since start.
    pub connections_total: AtomicU64,
    /// Data-plane requests admitted since start.
    pub admitted_total: AtomicU64,
    /// Data-plane requests rejected with `Overloaded` since start.
    pub rejected_total: AtomicU64,
    /// Payload bytes streamed to clients since start.
    pub bytes_streamed: AtomicU64,
    /// Result rows streamed to clients since start.
    pub rows_streamed: AtomicU64,
}

impl ServerMetrics {
    /// Builds the wire reply, folding in the admission gate's live gauges
    /// and the process-wide segment buffer cache counters.
    pub fn snapshot(&self, in_flight: u64, queued: u64) -> MetricsReply {
        MetricsReply {
            connections_open: self.connections_open.load(Ordering::Relaxed),
            connections_total: self.connections_total.load(Ordering::Relaxed),
            in_flight,
            queued,
            admitted_total: self.admitted_total.load(Ordering::Relaxed),
            rejected_total: self.rejected_total.load(Ordering::Relaxed),
            bytes_streamed: self.bytes_streamed.load(Ordering::Relaxed),
            rows_streamed: self.rows_streamed.load(Ordering::Relaxed),
            cache: segment_cache().stats(),
        }
    }

    /// Bumps a counter by `n`.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Decrements a gauge by one.
    pub fn dec(counter: &AtomicU64) {
        counter.fetch_sub(1, Ordering::Relaxed);
    }
}
