//! Server-wide counters, updated lock-free by connection threads and
//! snapshotted into a [`MetricsReply`] on demand.

use crate::proto::{DurabilityReply, MetricsReply};
use cods_storage::{segment_cache, CommitLog};
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic (and two gauge) counters shared by every connection thread.
/// All updates are `Relaxed`: the metrics command reads a statistically
/// consistent snapshot, not a linearized one.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Connections currently open (gauge).
    pub connections_open: AtomicU64,
    /// Connections accepted since start.
    pub connections_total: AtomicU64,
    /// Data-plane requests admitted since start.
    pub admitted_total: AtomicU64,
    /// Data-plane requests rejected with `Overloaded` since start.
    pub rejected_total: AtomicU64,
    /// Payload bytes streamed to clients since start.
    pub bytes_streamed: AtomicU64,
    /// Result rows streamed to clients since start.
    pub rows_streamed: AtomicU64,
    /// Connections evicted for idling past the server's deadline.
    pub idle_evicted: AtomicU64,
}

impl ServerMetrics {
    /// Builds the wire reply, folding in the admission gate's live gauges,
    /// the process-wide segment buffer cache counters, and — when the
    /// server runs durably — the commit log's group-commit counters.
    pub fn snapshot(&self, in_flight: u64, queued: u64, log: Option<&CommitLog>) -> MetricsReply {
        let durability = match log {
            Some(log) => {
                let s = log.stats();
                DurabilityReply {
                    enabled: 1,
                    commits: s.commits,
                    fsyncs: s.fsyncs,
                    max_batch: s.max_batch,
                    fsync_micros: s.fsync_micros,
                    log_pending: s.pending_records,
                    log_bytes: s.log_bytes,
                }
            }
            None => DurabilityReply::default(),
        };
        MetricsReply {
            connections_open: self.connections_open.load(Ordering::Relaxed),
            connections_total: self.connections_total.load(Ordering::Relaxed),
            in_flight,
            queued,
            admitted_total: self.admitted_total.load(Ordering::Relaxed),
            rejected_total: self.rejected_total.load(Ordering::Relaxed),
            bytes_streamed: self.bytes_streamed.load(Ordering::Relaxed),
            rows_streamed: self.rows_streamed.load(Ordering::Relaxed),
            idle_evicted: self.idle_evicted.load(Ordering::Relaxed),
            cache: segment_cache().stats(),
            durability,
        }
    }

    /// Bumps a counter by `n`.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Decrements a gauge by one.
    pub fn dec(counter: &AtomicU64) {
        counter.fetch_sub(1, Ordering::Relaxed);
    }
}
