//! Admission control: a semaphore-bounded execution pool with a bounded
//! wait queue and **typed rejection** past the queue cap.
//!
//! Every data-plane request must acquire a [`Permit`] before touching
//! table data. At most `max_in_flight` permits exist; up to `max_queued`
//! further requests block waiting for one; anything beyond that is
//! rejected immediately with the gate's current occupancy, which the
//! server turns into a [`crate::proto::Reply::Overloaded`] frame. The
//! client keeps its connection — overload is a response, not a hang-up.
//!
//! Built on `std::sync::{Mutex, Condvar}` (the in-tree `parking_lot` shim
//! carries no condvar). Permits release on [`Drop`], so an executing
//! request that panics or errors still frees its slot.

use std::sync::{Arc, Condvar, Mutex};

/// Occupancy counters guarded by the gate's mutex.
#[derive(Debug, Default)]
struct GateState {
    in_flight: u64,
    queued: u64,
    closed: bool,
}

/// The admission gate. Cheap to clone via [`Arc`]; one per server.
#[derive(Debug)]
pub struct Gate {
    state: Mutex<GateState>,
    freed: Condvar,
    max_in_flight: u64,
    max_queued: u64,
}

/// Why a request was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejected {
    /// Execution slots and the wait queue are both full. Carries the
    /// occupancy observed at rejection time.
    Overloaded {
        /// Requests executing at rejection time.
        in_flight: u64,
        /// Requests queued at rejection time.
        queued: u64,
    },
    /// The server is shutting down.
    Closed,
}

/// An execution slot. Dropping it frees the slot and wakes one queued
/// waiter.
#[derive(Debug)]
pub struct Permit {
    gate: Arc<Gate>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        let mut s = self.gate.state.lock().unwrap();
        s.in_flight -= 1;
        drop(s);
        self.gate.freed.notify_one();
    }
}

impl Gate {
    /// Creates a gate admitting `max_in_flight` concurrent executions with
    /// at most `max_queued` waiters. `max_in_flight` is clamped to ≥ 1 —
    /// a gate that can never admit would deadlock every client.
    pub fn new(max_in_flight: u64, max_queued: u64) -> Arc<Gate> {
        Arc::new(Gate {
            state: Mutex::new(GateState::default()),
            freed: Condvar::new(),
            max_in_flight: max_in_flight.max(1),
            max_queued,
        })
    }

    /// Acquires an execution slot, waiting in the bounded queue if
    /// necessary. Returns [`Rejected::Overloaded`] without blocking when
    /// the queue is full, [`Rejected::Closed`] once the gate shuts.
    pub fn admit(self: &Arc<Self>) -> Result<Permit, Rejected> {
        let mut s = self.state.lock().unwrap();
        if s.closed {
            return Err(Rejected::Closed);
        }
        if s.in_flight < self.max_in_flight {
            s.in_flight += 1;
            return Ok(Permit {
                gate: Arc::clone(self),
            });
        }
        if s.queued >= self.max_queued {
            return Err(Rejected::Overloaded {
                in_flight: s.in_flight,
                queued: s.queued,
            });
        }
        s.queued += 1;
        while s.in_flight >= self.max_in_flight && !s.closed {
            s = self.freed.wait(s).unwrap();
        }
        s.queued -= 1;
        if s.closed {
            // Pass the wake-up on so every other waiter drains too.
            drop(s);
            self.freed.notify_one();
            return Err(Rejected::Closed);
        }
        s.in_flight += 1;
        Ok(Permit {
            gate: Arc::clone(self),
        })
    }

    /// Current `(in_flight, queued)` occupancy.
    pub fn occupancy(&self) -> (u64, u64) {
        let s = self.state.lock().unwrap();
        (s.in_flight, s.queued)
    }

    /// Shuts the gate: queued waiters return [`Rejected::Closed`], new
    /// admissions are refused. Already-issued permits stay valid until
    /// dropped.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.freed.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn admits_up_to_capacity_then_rejects_past_queue() {
        let gate = Gate::new(2, 0);
        let a = gate.admit().unwrap();
        let _b = gate.admit().unwrap();
        match gate.admit() {
            Err(Rejected::Overloaded { in_flight, queued }) => {
                assert_eq!((in_flight, queued), (2, 0));
            }
            other => panic!("expected overload, got {other:?}"),
        }
        drop(a);
        let _c = gate.admit().unwrap();
    }

    #[test]
    fn queued_waiter_gets_the_freed_slot() {
        let gate = Gate::new(1, 1);
        let held = gate.admit().unwrap();
        let (tx, rx) = mpsc::channel();
        let waiter = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                let p = gate.admit();
                tx.send(()).unwrap();
                p.map(|_| ())
            })
        };
        // The waiter parks in the queue rather than being rejected.
        assert!(rx.recv_timeout(Duration::from_millis(50)).is_err());
        assert_eq!(gate.occupancy(), (1, 1));
        // Queue full now: a third caller bounces with both gauges visible.
        assert_eq!(
            gate.admit().map(|_| ()),
            Err(Rejected::Overloaded {
                in_flight: 1,
                queued: 1
            })
        );
        drop(held);
        rx.recv_timeout(Duration::from_secs(5)).unwrap();
        waiter.join().unwrap().unwrap();
    }

    #[test]
    fn close_drains_every_waiter() {
        let gate = Gate::new(1, 8);
        let held = gate.admit().unwrap();
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let gate = Arc::clone(&gate);
                std::thread::spawn(move || gate.admit().map(|_| ()))
            })
            .collect();
        while gate.occupancy().1 < 4 {
            std::thread::yield_now();
        }
        gate.close();
        for w in waiters {
            assert_eq!(w.join().unwrap(), Err(Rejected::Closed));
        }
        drop(held);
        assert_eq!(gate.admit().map(|_| ()), Err(Rejected::Closed));
    }

    #[test]
    fn permit_drop_is_panic_safe() {
        let gate = Gate::new(1, 0);
        let g2 = Arc::clone(&gate);
        let _ = std::thread::spawn(move || {
            let _p = g2.admit().unwrap();
            panic!("request blew up");
        })
        .join();
        // The panicking thread's permit must have been returned.
        assert_eq!(gate.occupancy(), (0, 0));
        let _p = gate.admit().unwrap();
    }
}
