//! The wire framing: length-prefixed, FNV-1a-checksummed frames over any
//! byte stream, mirroring the storage WAL's journal-frame idiom
//! (`cods_storage::wal`) — the same defensive posture, applied to a
//! network peer instead of a crashed process.
//!
//! ```text
//! connection preamble (server → client, once):
//!   magic   u32 LE   0xC0D5_7C9A
//!   version u16 LE   wire-protocol version (1)
//!
//! frame (either direction):
//!   kind    u8       message discriminant (see `proto`)
//!   len     u32 LE   payload length in bytes
//!   payload [u8; len]
//!   check   u64 LE   FNV-1a 64 over kind ‖ len ‖ payload
//! ```
//!
//! A reader treats any violation as fatal for the connection and tells the
//! caller *which* violation:
//!
//! * [`FrameError::Eof`] — clean end of stream *between* frames (the peer
//!   hung up politely);
//! * [`FrameError::Torn`] — end of stream *inside* a frame (crashed or
//!   truncated peer — the WAL's torn-frame case);
//! * [`FrameError::Corrupt`] — checksum mismatch (bit rot, desync, or a
//!   non-protocol peer);
//! * [`FrameError::TooLarge`] — declared length above the negotiated cap,
//!   rejected *before* allocating.

use std::io::{self, Read, Write};

/// Connection preamble magic (`C0DS-7C9A`, "serve").
pub const SERVE_MAGIC: u32 = 0xC0D5_7C9A;
/// Wire-protocol version carried in the preamble.
pub const PROTO_VERSION: u16 = 1;
/// Default cap on a single frame's payload, generous enough for a
/// segment-sized row batch yet small enough to bound a malicious peer.
pub const DEFAULT_MAX_FRAME_BYTES: u32 = 32 * 1024 * 1024;

/// Errors surfaced by [`read_frame`] / [`write_frame`].
#[derive(Debug)]
pub enum FrameError {
    /// Clean end of stream between frames.
    Eof,
    /// End of stream in the middle of a frame (torn write).
    Torn,
    /// Checksum mismatch: the frame arrived but its bytes are wrong.
    Corrupt,
    /// Declared payload length exceeds the configured cap.
    TooLarge {
        /// Length the frame header declared.
        declared: u32,
        /// The enforced cap.
        cap: u32,
    },
    /// Underlying transport error.
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Eof => write!(f, "end of stream"),
            FrameError::Torn => write!(f, "torn frame: stream ended mid-frame"),
            FrameError::Corrupt => write!(f, "corrupt frame: checksum mismatch"),
            FrameError::TooLarge { declared, cap } => {
                write!(f, "frame of {declared} bytes exceeds the {cap}-byte cap")
            }
            FrameError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Torn
        } else {
            FrameError::Io(e)
        }
    }
}

/// FNV-1a 64 over a byte slice — the same hash the WAL frames use.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn checksum(kind: u8, payload: &[u8]) -> u64 {
    let mut head = [0u8; 5];
    head[0] = kind;
    head[1..5].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    let mut h = fnv1a64(&head);
    for &b in payload {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Writes the connection preamble (server side, once per connection).
pub fn write_preamble(w: &mut impl Write) -> Result<(), FrameError> {
    w.write_all(&SERVE_MAGIC.to_le_bytes())?;
    w.write_all(&PROTO_VERSION.to_le_bytes())?;
    Ok(())
}

/// Reads and validates the connection preamble (client side). A wrong
/// magic or version is reported as [`FrameError::Corrupt`] — the peer is
/// not speaking this protocol.
pub fn read_preamble(r: &mut impl Read) -> Result<u16, FrameError> {
    let mut buf = [0u8; 6];
    // No bytes at all is a hang-up; a partial preamble is a torn stream.
    read_exact_or(r, &mut buf[..1], FrameError::Eof)?;
    read_exact_or(r, &mut buf[1..], FrameError::Torn)?;
    let magic = u32::from_le_bytes(buf[0..4].try_into().unwrap());
    let version = u16::from_le_bytes(buf[4..6].try_into().unwrap());
    if magic != SERVE_MAGIC || version != PROTO_VERSION {
        return Err(FrameError::Corrupt);
    }
    Ok(version)
}

/// Writes one `kind` frame carrying `payload`, checksummed. The frame is
/// assembled into one buffer first so the transport sees a single write —
/// interleaving-safe if the caller serializes writers.
pub fn write_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> Result<u64, FrameError> {
    let mut buf = Vec::with_capacity(5 + payload.len() + 8);
    buf.push(kind);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    buf.extend_from_slice(&checksum(kind, payload).to_le_bytes());
    w.write_all(&buf)?;
    Ok(buf.len() as u64)
}

/// Reads one frame, enforcing `max_payload` before allocating and the
/// checksum after. Returns `(kind, payload)`.
pub fn read_frame(r: &mut impl Read, max_payload: u32) -> Result<(u8, Vec<u8>), FrameError> {
    let mut head = [0u8; 5];
    // A clean EOF before the first header byte is a polite hang-up; EOF
    // anywhere later is a torn frame.
    read_exact_or(r, &mut head[..1], FrameError::Eof)?;
    read_exact_or(r, &mut head[1..], FrameError::Torn)?;
    let kind = head[0];
    let len = u32::from_le_bytes(head[1..5].try_into().unwrap());
    if len > max_payload {
        return Err(FrameError::TooLarge {
            declared: len,
            cap: max_payload,
        });
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_or(r, &mut payload, FrameError::Torn)?;
    let mut check = [0u8; 8];
    read_exact_or(r, &mut check, FrameError::Torn)?;
    if u64::from_le_bytes(check) != checksum(kind, &payload) {
        return Err(FrameError::Corrupt);
    }
    Ok((kind, payload))
}

/// `read_exact` that maps an immediate EOF to `on_eof` instead of a bare
/// io error, so callers can tell "peer left" from "peer died mid-frame".
fn read_exact_or(r: &mut impl Read, buf: &mut [u8], on_eof: FrameError) -> Result<(), FrameError> {
    match r.read_exact(buf) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Err(on_eof),
        Err(e) => Err(FrameError::Io(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn round_trip(kind: u8, payload: &[u8]) -> Vec<u8> {
        let mut buf = Vec::new();
        write_frame(&mut buf, kind, payload).unwrap();
        buf
    }

    #[test]
    fn frames_round_trip() {
        for payload in [&b""[..], b"x", &[0u8; 1000][..]] {
            let buf = round_trip(7, payload);
            let (kind, got) = read_frame(&mut Cursor::new(&buf), 1 << 20).unwrap();
            assert_eq!(kind, 7);
            assert_eq!(got, payload);
        }
    }

    #[test]
    fn preamble_round_trips_and_rejects_garbage() {
        let mut buf = Vec::new();
        write_preamble(&mut buf).unwrap();
        assert_eq!(
            read_preamble(&mut Cursor::new(&buf)).unwrap(),
            PROTO_VERSION
        );
        let mut bad = buf.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            read_preamble(&mut Cursor::new(&bad)),
            Err(FrameError::Corrupt)
        ));
        assert!(matches!(
            read_preamble(&mut Cursor::new(&buf[..3])),
            Err(FrameError::Torn)
        ));
    }

    #[test]
    fn truncation_is_torn_at_every_boundary() {
        // Mirrors the WAL torn-frame sweep: cutting the stream at any
        // byte inside the frame must read as Torn, never as Corrupt or a
        // phantom frame.
        let buf = round_trip(3, b"hello frame");
        for cut in 1..buf.len() {
            let err = read_frame(&mut Cursor::new(&buf[..cut]), 1 << 20).unwrap_err();
            assert!(matches!(err, FrameError::Torn), "cut at {cut}: {err:?}");
        }
        assert!(matches!(
            read_frame(&mut Cursor::new(&[][..]), 1 << 20),
            Err(FrameError::Eof)
        ));
    }

    #[test]
    fn corruption_is_detected_at_every_byte() {
        let buf = round_trip(3, b"hello frame");
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x40;
            match read_frame(&mut Cursor::new(&bad), 1 << 20) {
                // Flips in the length field may declare an over-cap or
                // torn-looking frame; anything that parses must fail the
                // checksum. Silent acceptance is the only wrong answer.
                Err(FrameError::Corrupt | FrameError::Torn | FrameError::TooLarge { .. }) => {}
                other => panic!("byte {i}: corruption not caught: {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_frames_are_rejected_before_allocation() {
        let buf = round_trip(1, &vec![9u8; 4096]);
        let err = read_frame(&mut Cursor::new(&buf), 100).unwrap_err();
        assert!(matches!(
            err,
            FrameError::TooLarge {
                declared: 4096,
                cap: 100
            }
        ));
    }

    #[test]
    fn back_to_back_frames_then_clean_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, b"a").unwrap();
        write_frame(&mut buf, 2, b"bb").unwrap();
        let mut cur = Cursor::new(&buf);
        assert_eq!(read_frame(&mut cur, 1 << 20).unwrap(), (1, b"a".to_vec()));
        assert_eq!(read_frame(&mut cur, 1 << 20).unwrap(), (2, b"bb".to_vec()));
        assert!(matches!(
            read_frame(&mut cur, 1 << 20),
            Err(FrameError::Eof)
        ));
    }
}
