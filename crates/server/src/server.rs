//! The server: TCP accept loop, thread-per-connection request dispatch,
//! snapshot sessions, admission control and streaming execution.

use crate::admission::{Gate, Rejected};
use crate::frame::{read_frame, write_frame, write_preamble, FrameError, DEFAULT_MAX_FRAME_BYTES};
use crate::metrics::ServerMetrics;
use crate::proto::{
    decode_command, encode_reply, error_code, Command, Reply, StatsReply, TOTAL_UNKNOWN,
};
use crate::session::Session;
use cods::{Cods, EvolutionError};
use cods_query::{
    aggregate_table_masked, join_stream, plan_join, predicate_mask, AggOp, Predicate, ScanStream,
};
use cods_storage::{
    segment_cache, CommitLog, RetryPolicy, StorageError, Table, TableStats, ValueType,
};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Data-plane requests executing concurrently (execution slots).
    pub max_in_flight: u64,
    /// Data-plane requests allowed to wait for a slot; one more is
    /// rejected with a typed `Overloaded` reply.
    pub max_queued: u64,
    /// Per-frame payload cap enforced on reads.
    pub max_frame_bytes: u32,
    /// Conflict-retry policy for `Script` commands.
    pub retry: RetryPolicy,
    /// Evict a connection whose socket stays silent this long — a hung or
    /// vanished client releases its thread (and the socket-level read
    /// deadline also unwedges reads stuck mid-frame). `None` waits
    /// forever.
    pub idle_timeout: Option<Duration>,
    /// Socket write deadline: a client that stops draining its socket
    /// errors the connection instead of wedging it. `None` blocks forever.
    pub write_timeout: Option<Duration>,
    /// The catalog's commit log when serving durably: `Script` replies are
    /// then acknowledged only after the group fsync (the commit path waits
    /// on the log), and metrics expose the fsync counters. `None` serves
    /// memory-only.
    pub commit_log: Option<CommitLog>,
    /// Test knob: hold each admitted data-plane request for this long
    /// before executing, making admission states observable
    /// deterministically. `None` in production.
    pub debug_hold: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_in_flight: 4,
            max_queued: 16,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            retry: RetryPolicy::default(),
            idle_timeout: None,
            write_timeout: None,
            commit_log: None,
            debug_hold: None,
        }
    }
}

/// State shared by the accept loop and every connection thread.
struct Shared {
    cods: Arc<Cods>,
    config: ServerConfig,
    gate: Arc<Gate>,
    metrics: ServerMetrics,
    /// Clones of live connection streams, so shutdown can unblock reads.
    conns: Mutex<Vec<TcpStream>>,
    stopping: AtomicBool,
}

/// A running server. Dropping the handle shuts the server down.
pub struct ServerHandle {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

/// The serving entry point.
pub struct Server;

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections against `cods`. Returns immediately; the
    /// accept loop and every connection run on their own threads.
    pub fn bind(
        addr: impl ToSocketAddrs,
        cods: Arc<Cods>,
        config: ServerConfig,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            gate: Gate::new(config.max_in_flight, config.max_queued),
            cods,
            config,
            metrics: ServerMetrics::default(),
            conns: Mutex::new(Vec::new()),
            stopping: AtomicBool::new(false),
        });
        let conn_threads = Arc::new(Mutex::new(Vec::new()));
        let accept_thread = {
            let shared = Arc::clone(&shared);
            let conn_threads = Arc::clone(&conn_threads);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shared.stopping.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let _ = stream.set_read_timeout(shared.config.idle_timeout);
                    let _ = stream.set_write_timeout(shared.config.write_timeout);
                    ServerMetrics::add(&shared.metrics.connections_total, 1);
                    ServerMetrics::add(&shared.metrics.connections_open, 1);
                    if let Ok(clone) = stream.try_clone() {
                        shared.conns.lock().unwrap().push(clone);
                    }
                    let shared = Arc::clone(&shared);
                    let handle = std::thread::spawn(move || {
                        let _ = Connection::run(&shared, stream);
                        ServerMetrics::dec(&shared.metrics.connections_open);
                    });
                    conn_threads.lock().unwrap().push(handle);
                }
            })
        };
        Ok(ServerHandle {
            local_addr,
            shared,
            accept_thread: Some(accept_thread),
            conn_threads,
        })
    }
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, drains queued admissions, unblocks every
    /// connection read, and joins all serving threads. Idempotent.
    pub fn shutdown(&mut self) {
        if self.shared.stopping.swap(true, Ordering::AcqRel) {
            return;
        }
        self.shared.gate.close();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Unblock connection threads parked in read_frame.
        for conn in self.shared.conns.lock().unwrap().drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
        let threads: Vec<_> = self.conn_threads.lock().unwrap().drain(..).collect();
        for t in threads {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One connection's serving loop.
struct Connection<'a> {
    shared: &'a Shared,
    session: Session,
    writer: BufWriter<TcpStream>,
}

impl<'a> Connection<'a> {
    fn run(shared: &'a Shared, stream: TcpStream) -> Result<(), FrameError> {
        let mut reader = BufReader::new(stream.try_clone().map_err(FrameError::Io)?);
        let mut conn = Connection {
            shared,
            session: Session::open(&shared.cods),
            writer: BufWriter::new(stream),
        };
        write_preamble(&mut conn.writer)?;
        let hello = Reply::Hello {
            catalog_version: conn.session.version(),
        };
        conn.reply(&hello)?;
        loop {
            let (kind, payload) = match read_frame(&mut reader, shared.config.max_frame_bytes) {
                Ok(f) => f,
                // Polite hang-up: the session ends.
                Err(FrameError::Eof) => return Ok(()),
                // Socket deadline fired: the client idled (or hung
                // mid-frame) past the configured timeout. Evict it — tell
                // it why if its socket still listens, then close.
                Err(FrameError::Io(e))
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    ServerMetrics::add(&shared.metrics.idle_evicted, 1);
                    let _ = conn.reply(&Reply::Error {
                        code: error_code::TIMEOUT,
                        message: "connection idle past deadline, closing".into(),
                    });
                    return Ok(());
                }
                // A torn or unreadable stream cannot carry an error reply.
                Err(e @ (FrameError::Torn | FrameError::Io(_))) => return Err(e),
                // The stream is alive but desynchronized or hostile: say
                // why, then drop the connection.
                Err(e @ (FrameError::Corrupt | FrameError::TooLarge { .. })) => {
                    let _ = conn.reply(&Reply::Error {
                        code: error_code::BAD_REQUEST,
                        message: e.to_string(),
                    });
                    return Err(e);
                }
            };
            let cmd = match decode_command(kind, &payload) {
                Ok(cmd) => cmd,
                Err(e) => {
                    let _ = conn.reply(&Reply::Error {
                        code: error_code::BAD_REQUEST,
                        message: e.to_string(),
                    });
                    return Err(FrameError::Corrupt);
                }
            };
            conn.dispatch(cmd)?;
        }
    }

    /// Encodes, frames, sends and flushes one reply, counting its bytes.
    fn reply(&mut self, reply: &Reply) -> Result<(), FrameError> {
        let bytes = write_frame(&mut self.writer, reply.kind(), &encode_reply(reply))?;
        // A blocking flush per frame is the backpressure mechanism: a slow
        // client stalls only its own connection thread (and the one
        // admission slot it holds), never the server.
        self.writer.flush()?;
        ServerMetrics::add(&self.shared.metrics.bytes_streamed, bytes);
        Ok(())
    }

    fn dispatch(&mut self, cmd: Command) -> Result<(), FrameError> {
        if !cmd.is_data_plane() {
            let reply = match cmd {
                Command::Ping => Reply::Pong,
                Command::Refresh => Reply::Refreshed {
                    catalog_version: self.session.refresh(&self.shared.cods),
                },
                Command::Metrics => {
                    let (in_flight, queued) = self.shared.gate.occupancy();
                    Reply::Metrics(self.shared.metrics.snapshot(
                        in_flight,
                        queued,
                        self.shared.config.commit_log.as_ref(),
                    ))
                }
                _ => unreachable!("control-plane commands only"),
            };
            return self.reply(&reply);
        }
        let permit = match self.shared.gate.admit() {
            Ok(p) => p,
            Err(Rejected::Overloaded { in_flight, queued }) => {
                ServerMetrics::add(&self.shared.metrics.rejected_total, 1);
                return self.reply(&Reply::Overloaded { in_flight, queued });
            }
            Err(Rejected::Closed) => {
                return self.reply(&Reply::Error {
                    code: error_code::INTERNAL,
                    message: "server shutting down".into(),
                });
            }
        };
        ServerMetrics::add(&self.shared.metrics.admitted_total, 1);
        if let Some(hold) = self.shared.config.debug_hold {
            std::thread::sleep(hold);
        }
        let result = self.execute(cmd);
        drop(permit);
        result
    }

    fn execute(&mut self, cmd: Command) -> Result<(), FrameError> {
        match cmd {
            Command::Stats { table } => match self.session.table(&table) {
                Ok(t) => {
                    let s = TableStats::of(&t);
                    let reply = Reply::Stats(StatsReply {
                        rows: s.rows,
                        arity: s.arity as u64,
                        total_bytes: s.total_bytes as u64,
                        resident_segments: s.resident_segments as u64,
                        on_disk_segments: s.on_disk_segments as u64,
                        catalog_version: self.session.version(),
                    });
                    self.reply(&reply)
                }
                Err(e) => self.storage_error(&e),
            },
            Command::Script { text } => {
                match self
                    .shared
                    .cods
                    .run_script_with_retry(&text, &self.shared.config.retry)
                {
                    Ok(report) => {
                        // Read-your-writes: the session moves to (at
                        // least) the version its own script produced.
                        // With a commit log attached this reply is the
                        // durability ack: the commit path already waited
                        // for the group fsync covering this script.
                        let version = self.session.refresh(&self.shared.cods);
                        self.reply(&Reply::Ok {
                            message: format!(
                                "{} operator(s) committed{}; catalog v{version}",
                                report.records.len(),
                                if report.log.durable { " durably" } else { "" }
                            ),
                        })
                    }
                    Err(e) => {
                        let code = match &e {
                            EvolutionError::Storage(StorageError::Conflict(_)) => {
                                error_code::CONFLICT
                            }
                            EvolutionError::Storage(StorageError::UnknownTable(_))
                            | EvolutionError::Storage(StorageError::UnknownColumn(_)) => {
                                error_code::NOT_FOUND
                            }
                            // A commit the log could not fsync never
                            // entered the catalog, but the server can no
                            // longer guarantee durability: that is an
                            // operator problem, not a script problem.
                            EvolutionError::Storage(StorageError::Durability(_)) => {
                                error_code::INTERNAL
                            }
                            _ => error_code::EVOLUTION,
                        };
                        self.reply(&Reply::Error {
                            code,
                            message: e.to_string(),
                        })
                    }
                }
            }
            Command::Scan {
                table,
                predicate,
                projection,
            } => {
                let t = match self.session.table(&table) {
                    Ok(t) => t,
                    Err(e) => return self.storage_error(&e),
                };
                let stream = match ScanStream::new(t, &predicate, projection.as_deref()) {
                    Ok(s) => s,
                    Err(e) => return self.storage_error(&e),
                };
                self.stream_scan(stream)
            }
            Command::Mask { table, predicate } => {
                let t = match self.session.table(&table) {
                    Ok(t) => t,
                    Err(e) => return self.storage_error(&e),
                };
                match predicate_mask(&t, &predicate) {
                    Ok(mask) => self.reply(&Reply::MaskSummary {
                        rows: t.rows(),
                        selected: mask.count_ones(),
                        catalog_version: self.session.version(),
                    }),
                    Err(e) => self.storage_error(&e),
                }
            }
            Command::Agg {
                table,
                predicate,
                group_by,
                aggs,
            } => {
                let t = match self.session.table(&table) {
                    Ok(t) => t,
                    Err(e) => return self.storage_error(&e),
                };
                match run_agg(&t, &predicate, &group_by, &aggs) {
                    Ok((columns, rows)) => {
                        let total = rows.len() as u64;
                        self.reply(&Reply::RowHeader {
                            columns,
                            total_rows: total,
                        })?;
                        if total > 0 {
                            ServerMetrics::add(&self.shared.metrics.rows_streamed, total);
                            self.reply(&Reply::Rows { rows })?;
                        }
                        self.reply(&Reply::Done {
                            batches: u64::from(total > 0),
                            rows: total,
                        })
                    }
                    Err(e) => self.storage_error(&e),
                }
            }
            Command::GroupBy {
                table,
                predicate,
                group_by,
                aggs,
            } => {
                let t = match self.session.table(&table) {
                    Ok(t) => t,
                    Err(e) => return self.storage_error(&e),
                };
                match run_agg(&t, &predicate, &group_by, &aggs) {
                    // Same kernel as Agg, chunked reply stream: bounded
                    // frames however many groups come back.
                    Ok((columns, rows)) => {
                        let total = rows.len() as u64;
                        self.reply(&Reply::RowHeader {
                            columns,
                            total_rows: total,
                        })?;
                        let mut batches = 0u64;
                        for chunk in rows.chunks(STREAM_BATCH_ROWS) {
                            batches += 1;
                            ServerMetrics::add(
                                &self.shared.metrics.rows_streamed,
                                chunk.len() as u64,
                            );
                            self.reply(&Reply::Rows {
                                rows: chunk.to_vec(),
                            })?;
                        }
                        self.reply(&Reply::Done {
                            batches,
                            rows: total,
                        })
                    }
                    Err(e) => self.storage_error(&e),
                }
            }
            Command::Join {
                left,
                right,
                left_keys,
                right_keys,
            } => {
                let l = match self.session.table(&left) {
                    Ok(t) => t,
                    Err(e) => return self.storage_error(&e),
                };
                let r = match self.session.table(&right) {
                    Ok(t) => t,
                    Err(e) => return self.storage_error(&e),
                };
                let resolve = |t: &Table, names: &[String]| -> Result<Vec<usize>, StorageError> {
                    names.iter().map(|n| t.schema().index_of(n)).collect()
                };
                let lk = match resolve(&l, &left_keys) {
                    Ok(v) => v,
                    Err(e) => return self.storage_error(&e),
                };
                let rk = match resolve(&r, &right_keys) {
                    Ok(v) => v,
                    Err(e) => return self.storage_error(&e),
                };
                if lk.len() != rk.len() {
                    return self.reply(&Reply::Error {
                        code: error_code::BAD_REQUEST,
                        message: "join key lists differ in length".into(),
                    });
                }
                // Output schema: left columns ++ right non-key columns.
                let mut columns: Vec<(String, ValueType)> = l
                    .schema()
                    .columns()
                    .iter()
                    .map(|c| (c.name.clone(), c.ty))
                    .collect();
                for (i, c) in r.schema().columns().iter().enumerate() {
                    if !rk.contains(&i) {
                        columns.push((c.name.clone(), c.ty));
                    }
                }
                // The match count is unknown until the probe finishes —
                // stream under the sentinel total; Done carries the truth.
                self.reply(&Reply::RowHeader {
                    columns,
                    total_rows: TOTAL_UNKNOWN,
                })?;
                let plan = plan_join(&l, &r, &lk, &rk, segment_cache().stats().budget);
                let mut stream = join_stream(l, r, &lk, &rk, &plan);
                let mut batches = 0u64;
                let mut rows_sent = 0u64;
                loop {
                    let chunk: Vec<_> = stream.by_ref().take(STREAM_BATCH_ROWS).collect();
                    if chunk.is_empty() {
                        break;
                    }
                    batches += 1;
                    rows_sent += chunk.len() as u64;
                    ServerMetrics::add(&self.shared.metrics.rows_streamed, chunk.len() as u64);
                    self.reply(&Reply::Rows { rows: chunk })?;
                }
                self.reply(&Reply::Done {
                    batches,
                    rows: rows_sent,
                })
            }
            Command::Ping | Command::Refresh | Command::Metrics => {
                unreachable!("data-plane commands only")
            }
        }
    }

    /// Streams one scan: header, one `Rows` frame per non-empty
    /// segment-aligned batch, closer with totals. Peak memory is one
    /// batch, whatever the result size.
    fn stream_scan(&mut self, stream: ScanStream) -> Result<(), FrameError> {
        let t = stream.table();
        let columns: Vec<(String, ValueType)> = stream
            .projection()
            .iter()
            .map(|&ci| {
                let def = &t.schema().columns()[ci];
                (def.name.clone(), def.ty)
            })
            .collect();
        self.reply(&Reply::RowHeader {
            columns,
            total_rows: stream.total_selected(),
        })?;
        let mut batches = 0u64;
        let mut rows_sent = 0u64;
        for batch in stream {
            batches += 1;
            rows_sent += batch.rows.len() as u64;
            ServerMetrics::add(&self.shared.metrics.rows_streamed, batch.rows.len() as u64);
            self.reply(&Reply::Rows { rows: batch.rows })?;
        }
        self.reply(&Reply::Done {
            batches,
            rows: rows_sent,
        })
    }

    /// Maps a storage error onto an error reply, keeping the session.
    fn storage_error(&mut self, e: &StorageError) -> Result<(), FrameError> {
        let code = match e {
            StorageError::UnknownTable(_) | StorageError::UnknownColumn(_) => error_code::NOT_FOUND,
            StorageError::Conflict(_) => error_code::CONFLICT,
            _ => error_code::INTERNAL,
        };
        self.reply(&Reply::Error {
            code,
            message: e.to_string(),
        })
    }
}

/// Rows per `Rows` frame for chunked result streams (GroupBy, Join).
const STREAM_BATCH_ROWS: usize = 4096;

/// Aggregation over the predicate-selected rows: output schema plus
/// result rows (group keys first, aggregates after, both in request
/// order).
#[allow(clippy::type_complexity)]
fn run_agg(
    t: &Table,
    predicate: &Predicate,
    group_by: &[String],
    aggs: &[(AggOp, String)],
) -> Result<(Vec<(String, ValueType)>, Vec<Vec<cods_storage::Value>>), StorageError> {
    let group_idx: Vec<usize> = group_by
        .iter()
        .map(|g| t.schema().index_of(g))
        .collect::<Result<_, _>>()?;
    let agg_specs: Vec<(AggOp, usize, ValueType)> = aggs
        .iter()
        .map(|(op, col)| {
            let idx = t.schema().index_of(col)?;
            Ok((*op, idx, t.schema().columns()[idx].ty))
        })
        .collect::<Result<_, StorageError>>()?;
    let mut columns: Vec<(String, ValueType)> = group_idx
        .iter()
        .map(|&g| {
            let def = &t.schema().columns()[g];
            (def.name.clone(), def.ty)
        })
        .collect();
    for (op, idx, ty) in &agg_specs {
        let name = format!("{:?}({})", op, t.schema().columns()[*idx].name).to_lowercase();
        columns.push((name, op.output_type(*ty)));
    }
    // Mask pushdown: the predicate becomes a WAH mask and the columnar
    // kernel aggregates under it — the filtered table is never built.
    let rows = match predicate {
        Predicate::True => aggregate_table_masked(t, &group_idx, &agg_specs, None)?,
        p => {
            let mask = predicate_mask(t, p)?;
            aggregate_table_masked(t, &group_idx, &agg_specs, Some(&mask))?
        }
    };
    Ok((columns, rows))
}
