//! Per-connection session state: a pinned copy-on-write catalog snapshot.
//!
//! A session reads exclusively from the [`CatalogSnapshot`] it pinned —
//! `Arc`-shared tables, columns and segments, so pinning copies only the
//! name → table map, never data. Long streaming scans therefore see one
//! consistent catalog version end to end while evolution plans commit
//! concurrently; the live catalog moving on cannot tear a result.
//!
//! The snapshot moves only at three well-defined points:
//!
//! * connection start — pinned at the then-current version;
//! * an explicit `Refresh` command;
//! * after the session's *own* successful `Script` — read-your-writes.

use cods::Cods;
use cods_storage::{CatalogSnapshot, StorageError, Table};
use std::sync::Arc;

/// One connection's pinned view of the catalog.
pub struct Session {
    snapshot: CatalogSnapshot,
}

impl Session {
    /// Opens a session pinned at the platform's current catalog version.
    pub fn open(cods: &Cods) -> Session {
        Session {
            snapshot: cods.catalog().snapshot_view(),
        }
    }

    /// The pinned catalog version.
    pub fn version(&self) -> u64 {
        self.snapshot.version()
    }

    /// Fetches a table from the pinned view. A table created after the
    /// pin is invisible; a table dropped after the pin is still served.
    pub fn table(&self, name: &str) -> Result<Arc<Table>, StorageError> {
        self.snapshot.get(name)
    }

    /// Re-pins at the current version, returning the new one.
    pub fn refresh(&mut self, cods: &Cods) -> u64 {
        self.snapshot = cods.catalog().snapshot_view();
        self.snapshot.version()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cods_storage::{Schema, Value, ValueType};

    fn platform() -> Cods {
        let cods = Cods::new();
        let schema = Schema::build(&[("a", ValueType::Int)], &[]).unwrap();
        let rows = vec![vec![Value::int(1)], vec![Value::int(2)]];
        cods.catalog()
            .create(Table::from_rows("t", schema, &rows).unwrap())
            .unwrap();
        cods
    }

    #[test]
    fn session_is_isolated_until_refreshed() {
        let cods = platform();
        let mut session = Session::open(&cods);
        let v0 = session.version();
        let pinned = session.table("t").unwrap();

        // The live catalog evolves: t is renamed away.
        cods.execute(cods::Smo::RenameTable {
            from: "t".into(),
            to: "t2".into(),
        })
        .unwrap();

        // The session still serves the old name from the old version.
        assert_eq!(session.version(), v0);
        assert!(Arc::ptr_eq(&session.table("t").unwrap(), &pinned));
        assert!(session.table("t2").is_err());

        // Refresh moves to the new world.
        assert!(session.refresh(&cods) > v0);
        assert!(session.table("t").is_err());
        assert_eq!(session.table("t2").unwrap().rows(), 2);
    }
}
