//! The message layer on top of [`crate::frame`]: typed commands and
//! replies with a hand-rolled little-endian codec (the container has no
//! serde). Each message maps to one frame; the frame `kind` byte is the
//! message discriminant, the frame payload is the message body.
//!
//! Command kinds live in `0x01..=0x1F`, reply kinds in `0x81..=0x9F`, so a
//! desynchronized peer is caught by the kind check even when a frame's
//! checksum happens to pass.

use crate::frame::FrameError;
use cods_query::{AggOp, CmpOp, Predicate};
use cods_storage::{CacheStats, OrderedF64, Value, ValueType};

/// Decode failures: the frame was intact but its payload is not a valid
/// message. Always fatal for the connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Payload ended before the message did.
    Truncated,
    /// Unknown discriminant byte at the given description.
    BadTag(&'static str, u8),
    /// A string field was not valid UTF-8.
    Utf8,
    /// Predicate nesting beyond [`MAX_PRED_DEPTH`].
    TooDeep,
    /// Payload had trailing bytes after the message.
    Trailing,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadTag(what, b) => write!(f, "bad {what} tag 0x{b:02x}"),
            WireError::Utf8 => write!(f, "invalid utf-8 in string field"),
            WireError::TooDeep => write!(f, "predicate nested too deeply"),
            WireError::Trailing => write!(f, "trailing bytes after message"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for FrameError {
    fn from(_: WireError) -> Self {
        FrameError::Corrupt
    }
}

/// Maximum predicate nesting the decoder accepts — bounds recursion on
/// hostile input while being far above anything a sane client sends.
pub const MAX_PRED_DEPTH: u32 = 64;

/// `total_rows` sentinel in a [`Reply::RowHeader`] for streams whose size
/// is unknown up front (joins stream matches as they are produced). The
/// closing `Done` frame still carries the exact totals, so integrity
/// checking degrades only from "known in advance" to "known at the end".
pub const TOTAL_UNKNOWN: u64 = u64::MAX;

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Liveness probe. Control plane: never queued or rejected.
    Ping,
    /// Re-pin the session's catalog snapshot to the current version.
    /// Control plane.
    Refresh,
    /// Server-wide counters. Control plane.
    Metrics,
    /// Table statistics at the session's pinned snapshot.
    Stats {
        /// Table name.
        table: String,
    },
    /// Run an SMO script against the live catalog (bounded conflict
    /// retry); on success the session re-pins so it reads its own write.
    Script {
        /// Script text, one operator per line.
        text: String,
    },
    /// Stream selected, projected rows of a table at the pinned snapshot.
    Scan {
        /// Table name.
        table: String,
        /// Row filter.
        predicate: Predicate,
        /// Projected column names in output order; `None` = all columns.
        projection: Option<Vec<String>>,
    },
    /// Count predicate-satisfying rows without streaming them.
    Mask {
        /// Table name.
        table: String,
        /// Row filter.
        predicate: Predicate,
    },
    /// Grouped aggregation over the predicate-selected rows.
    Agg {
        /// Table name.
        table: String,
        /// Row filter applied before grouping.
        predicate: Predicate,
        /// Grouping column names.
        group_by: Vec<String>,
        /// Aggregate expressions as `(op, input column)` pairs.
        aggs: Vec<(AggOp, String)>,
    },
    /// [`Command::Agg`] with a chunked reply stream: the same columnar
    /// kernel, but result groups arrive in bounded `Rows` batches instead
    /// of one frame — large group counts never need one giant frame.
    GroupBy {
        /// Table name.
        table: String,
        /// Row filter applied before grouping (pushed into the kernel as
        /// a WAH mask, never materialized).
        predicate: Predicate,
        /// Grouping column names.
        group_by: Vec<String>,
        /// Aggregate expressions as `(op, input column)` pairs.
        aggs: Vec<(AggOp, String)>,
    },
    /// Partition-wise hash equi-join of two tables at the pinned
    /// snapshot; output = left columns ++ right non-key columns, streamed
    /// with a [`TOTAL_UNKNOWN`] header.
    Join {
        /// Left table name.
        left: String,
        /// Right table name.
        right: String,
        /// Join key column names on the left, paired positionally with
        /// `right_keys`.
        left_keys: Vec<String>,
        /// Join key column names on the right.
        right_keys: Vec<String>,
    },
}

impl Command {
    /// The frame kind byte of this command.
    pub fn kind(&self) -> u8 {
        match self {
            Command::Ping => 0x01,
            Command::Refresh => 0x02,
            Command::Metrics => 0x03,
            Command::Stats { .. } => 0x04,
            Command::Script { .. } => 0x05,
            Command::Scan { .. } => 0x06,
            Command::Mask { .. } => 0x07,
            Command::Agg { .. } => 0x08,
            Command::GroupBy { .. } => 0x09,
            Command::Join { .. } => 0x0A,
        }
    }

    /// `true` for commands that execute work against table data and must
    /// pass admission; `false` for the control plane, which always
    /// answers so operators can observe an overloaded server.
    pub fn is_data_plane(&self) -> bool {
        !matches!(self, Command::Ping | Command::Refresh | Command::Metrics)
    }
}

/// Server-wide counters returned by [`Command::Metrics`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsReply {
    /// Connections currently open.
    pub connections_open: u64,
    /// Connections accepted since start.
    pub connections_total: u64,
    /// Data-plane requests executing right now.
    pub in_flight: u64,
    /// Data-plane requests waiting for an execution slot.
    pub queued: u64,
    /// Data-plane requests admitted since start.
    pub admitted_total: u64,
    /// Data-plane requests rejected with `Overloaded` since start.
    pub rejected_total: u64,
    /// Payload bytes streamed to clients since start.
    pub bytes_streamed: u64,
    /// Result rows streamed to clients since start.
    pub rows_streamed: u64,
    /// Connections evicted for idling past the server's deadline.
    pub idle_evicted: u64,
    /// The segment buffer cache's counters at snapshot time.
    pub cache: CacheStats,
    /// Commit-log durability counters (all zero without a commit log).
    pub durability: DurabilityReply,
}

/// Commit-log counters inside a [`MetricsReply`]. All zero when the
/// server runs memory-only (no `--durable` catalog attached).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurabilityReply {
    /// 1 when a commit log is attached, else 0.
    pub enabled: u64,
    /// Commits acknowledged durable since start.
    pub commits: u64,
    /// Group fsyncs issued — `commits / fsyncs` is the batching factor.
    pub fsyncs: u64,
    /// Largest number of commits covered by one fsync.
    pub max_batch: u64,
    /// Cumulative wall time inside group fsyncs, microseconds.
    pub fsync_micros: u64,
    /// Commit records awaiting a checkpoint.
    pub log_pending: u64,
    /// Bytes of the commit-log file.
    pub log_bytes: u64,
}

/// Table statistics on the wire (a subset of
/// [`cods_storage::TableStats`] that serializes flat).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsReply {
    /// Rows in the table.
    pub rows: u64,
    /// Number of columns.
    pub arity: u64,
    /// Total compressed bytes (payloads + dictionaries).
    pub total_bytes: u64,
    /// Segments currently decoded in memory.
    pub resident_segments: u64,
    /// Segments currently paged out.
    pub on_disk_segments: u64,
    /// Catalog version the session read this from.
    pub catalog_version: u64,
}

/// A server response. Streaming commands answer with a `RowHeader`, any
/// number of `Rows` frames, then `Done`; everything else is one frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// First frame of every connection: protocol and catalog versions.
    Hello {
        /// Catalog version the session pinned at connect time.
        catalog_version: u64,
    },
    /// Answer to [`Command::Ping`].
    Pong,
    /// Answer to [`Command::Refresh`]: the newly pinned version.
    Refreshed {
        /// Catalog version the session is now pinned at.
        catalog_version: u64,
    },
    /// Generic success with a human-readable summary (scripts).
    Ok {
        /// Summary text.
        message: String,
    },
    /// The request failed; the session survives.
    Error {
        /// Machine-readable class, see [`error_code`] constants.
        code: u16,
        /// Human-readable description.
        message: String,
    },
    /// Typed admission rejection: the server is at capacity. The client
    /// may retry later; the connection stays open.
    Overloaded {
        /// Data-plane requests executing when the request was rejected.
        in_flight: u64,
        /// Requests already queued when the request was rejected.
        queued: u64,
    },
    /// Stream opener: output schema and the exact total row count.
    RowHeader {
        /// `(name, type)` per output column.
        columns: Vec<(String, ValueType)>,
        /// Total rows the stream will carry.
        total_rows: u64,
    },
    /// One batch of result rows.
    Rows {
        /// The batch's tuples.
        rows: Vec<Vec<Value>>,
    },
    /// Stream closer with totals for integrity checking.
    Done {
        /// Batches sent (``Rows`` frames).
        batches: u64,
        /// Rows sent across all batches.
        rows: u64,
    },
    /// Answer to [`Command::Mask`].
    MaskSummary {
        /// Rows in the table.
        rows: u64,
        /// Rows satisfying the predicate.
        selected: u64,
        /// Snapshot version the mask was computed at.
        catalog_version: u64,
    },
    /// Answer to [`Command::Metrics`].
    Metrics(MetricsReply),
    /// Answer to [`Command::Stats`].
    Stats(StatsReply),
}

/// Machine-readable [`Reply::Error`] classes.
pub mod error_code {
    /// Malformed or unsupported request.
    pub const BAD_REQUEST: u16 = 1;
    /// Unknown table or column at the pinned snapshot.
    pub const NOT_FOUND: u16 = 2;
    /// Optimistic commit lost every retry attempt.
    pub const CONFLICT: u16 = 3;
    /// Script parse/validation/execution error.
    pub const EVOLUTION: u16 = 4;
    /// Anything else.
    pub const INTERNAL: u16 = 5;
    /// The connection idled past the server's deadline and is being
    /// closed.
    pub const TIMEOUT: u16 = 6;
}

impl Reply {
    /// The frame kind byte of this reply.
    pub fn kind(&self) -> u8 {
        match self {
            Reply::Hello { .. } => 0x81,
            Reply::Pong => 0x82,
            Reply::Refreshed { .. } => 0x83,
            Reply::Ok { .. } => 0x84,
            Reply::Error { .. } => 0x85,
            Reply::Overloaded { .. } => 0x86,
            Reply::RowHeader { .. } => 0x87,
            Reply::Rows { .. } => 0x88,
            Reply::Done { .. } => 0x89,
            Reply::MaskSummary { .. } => 0x8A,
            Reply::Metrics(_) => 0x8B,
            Reply::Stats(_) => 0x8C,
        }
    }
}

// ---------------------------------------------------------------- codec --

/// Little-endian byte writer.
#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn value(&mut self, v: &Value) {
        match v {
            Value::Null => self.u8(0),
            Value::Bool(b) => {
                self.u8(1);
                self.u8(u8::from(*b));
            }
            Value::Int(i) => {
                self.u8(2);
                self.i64(*i);
            }
            // Bit-exact round-trip, NaN payloads included.
            Value::Float(OrderedF64(f)) => {
                self.u8(3);
                self.u64(f.to_bits());
            }
            Value::Str(s) => {
                self.u8(4);
                self.str(s);
            }
        }
    }
    fn value_type(&mut self, t: ValueType) {
        self.u8(t.tag());
    }
    fn pred(&mut self, p: &Predicate) {
        match p {
            Predicate::Compare {
                column,
                op,
                literal,
            } => {
                self.u8(0);
                self.str(column);
                self.u8(match op {
                    CmpOp::Eq => 0,
                    CmpOp::Ne => 1,
                    CmpOp::Lt => 2,
                    CmpOp::Le => 3,
                    CmpOp::Gt => 4,
                    CmpOp::Ge => 5,
                });
                self.value(literal);
            }
            Predicate::And(a, b) => {
                self.u8(1);
                self.pred(a);
                self.pred(b);
            }
            Predicate::Or(a, b) => {
                self.u8(2);
                self.pred(a);
                self.pred(b);
            }
            Predicate::Not(a) => {
                self.u8(3);
                self.pred(a);
            }
            Predicate::True => self.u8(4),
        }
    }
    fn rows(&mut self, rows: &[Vec<Value>]) {
        self.u32(rows.len() as u32);
        for row in rows {
            self.u32(row.len() as u32);
            for v in row {
                self.value(v);
            }
        }
    }
}

/// Little-endian byte reader over a message payload.
struct Dec<'a> {
    buf: &'a [u8],
    at: usize,
}

type DecResult<T> = Result<T, WireError>;

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, at: 0 }
    }
    fn take(&mut self, n: usize) -> DecResult<&'a [u8]> {
        if self.buf.len() - self.at < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }
    fn u8(&mut self) -> DecResult<u8> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> DecResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> DecResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> DecResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> DecResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn str(&mut self) -> DecResult<String> {
        let n = self.u32()? as usize;
        std::str::from_utf8(self.take(n)?)
            .map(str::to_owned)
            .map_err(|_| WireError::Utf8)
    }
    fn value(&mut self) -> DecResult<Value> {
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Bool(self.u8()? != 0),
            2 => Value::Int(self.i64()?),
            3 => Value::Float(OrderedF64(f64::from_bits(self.u64()?))),
            4 => Value::Str(self.str()?.into()),
            b => return Err(WireError::BadTag("value", b)),
        })
    }
    fn value_type(&mut self) -> DecResult<ValueType> {
        let b = self.u8()?;
        ValueType::from_tag(b).ok_or(WireError::BadTag("value type", b))
    }
    fn pred(&mut self, depth: u32) -> DecResult<Predicate> {
        if depth > MAX_PRED_DEPTH {
            return Err(WireError::TooDeep);
        }
        Ok(match self.u8()? {
            0 => Predicate::Compare {
                column: self.str()?,
                op: match self.u8()? {
                    0 => CmpOp::Eq,
                    1 => CmpOp::Ne,
                    2 => CmpOp::Lt,
                    3 => CmpOp::Le,
                    4 => CmpOp::Gt,
                    5 => CmpOp::Ge,
                    b => return Err(WireError::BadTag("cmp op", b)),
                },
                literal: self.value()?,
            },
            1 => Predicate::And(
                Box::new(self.pred(depth + 1)?),
                Box::new(self.pred(depth + 1)?),
            ),
            2 => Predicate::Or(
                Box::new(self.pred(depth + 1)?),
                Box::new(self.pred(depth + 1)?),
            ),
            3 => Predicate::Not(Box::new(self.pred(depth + 1)?)),
            4 => Predicate::True,
            b => return Err(WireError::BadTag("predicate", b)),
        })
    }
    fn rows(&mut self) -> DecResult<Vec<Vec<Value>>> {
        let n = self.u32()? as usize;
        let mut rows = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let arity = self.u32()? as usize;
            let mut row = Vec::with_capacity(arity.min(1 << 12));
            for _ in 0..arity {
                row.push(self.value()?);
            }
            rows.push(row);
        }
        Ok(rows)
    }
    fn finish(self) -> DecResult<()> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Trailing)
        }
    }
}

fn agg_op_tag(op: AggOp) -> u8 {
    match op {
        AggOp::Count => 0,
        AggOp::CountDistinct => 1,
        AggOp::Sum => 2,
        AggOp::Min => 3,
        AggOp::Max => 4,
    }
}

fn agg_op_from(b: u8) -> DecResult<AggOp> {
    Ok(match b {
        0 => AggOp::Count,
        1 => AggOp::CountDistinct,
        2 => AggOp::Sum,
        3 => AggOp::Min,
        4 => AggOp::Max,
        b => return Err(WireError::BadTag("agg op", b)),
    })
}

/// Encodes a command body (the frame kind comes from [`Command::kind`]).
pub fn encode_command(cmd: &Command) -> Vec<u8> {
    let mut e = Enc::default();
    match cmd {
        Command::Ping | Command::Refresh | Command::Metrics => {}
        Command::Stats { table } => e.str(table),
        Command::Script { text } => e.str(text),
        Command::Scan {
            table,
            predicate,
            projection,
        } => {
            e.str(table);
            e.pred(predicate);
            match projection {
                None => e.u8(0),
                Some(cols) => {
                    e.u8(1);
                    e.u32(cols.len() as u32);
                    for c in cols {
                        e.str(c);
                    }
                }
            }
        }
        Command::Mask { table, predicate } => {
            e.str(table);
            e.pred(predicate);
        }
        Command::Agg {
            table,
            predicate,
            group_by,
            aggs,
        }
        | Command::GroupBy {
            table,
            predicate,
            group_by,
            aggs,
        } => {
            e.str(table);
            e.pred(predicate);
            e.u32(group_by.len() as u32);
            for g in group_by {
                e.str(g);
            }
            e.u32(aggs.len() as u32);
            for (op, col) in aggs {
                e.u8(agg_op_tag(*op));
                e.str(col);
            }
        }
        Command::Join {
            left,
            right,
            left_keys,
            right_keys,
        } => {
            e.str(left);
            e.str(right);
            e.u32(left_keys.len() as u32);
            for k in left_keys {
                e.str(k);
            }
            e.u32(right_keys.len() as u32);
            for k in right_keys {
                e.str(k);
            }
        }
    }
    e.buf
}

/// Decodes a command from its frame `(kind, payload)`.
pub fn decode_command(kind: u8, payload: &[u8]) -> DecResult<Command> {
    let mut d = Dec::new(payload);
    let cmd = match kind {
        0x01 => Command::Ping,
        0x02 => Command::Refresh,
        0x03 => Command::Metrics,
        0x04 => Command::Stats { table: d.str()? },
        0x05 => Command::Script { text: d.str()? },
        0x06 => {
            let table = d.str()?;
            let predicate = d.pred(0)?;
            let projection = match d.u8()? {
                0 => None,
                1 => {
                    let n = d.u32()? as usize;
                    let mut cols = Vec::with_capacity(n.min(1 << 12));
                    for _ in 0..n {
                        cols.push(d.str()?);
                    }
                    Some(cols)
                }
                b => return Err(WireError::BadTag("projection", b)),
            };
            Command::Scan {
                table,
                predicate,
                projection,
            }
        }
        0x07 => Command::Mask {
            table: d.str()?,
            predicate: d.pred(0)?,
        },
        0x08 | 0x09 => {
            let table = d.str()?;
            let predicate = d.pred(0)?;
            let n = d.u32()? as usize;
            let mut group_by = Vec::with_capacity(n.min(1 << 12));
            for _ in 0..n {
                group_by.push(d.str()?);
            }
            let n = d.u32()? as usize;
            let mut aggs = Vec::with_capacity(n.min(1 << 12));
            for _ in 0..n {
                let op = agg_op_from(d.u8()?)?;
                aggs.push((op, d.str()?));
            }
            if kind == 0x08 {
                Command::Agg {
                    table,
                    predicate,
                    group_by,
                    aggs,
                }
            } else {
                Command::GroupBy {
                    table,
                    predicate,
                    group_by,
                    aggs,
                }
            }
        }
        0x0A => {
            let left = d.str()?;
            let right = d.str()?;
            let n = d.u32()? as usize;
            let mut left_keys = Vec::with_capacity(n.min(1 << 12));
            for _ in 0..n {
                left_keys.push(d.str()?);
            }
            let n = d.u32()? as usize;
            let mut right_keys = Vec::with_capacity(n.min(1 << 12));
            for _ in 0..n {
                right_keys.push(d.str()?);
            }
            Command::Join {
                left,
                right,
                left_keys,
                right_keys,
            }
        }
        b => return Err(WireError::BadTag("command kind", b)),
    };
    d.finish()?;
    Ok(cmd)
}

/// Encodes a reply body (the frame kind comes from [`Reply::kind`]).
pub fn encode_reply(reply: &Reply) -> Vec<u8> {
    let mut e = Enc::default();
    match reply {
        Reply::Pong => {}
        Reply::Hello { catalog_version } | Reply::Refreshed { catalog_version } => {
            e.u64(*catalog_version)
        }
        Reply::Ok { message } => e.str(message),
        Reply::Error { code, message } => {
            e.u16(*code);
            e.str(message);
        }
        Reply::Overloaded { in_flight, queued } => {
            e.u64(*in_flight);
            e.u64(*queued);
        }
        Reply::RowHeader {
            columns,
            total_rows,
        } => {
            e.u32(columns.len() as u32);
            for (name, ty) in columns {
                e.str(name);
                e.value_type(*ty);
            }
            e.u64(*total_rows);
        }
        Reply::Rows { rows } => e.rows(rows),
        Reply::Done { batches, rows } => {
            e.u64(*batches);
            e.u64(*rows);
        }
        Reply::MaskSummary {
            rows,
            selected,
            catalog_version,
        } => {
            e.u64(*rows);
            e.u64(*selected);
            e.u64(*catalog_version);
        }
        Reply::Metrics(m) => {
            e.u64(m.connections_open);
            e.u64(m.connections_total);
            e.u64(m.in_flight);
            e.u64(m.queued);
            e.u64(m.admitted_total);
            e.u64(m.rejected_total);
            e.u64(m.bytes_streamed);
            e.u64(m.rows_streamed);
            e.u64(m.idle_evicted);
            e.u64(m.cache.budget);
            e.u64(m.cache.resident_bytes);
            e.u64(m.cache.hits);
            e.u64(m.cache.misses);
            e.u64(m.cache.evictions);
            e.u64(m.cache.decoded_bytes);
            e.u64(m.durability.enabled);
            e.u64(m.durability.commits);
            e.u64(m.durability.fsyncs);
            e.u64(m.durability.max_batch);
            e.u64(m.durability.fsync_micros);
            e.u64(m.durability.log_pending);
            e.u64(m.durability.log_bytes);
        }
        Reply::Stats(s) => {
            e.u64(s.rows);
            e.u64(s.arity);
            e.u64(s.total_bytes);
            e.u64(s.resident_segments);
            e.u64(s.on_disk_segments);
            e.u64(s.catalog_version);
        }
    }
    e.buf
}

/// Decodes a reply from its frame `(kind, payload)`.
pub fn decode_reply(kind: u8, payload: &[u8]) -> DecResult<Reply> {
    let mut d = Dec::new(payload);
    let reply = match kind {
        0x81 => Reply::Hello {
            catalog_version: d.u64()?,
        },
        0x82 => Reply::Pong,
        0x83 => Reply::Refreshed {
            catalog_version: d.u64()?,
        },
        0x84 => Reply::Ok { message: d.str()? },
        0x85 => Reply::Error {
            code: d.u16()?,
            message: d.str()?,
        },
        0x86 => Reply::Overloaded {
            in_flight: d.u64()?,
            queued: d.u64()?,
        },
        0x87 => {
            let n = d.u32()? as usize;
            let mut columns = Vec::with_capacity(n.min(1 << 12));
            for _ in 0..n {
                let name = d.str()?;
                columns.push((name, d.value_type()?));
            }
            Reply::RowHeader {
                columns,
                total_rows: d.u64()?,
            }
        }
        0x88 => Reply::Rows { rows: d.rows()? },
        0x89 => Reply::Done {
            batches: d.u64()?,
            rows: d.u64()?,
        },
        0x8A => Reply::MaskSummary {
            rows: d.u64()?,
            selected: d.u64()?,
            catalog_version: d.u64()?,
        },
        0x8B => Reply::Metrics(MetricsReply {
            connections_open: d.u64()?,
            connections_total: d.u64()?,
            in_flight: d.u64()?,
            queued: d.u64()?,
            admitted_total: d.u64()?,
            rejected_total: d.u64()?,
            bytes_streamed: d.u64()?,
            rows_streamed: d.u64()?,
            idle_evicted: d.u64()?,
            cache: CacheStats {
                budget: d.u64()?,
                resident_bytes: d.u64()?,
                hits: d.u64()?,
                misses: d.u64()?,
                evictions: d.u64()?,
                decoded_bytes: d.u64()?,
            },
            durability: DurabilityReply {
                enabled: d.u64()?,
                commits: d.u64()?,
                fsyncs: d.u64()?,
                max_batch: d.u64()?,
                fsync_micros: d.u64()?,
                log_pending: d.u64()?,
                log_bytes: d.u64()?,
            },
        }),
        0x8C => Reply::Stats(StatsReply {
            rows: d.u64()?,
            arity: d.u64()?,
            total_bytes: d.u64()?,
            resident_segments: d.u64()?,
            on_disk_segments: d.u64()?,
            catalog_version: d.u64()?,
        }),
        b => return Err(WireError::BadTag("reply kind", b)),
    };
    d.finish()?;
    Ok(reply)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt_cmd(cmd: Command) {
        let bytes = encode_command(&cmd);
        let back = decode_command(cmd.kind(), &bytes).unwrap();
        assert_eq!(back, cmd);
    }

    fn rt_reply(reply: Reply) {
        let bytes = encode_reply(&reply);
        let back = decode_reply(reply.kind(), &bytes).unwrap();
        assert_eq!(back, reply);
    }

    #[test]
    fn commands_round_trip() {
        rt_cmd(Command::Ping);
        rt_cmd(Command::Refresh);
        rt_cmd(Command::Metrics);
        rt_cmd(Command::Stats { table: "R".into() });
        rt_cmd(Command::Script {
            text: "DROP TABLE x\nCREATE TABLE y (a INT)".into(),
        });
        rt_cmd(Command::Scan {
            table: "emp".into(),
            predicate: Predicate::lt("k", 3i64).and(Predicate::eq("v", "s0").not()),
            projection: Some(vec!["v".into(), "k".into()]),
        });
        rt_cmd(Command::Scan {
            table: "emp".into(),
            predicate: Predicate::True,
            projection: None,
        });
        rt_cmd(Command::Mask {
            table: "t".into(),
            predicate: Predicate::ge("f", 1.5f64),
        });
        rt_cmd(Command::Agg {
            table: "t".into(),
            predicate: Predicate::True,
            group_by: vec!["dept".into()],
            aggs: vec![(AggOp::Count, "dept".into()), (AggOp::Sum, "pay".into())],
        });
        rt_cmd(Command::GroupBy {
            table: "t".into(),
            predicate: Predicate::lt("pay", 100i64),
            group_by: vec!["dept".into(), "site".into()],
            aggs: vec![
                (AggOp::CountDistinct, "emp".into()),
                (AggOp::Max, "pay".into()),
            ],
        });
        rt_cmd(Command::GroupBy {
            table: "t".into(),
            predicate: Predicate::True,
            group_by: vec![],
            aggs: vec![(AggOp::Count, "dept".into())],
        });
        rt_cmd(Command::Join {
            left: "orders".into(),
            right: "people".into(),
            left_keys: vec!["who".into(), "region".into()],
            right_keys: vec!["name".into(), "region".into()],
        });
    }

    #[test]
    fn agg_and_group_by_share_a_body_but_not_a_kind() {
        let agg = Command::Agg {
            table: "t".into(),
            predicate: Predicate::True,
            group_by: vec!["g".into()],
            aggs: vec![(AggOp::Count, "g".into())],
        };
        let gb = Command::GroupBy {
            table: "t".into(),
            predicate: Predicate::True,
            group_by: vec!["g".into()],
            aggs: vec![(AggOp::Count, "g".into())],
        };
        assert_eq!(encode_command(&agg), encode_command(&gb));
        assert_ne!(agg.kind(), gb.kind());
        assert_eq!(decode_command(0x09, &encode_command(&agg)).unwrap(), gb);
    }

    #[test]
    fn unknown_total_header_round_trips() {
        rt_reply(Reply::RowHeader {
            columns: vec![("k".into(), ValueType::Int)],
            total_rows: TOTAL_UNKNOWN,
        });
    }

    #[test]
    fn replies_round_trip() {
        rt_reply(Reply::Hello { catalog_version: 9 });
        rt_reply(Reply::Pong);
        rt_reply(Reply::Refreshed {
            catalog_version: 10,
        });
        rt_reply(Reply::Ok {
            message: "2 ops".into(),
        });
        rt_reply(Reply::Error {
            code: error_code::NOT_FOUND,
            message: "unknown table".into(),
        });
        rt_reply(Reply::Overloaded {
            in_flight: 4,
            queued: 2,
        });
        rt_reply(Reply::RowHeader {
            columns: vec![("k".into(), ValueType::Int), ("v".into(), ValueType::Str)],
            total_rows: 1_000_000,
        });
        rt_reply(Reply::Rows {
            rows: vec![
                vec![Value::int(1), Value::str("a")],
                vec![Value::Null, Value::Bool(true)],
                vec![Value::float(f64::NAN), Value::float(-0.0)],
            ],
        });
        rt_reply(Reply::Done {
            batches: 3,
            rows: 12,
        });
        rt_reply(Reply::MaskSummary {
            rows: 100,
            selected: 42,
            catalog_version: 7,
        });
        rt_reply(Reply::Metrics(MetricsReply {
            connections_open: 1,
            connections_total: 2,
            in_flight: 3,
            queued: 4,
            admitted_total: 5,
            rejected_total: 6,
            bytes_streamed: 7,
            rows_streamed: 8,
            idle_evicted: 14,
            cache: CacheStats {
                budget: u64::MAX,
                resident_bytes: 9,
                hits: 10,
                misses: 11,
                evictions: 12,
                decoded_bytes: 13,
            },
            durability: DurabilityReply {
                enabled: 1,
                commits: 15,
                fsyncs: 16,
                max_batch: 17,
                fsync_micros: 18,
                log_pending: 19,
                log_bytes: 20,
            },
        }));
        rt_reply(Reply::Stats(StatsReply {
            rows: 1,
            arity: 2,
            total_bytes: 3,
            resident_segments: 4,
            on_disk_segments: 5,
            catalog_version: 6,
        }));
    }

    #[test]
    fn nan_payloads_survive_bit_exactly() {
        let weird = f64::from_bits(0x7FF8_0000_0000_1234);
        let bytes = encode_reply(&Reply::Rows {
            rows: vec![vec![Value::Float(OrderedF64(weird))]],
        });
        match decode_reply(0x88, &bytes).unwrap() {
            Reply::Rows { rows } => match rows[0][0] {
                Value::Float(OrderedF64(f)) => assert_eq!(f.to_bits(), weird.to_bits()),
                ref v => panic!("wrong value {v:?}"),
            },
            r => panic!("wrong reply {r:?}"),
        }
    }

    #[test]
    fn decoder_rejects_malformed_payloads() {
        assert_eq!(
            decode_command(0xFF, &[]),
            Err(WireError::BadTag("command kind", 0xFF))
        );
        // Truncated string length prefix.
        assert_eq!(decode_command(0x04, &[1, 0]), Err(WireError::Truncated));
        // Declared string longer than the payload.
        assert_eq!(
            decode_command(0x04, &[200, 0, 0, 0, b'x']),
            Err(WireError::Truncated)
        );
        // Non-UTF-8 table name.
        assert_eq!(
            decode_command(0x04, &[2, 0, 0, 0, 0xFF, 0xFE]),
            Err(WireError::Utf8)
        );
        // Trailing garbage after a complete message.
        let mut bytes = encode_command(&Command::Ping);
        bytes.push(0);
        assert_eq!(decode_command(0x01, &bytes), Err(WireError::Trailing));
    }

    #[test]
    fn predicate_depth_is_bounded() {
        let mut pred = Predicate::True;
        for _ in 0..=MAX_PRED_DEPTH {
            pred = Predicate::Not(Box::new(pred));
        }
        let cmd = Command::Mask {
            table: "t".into(),
            predicate: pred,
        };
        let bytes = encode_command(&cmd);
        assert_eq!(decode_command(0x07, &bytes), Err(WireError::TooDeep));
    }
}
