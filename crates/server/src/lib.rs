//! # cods-server
//!
//! The network serving layer of the CODS reproduction: the SMO-script and
//! query surface (scans, predicate masks, aggregation, statistics) over a
//! length-prefixed, checksummed binary TCP protocol.
//!
//! * [`frame`] — WAL-idiom wire framing: `kind, len, payload, fnv1a64`,
//!   with torn- and corrupt-frame detection ([`FrameError`]).
//! * [`proto`] — typed [`Command`]s and [`Reply`]s plus their codec.
//! * [`session`] — per-connection [`Session`]: a pinned copy-on-write
//!   catalog snapshot, so long streaming scans stay consistent while
//!   evolution plans commit concurrently.
//! * [`admission`] — the [`Gate`]: semaphore-bounded execution slots, a
//!   bounded wait queue, and typed `Overloaded` rejection past the cap.
//! * [`metrics`] — server-wide counters surfaced by the `metrics`
//!   command, buffer-cache statistics included.
//! * [`server`] — [`Server::bind`], thread-per-connection dispatch,
//!   segment-batched result streaming with per-connection backpressure.
//! * [`client`] — the blocking [`Client`] used by the CLI `connect` REPL
//!   and the integration suite.
//!
//! ```no_run
//! use cods_server::{Client, Server, ServerConfig};
//! use std::sync::Arc;
//!
//! let cods = Arc::new(cods::Cods::new());
//! let handle = Server::bind("127.0.0.1:0", cods, ServerConfig::default()).unwrap();
//! let mut client = Client::connect(handle.local_addr()).unwrap();
//! client.ping().unwrap();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod admission;
pub mod client;
pub mod frame;
pub mod metrics;
pub mod proto;
pub mod server;
pub mod session;

pub use admission::{Gate, Permit, Rejected};
pub use client::{Client, ClientError, ScanSummary};
pub use frame::{FrameError, DEFAULT_MAX_FRAME_BYTES, PROTO_VERSION};
pub use metrics::ServerMetrics;
pub use proto::{error_code, Command, DurabilityReply, MetricsReply, Reply, StatsReply, WireError};
pub use server::{Server, ServerConfig, ServerHandle};
pub use session::Session;
