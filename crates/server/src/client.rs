//! A blocking client for the serving protocol — the library behind the
//! CLI's `connect` REPL and the integration tests.

use crate::frame::{read_frame, read_preamble, write_frame, FrameError};
use crate::proto::{
    decode_reply, encode_command, Command, MetricsReply, Reply, StatsReply, TOTAL_UNKNOWN,
};
use cods_query::{AggOp, Predicate};
use cods_storage::{Value, ValueType};
use std::io::{BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Per-batch callback for streamed scans: (column header, batch rows).
type BatchFn<'a> = dyn FnMut(&[(String, ValueType)], Vec<Vec<Value>>) + 'a;

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure.
    Frame(FrameError),
    /// The server answered with an error reply.
    Server {
        /// Machine-readable class (see [`crate::proto::error_code`]).
        code: u16,
        /// Server-side description.
        message: String,
    },
    /// The server rejected the request under admission control. Retry
    /// later; the connection is still usable.
    Overloaded {
        /// Requests executing at rejection time.
        in_flight: u64,
        /// Requests queued at rejection time.
        queued: u64,
    },
    /// The server broke the protocol state machine (e.g. a `Rows` frame
    /// with no preceding header).
    Protocol(String),
    /// The connection died mid-stream: a row stream was cut (server
    /// crash, network drop) after `rows_seen` rows but before its closing
    /// `Done` frame. The rows received so far are a valid prefix, never a
    /// complete result.
    TornStream {
        /// Rows received before the stream was cut.
        rows_seen: u64,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "{e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error {code}: {message}")
            }
            ClientError::Overloaded { in_flight, queued } => write!(
                f,
                "server overloaded ({in_flight} in flight, {queued} queued); retry later"
            ),
            ClientError::Protocol(m) => write!(f, "protocol violation: {m}"),
            ClientError::TornStream { rows_seen } => write!(
                f,
                "stream torn after {rows_seen} row(s): connection lost before Done"
            ),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Frame(FrameError::from(e))
    }
}

/// Result of a streamed scan, after the stream is fully drained.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanSummary {
    /// `(name, type)` per output column.
    pub columns: Vec<(String, ValueType)>,
    /// Total rows the header announced.
    pub total_rows: u64,
    /// Batches received.
    pub batches: u64,
    /// Rows received (must equal `total_rows` — verified against the
    /// closing `Done` frame).
    pub rows: u64,
}

/// A blocking protocol client over one TCP connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    max_frame_bytes: u32,
    catalog_version: u64,
}

impl Client {
    /// Connects, validates the preamble, and reads the `Hello` frame.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        Self::connect_with(addr, crate::frame::DEFAULT_MAX_FRAME_BYTES)
    }

    /// [`Client::connect`] with an explicit frame-size cap.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        max_frame_bytes: u32,
    ) -> Result<Client, ClientError> {
        let writer = TcpStream::connect(addr)?;
        let mut reader = BufReader::new(writer.try_clone()?);
        read_preamble(&mut reader)?;
        let mut client = Client {
            reader,
            writer,
            max_frame_bytes,
            catalog_version: 0,
        };
        match client.read_reply()? {
            Reply::Hello { catalog_version } => {
                client.catalog_version = catalog_version;
                Ok(client)
            }
            r => Err(Client::unexpected("Hello", &r)),
        }
    }

    /// The catalog version the server last reported for this session
    /// (from `Hello`, `Refreshed`, or a successful script).
    pub fn catalog_version(&self) -> u64 {
        self.catalog_version
    }

    fn send(&mut self, cmd: &Command) -> Result<(), ClientError> {
        write_frame(&mut self.writer, cmd.kind(), &encode_command(cmd))?;
        self.writer.flush()?;
        Ok(())
    }

    fn read_reply(&mut self) -> Result<Reply, ClientError> {
        let (kind, payload) = read_frame(&mut self.reader, self.max_frame_bytes)?;
        decode_reply(kind, &payload)
            .map_err(|e| ClientError::Protocol(format!("undecodable reply: {e}")))
    }

    /// Reads a reply, converting `Error` and `Overloaded` frames into
    /// typed client errors.
    fn expect_reply(&mut self) -> Result<Reply, ClientError> {
        match self.read_reply()? {
            Reply::Error { code, message } => Err(ClientError::Server { code, message }),
            Reply::Overloaded { in_flight, queued } => {
                Err(ClientError::Overloaded { in_flight, queued })
            }
            r => Ok(r),
        }
    }

    fn unexpected(wanted: &str, got: &Reply) -> ClientError {
        ClientError::Protocol(format!("expected {wanted}, got {got:?}"))
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.send(&Command::Ping)?;
        match self.expect_reply()? {
            Reply::Pong => Ok(()),
            r => Err(Client::unexpected("Pong", &r)),
        }
    }

    /// Re-pins the server-side session snapshot; returns the new version.
    pub fn refresh(&mut self) -> Result<u64, ClientError> {
        self.send(&Command::Refresh)?;
        match self.expect_reply()? {
            Reply::Refreshed { catalog_version } => {
                self.catalog_version = catalog_version;
                Ok(catalog_version)
            }
            r => Err(Client::unexpected("Refreshed", &r)),
        }
    }

    /// Fetches server-wide counters.
    pub fn metrics(&mut self) -> Result<MetricsReply, ClientError> {
        self.send(&Command::Metrics)?;
        match self.expect_reply()? {
            Reply::Metrics(m) => Ok(m),
            r => Err(Client::unexpected("Metrics", &r)),
        }
    }

    /// Fetches table statistics at the pinned snapshot.
    pub fn stats(&mut self, table: &str) -> Result<StatsReply, ClientError> {
        self.send(&Command::Stats {
            table: table.to_string(),
        })?;
        match self.expect_reply()? {
            Reply::Stats(s) => Ok(s),
            r => Err(Client::unexpected("Stats", &r)),
        }
    }

    /// Runs an SMO script on the server; returns its summary line.
    pub fn script(&mut self, text: &str) -> Result<String, ClientError> {
        self.send(&Command::Script {
            text: text.to_string(),
        })?;
        match self.expect_reply()? {
            Reply::Ok { message } => Ok(message),
            r => Err(Client::unexpected("Ok", &r)),
        }
    }

    /// Counts predicate-satisfying rows; returns `(table rows, selected,
    /// snapshot version)`.
    pub fn mask(
        &mut self,
        table: &str,
        predicate: Predicate,
    ) -> Result<(u64, u64, u64), ClientError> {
        self.send(&Command::Mask {
            table: table.to_string(),
            predicate,
        })?;
        match self.expect_reply()? {
            Reply::MaskSummary {
                rows,
                selected,
                catalog_version,
            } => Ok((rows, selected, catalog_version)),
            r => Err(Client::unexpected("MaskSummary", &r)),
        }
    }

    /// Streams a scan, handing each batch to `on_batch` as it arrives —
    /// constant client memory. Returns the drained stream's summary.
    pub fn scan_with(
        &mut self,
        table: &str,
        predicate: Predicate,
        projection: Option<Vec<String>>,
        mut on_batch: impl FnMut(&[(String, ValueType)], Vec<Vec<Value>>),
    ) -> Result<ScanSummary, ClientError> {
        self.send(&Command::Scan {
            table: table.to_string(),
            predicate,
            projection,
        })?;
        self.drain_stream(&mut on_batch)
    }

    /// [`Client::scan_with`], materialized: collects every batch.
    pub fn scan_collect(
        &mut self,
        table: &str,
        predicate: Predicate,
        projection: Option<Vec<String>>,
    ) -> Result<(ScanSummary, Vec<Vec<Value>>), ClientError> {
        let mut all = Vec::new();
        let summary = self.scan_with(table, predicate, projection, |_, rows| {
            all.extend(rows);
        })?;
        Ok((summary, all))
    }

    /// Grouped aggregation over predicate-selected rows; returns the
    /// output schema and result rows.
    #[allow(clippy::type_complexity)]
    pub fn agg(
        &mut self,
        table: &str,
        predicate: Predicate,
        group_by: Vec<String>,
        aggs: Vec<(AggOp, String)>,
    ) -> Result<(Vec<(String, ValueType)>, Vec<Vec<Value>>), ClientError> {
        self.send(&Command::Agg {
            table: table.to_string(),
            predicate,
            group_by,
            aggs,
        })?;
        let mut all = Vec::new();
        let mut header = Vec::new();
        let summary =
            self.drain_stream(&mut |cols: &[(String, ValueType)], rows: Vec<Vec<Value>>| {
                header = cols.to_vec();
                all.extend(rows);
            })?;
        if all.is_empty() {
            header = summary.columns.clone();
        }
        Ok((header, all))
    }

    /// [`Client::agg`] over the chunked `GroupBy` command: identical
    /// results, but large group counts arrive in bounded batches.
    #[allow(clippy::type_complexity)]
    pub fn group_by(
        &mut self,
        table: &str,
        predicate: Predicate,
        group_by: Vec<String>,
        aggs: Vec<(AggOp, String)>,
    ) -> Result<(Vec<(String, ValueType)>, Vec<Vec<Value>>), ClientError> {
        self.send(&Command::GroupBy {
            table: table.to_string(),
            predicate,
            group_by,
            aggs,
        })?;
        let mut all = Vec::new();
        let summary =
            self.drain_stream(&mut |_: &[(String, ValueType)], rows: Vec<Vec<Value>>| {
                all.extend(rows);
            })?;
        Ok((summary.columns, all))
    }

    /// Streams a partition-wise hash equi-join of two server tables,
    /// handing each batch to `on_batch`. The header's `total_rows` is
    /// [`TOTAL_UNKNOWN`] (match counts are not known up front); the
    /// closing `Done` frame is still verified against the rows received.
    pub fn join_with(
        &mut self,
        left: &str,
        right: &str,
        left_keys: Vec<String>,
        right_keys: Vec<String>,
        mut on_batch: impl FnMut(&[(String, ValueType)], Vec<Vec<Value>>),
    ) -> Result<ScanSummary, ClientError> {
        self.send(&Command::Join {
            left: left.to_string(),
            right: right.to_string(),
            left_keys,
            right_keys,
        })?;
        self.drain_stream(&mut on_batch)
    }

    /// [`Client::join_with`], materialized: collects every batch and
    /// returns the output schema with the rows.
    #[allow(clippy::type_complexity)]
    pub fn join(
        &mut self,
        left: &str,
        right: &str,
        left_keys: Vec<String>,
        right_keys: Vec<String>,
    ) -> Result<(Vec<(String, ValueType)>, Vec<Vec<Value>>), ClientError> {
        let mut all = Vec::new();
        let summary = self.join_with(left, right, left_keys, right_keys, |_, rows| {
            all.extend(rows);
        })?;
        Ok((summary.columns, all))
    }

    /// Drains one RowHeader / Rows* / Done exchange, verifying the totals
    /// the server promised — any mismatch is a protocol violation.
    fn drain_stream(&mut self, on_batch: &mut BatchFn<'_>) -> Result<ScanSummary, ClientError> {
        let (columns, total_rows) = match self.expect_reply()? {
            Reply::RowHeader {
                columns,
                total_rows,
            } => (columns, total_rows),
            r => return Err(Client::unexpected("RowHeader", &r)),
        };
        let mut batches = 0u64;
        let mut rows_seen = 0u64;
        loop {
            // Mid-stream, a dead transport is not a generic frame error:
            // type it as a torn stream carrying how far the prefix got.
            let reply = match self.expect_reply() {
                Err(ClientError::Frame(FrameError::Eof | FrameError::Torn))
                | Err(ClientError::Frame(FrameError::Io(_))) => {
                    return Err(ClientError::TornStream { rows_seen })
                }
                other => other?,
            };
            match reply {
                Reply::Rows { rows } => {
                    batches += 1;
                    rows_seen += rows.len() as u64;
                    on_batch(&columns, rows);
                }
                Reply::Done {
                    batches: b,
                    rows: r,
                } => {
                    // An unknown-total header can only be checked against
                    // the closing frame, not against a promised count.
                    let total_mismatch = total_rows != TOTAL_UNKNOWN && r != total_rows;
                    if b != batches || r != rows_seen || total_mismatch {
                        return Err(ClientError::Protocol(format!(
                            "stream totals mismatch: saw {batches} batches / {rows_seen} rows, \
                             Done said {b} / {r}, header promised {total_rows}"
                        )));
                    }
                    return Ok(ScanSummary {
                        columns,
                        total_rows: if total_rows == TOTAL_UNKNOWN {
                            rows_seen
                        } else {
                            total_rows
                        },
                        batches,
                        rows: rows_seen,
                    });
                }
                r => return Err(Client::unexpected("Rows or Done", &r)),
            }
        }
    }
}
