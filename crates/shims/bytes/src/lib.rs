//! Minimal in-tree stand-in for the `bytes` crate.
//!
//! The build environment has no access to a crates registry, so this shim
//! provides exactly the subset the workspace uses: the [`Buf`] / [`BufMut`]
//! cursor traits with little-endian accessors, a cheaply cloneable [`Bytes`]
//! handle, and a growable [`BytesMut`] that freezes into one.

#![warn(missing_docs)]

use std::ops::Range;
use std::sync::Arc;

/// Read cursor over a contiguous byte region.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Consumes `n` bytes.
    fn advance(&mut self, n: usize);

    /// Copies `dst.len()` bytes into `dst`, advancing.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }
    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }
    fn advance(&mut self, n: usize) {
        (**self).advance(n)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

/// Write cursor appending to a byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src)
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Immutable, cheaply cloneable byte region (a view into shared storage).
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Returns `true` when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The bytes of the view.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// A sub-view over `range` (relative to this view).
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.start += n;
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    read: usize,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
            read: 0,
        }
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.data.len() - self.read
    }

    /// Returns `true` when no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Converts into an immutable [`Bytes`] (unread portion).
    pub fn freeze(self) -> Bytes {
        if self.read == 0 {
            Bytes::from(self.data)
        } else {
            Bytes::from(self.data[self.read..].to_vec())
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        &self.data[self.read..]
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.read += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u16_le(0xBEEF);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(u64::MAX - 1);
        buf.put_i64_le(-42);
        buf.put_f64_le(1.5);
        buf.put_slice(b"xyz");
        let mut b = buf.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16_le(), 0xBEEF);
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64_le(), u64::MAX - 1);
        assert_eq!(b.get_i64_le(), -42);
        assert_eq!(b.get_f64_le(), 1.5);
        let mut s = [0u8; 3];
        b.copy_to_slice(&mut s);
        assert_eq!(&s, b"xyz");
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn slice_is_a_view() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(s.as_slice(), &[2, 3, 4]);
        let s2 = s.slice(1..2);
        assert_eq!(s2.as_slice(), &[3]);
    }

    #[test]
    #[should_panic]
    fn advance_past_end_panics() {
        let mut b = Bytes::from(vec![1]);
        b.advance(2);
    }
}
