//! Minimal in-tree stand-in for the `rand` crate: a seeded xoshiro256++
//! generator behind the [`Rng`] / [`RngExt`] / [`SeedableRng`] traits, with
//! uniform `random` / `random_range` sampling. Deterministic by
//! construction — every consumer in this workspace seeds explicitly.

#![warn(missing_docs)]

use std::ops::Range;

/// A source of random 64-bit words plus typed uniform sampling.
pub trait Rng {
    /// The next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Range sampling extension, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// A uniformly random value in `range` (half-open).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T: UniformRange>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Types constructible uniformly at random from an [`Rng`].
pub trait Random {
    /// Samples a value from `rng`.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for bool {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types uniformly sampleable over a half-open range.
pub trait UniformRange: Sized {
    /// Samples uniformly from `range`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

fn uniform_below<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection sampling to avoid modulo bias.
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformRange for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "empty range");
                let span = (range.end - range.start) as u64;
                range.start + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_signed {
    ($($t:ty),*) => {$(
        impl UniformRange for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "empty range");
                let span = range.end.wrapping_sub(range.start) as u64;
                range.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_uniform_signed!(i8, i16, i32, i64, isize);

/// Generators constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++, seeded via SplitMix64 — the workspace's standard
    /// deterministic generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [a, b, c, d] = self.s;
            let result = a.wrapping_add(d).rotate_left(23).wrapping_add(a);
            let t = b << 17;
            let mut s = [a, b, c, d];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        assert!((sum / 1000.0 - 0.5).abs() < 0.05, "mean {}", sum / 1000.0);
    }
}
