//! Minimal in-tree stand-in for `rayon`: a lazily started, process-wide
//! worker pool (one OS thread per hardware thread) executing scoped tasks.
//!
//! [`scope`] mirrors `rayon::scope`: closures spawned on the scope may
//! borrow from the enclosing stack frame, and `scope` does not return until
//! every spawned task has finished — which is what makes the lifetime
//! erasure below sound. The waiting thread helps drain the queue instead of
//! blocking, and a task that opens a nested scope runs its spawns inline,
//! so the pool cannot deadlock on itself.

#![warn(missing_docs)]

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Pool {
    queue: Mutex<VecDeque<Job>>,
    work_ready: Condvar,
    threads: usize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

thread_local! {
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        let pool = Pool {
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            threads,
        };
        // The pool lives for the process; workers are detached.
        for i in 0..threads {
            std::thread::Builder::new()
                .name(format!("cods-pool-{i}"))
                .spawn(worker_loop)
                .expect("spawning pool worker");
        }
        pool
    })
}

fn worker_loop() {
    IN_WORKER.with(|w| w.set(true));
    let pool = pool();
    loop {
        let job = {
            let mut q = pool.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                q = pool.work_ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        job();
    }
}

fn try_run_one_job(pool: &Pool) -> bool {
    let job = pool
        .queue
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .pop_front();
    match job {
        Some(job) => {
            job();
            true
        }
        None => false,
    }
}

/// Number of worker threads in the global pool.
pub fn current_num_threads() -> usize {
    pool().threads
}

struct ScopeState {
    pending: Mutex<u64>,
    all_done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl ScopeState {
    fn new() -> Arc<ScopeState> {
        Arc::new(ScopeState {
            pending: Mutex::new(0),
            all_done: Condvar::new(),
            panic: Mutex::new(None),
        })
    }

    fn task_finished(&self, payload: Option<Box<dyn Any + Send>>) {
        if let Some(p) = payload {
            self.panic
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .get_or_insert(p);
        }
        let mut pending = self.pending.lock().unwrap_or_else(|e| e.into_inner());
        *pending -= 1;
        if *pending == 0 {
            self.all_done.notify_all();
        }
    }
}

/// A fork–join scope over which tasks borrowing the enclosing stack frame
/// may be spawned. See [`scope`].
pub struct Scope<'scope> {
    state: Arc<ScopeState>,
    // Invariant over 'scope, like rayon's Scope.
    _marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Spawns `body` onto the pool. The closure may borrow anything that
    /// outlives the enclosing [`scope`] call.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        if IN_WORKER.with(|w| w.get()) {
            // Nested scope inside a pool task: run inline rather than
            // queueing, so a full pool can never deadlock on itself.
            body(self);
            return;
        }
        *self.state.pending.lock().unwrap_or_else(|e| e.into_inner()) += 1;
        let state = Arc::clone(&self.state);
        let nested = Scope {
            state: Arc::clone(&self.state),
            _marker: PhantomData,
        };
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(|| body(&nested)));
            state.task_finished(result.err());
        });
        // SAFETY: `scope` (via WaitGuard) does not return — normally or by
        // unwinding — until `pending` drops to zero, i.e. until this job has
        // run to completion, so every borrow inside `body` outlives the job.
        let job: Job = unsafe { std::mem::transmute(job) };
        let p = pool();
        p.queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(job);
        p.work_ready.notify_one();
    }
}

struct WaitGuard<'a>(&'a ScopeState);

impl Drop for WaitGuard<'_> {
    fn drop(&mut self) {
        let pool = pool();
        loop {
            {
                let pending = self.0.pending.lock().unwrap_or_else(|e| e.into_inner());
                if *pending == 0 {
                    return;
                }
            }
            // Help drain the queue instead of parking; fall back to a short
            // timed wait when the queue is empty but tasks are in flight.
            if !try_run_one_job(pool) {
                let pending = self.0.pending.lock().unwrap_or_else(|e| e.into_inner());
                if *pending == 0 {
                    return;
                }
                let _unused = self
                    .0
                    .all_done
                    .wait_timeout(pending, Duration::from_millis(1))
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
    }
}

/// Runs `op` with a [`Scope`] on which tasks may be spawned, returning only
/// after every spawned task has completed. The first task panic (or a panic
/// in `op` itself) is propagated.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R,
{
    let state = ScopeState::new();
    let s = Scope {
        state: Arc::clone(&state),
        _marker: PhantomData,
    };
    let result = {
        let _wait = WaitGuard(&state);
        op(&s)
        // _wait drops here: blocks until all spawned tasks finish, even if
        // `op` panicked.
    };
    if let Some(p) = state.panic.lock().unwrap_or_else(|e| e.into_inner()).take() {
        resume_unwind(p);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_tasks_borrow_stack_data() {
        let data: Vec<u64> = (0..100).collect();
        let total = AtomicUsize::new(0);
        scope(|s| {
            for chunk in data.chunks(7) {
                let total = &total;
                s.spawn(move |_| {
                    let sum: u64 = chunk.iter().sum();
                    total.fetch_add(sum as usize, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(
            total.load(Ordering::Relaxed),
            (0..100u64).sum::<u64>() as usize
        );
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let count = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..current_num_threads() * 4 {
                let count = &count;
                s.spawn(move |_| {
                    scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(move |_| {
                                count.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), current_num_threads() * 16);
    }

    #[test]
    fn panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            scope(|s| {
                s.spawn(|_| panic!("boom"));
            });
        });
        assert!(result.is_err());
        // The pool must still be usable afterwards.
        let ok = AtomicUsize::new(0);
        scope(|s| {
            let ok = &ok;
            s.spawn(move |_| {
                ok.store(7, Ordering::Relaxed);
            });
        });
        assert_eq!(ok.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn scope_returns_value() {
        let v = scope(|_| 42);
        assert_eq!(v, 42);
    }
}
