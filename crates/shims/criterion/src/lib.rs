//! Minimal in-tree stand-in for `criterion`: the same surface the workspace
//! benches use (groups, `bench_function`, `bench_with_input`, `Bencher::iter`),
//! reporting median-of-samples wall-clock time per iteration to stdout.
//!
//! Sampling is adaptive: each sample runs the closure enough times to cover
//! a minimum window, and the per-iteration median over all samples is
//! reported. Far simpler than criterion's statistics, but stable enough to
//! compare configurations in the same process.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export so shimmed benches can use `criterion::black_box` too.
pub use std::hint::black_box;

/// Entry point handed to each registered bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        eprintln!("\n== {name} ==");
        BenchmarkGroup {
            name,
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(200),
        }
    }

    /// Ungrouped benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) {
        self.benchmark_group("bench").bench_function(id, f);
    }
}

/// Identifier combining a function name and a parameter, as in criterion.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

/// A named collection of benchmarks sharing sampling settings.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target measurement window per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up window per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, id: impl IntoLabel, mut f: impl FnMut(&mut Bencher)) {
        let label = id.into_label();
        let mut b = Bencher::new(self.sample_size, self.measurement_time, self.warm_up_time);
        f(&mut b);
        b.report(&self.name, &label);
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl IntoLabel,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let label = id.into_label();
        let mut b = Bencher::new(self.sample_size, self.measurement_time, self.warm_up_time);
        f(&mut b, input);
        b.report(&self.name, &label);
    }

    /// Ends the group (cosmetic; matches criterion's API).
    pub fn finish(self) {}
}

/// Conversion of criterion's two id flavors into a printable label.
pub trait IntoLabel {
    /// The label text.
    fn into_label(self) -> String;
}

impl IntoLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoLabel for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

/// Runs and times a closure under the group's sampling settings.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(sample_size: usize, measurement_time: Duration, warm_up_time: Duration) -> Self {
        Bencher {
            sample_size,
            measurement_time,
            warm_up_time,
            samples: Vec::new(),
        }
    }

    /// Times `routine`, collecting per-iteration samples.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up, also calibrating iterations per sample.
        let warm_start = Instant::now();
        let mut warm_iters: u32 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed() / warm_iters;
        let budget = self.measurement_time / self.sample_size as u32;
        let iters_per_sample = if per_iter.is_zero() {
            1000
        } else {
            (budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1000) as u32
        };
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters_per_sample);
        }
    }

    fn report(mut self, group: &str, label: &str) {
        if self.samples.is_empty() {
            eprintln!("{group}/{label:<40} (no samples)");
            return;
        }
        self.samples.sort();
        let median = self.samples[self.samples.len() / 2];
        let lo = self.samples[0];
        let hi = self.samples[self.samples.len() - 1];
        eprintln!("{group}/{label:<40} median {median:>12?}   [{lo:?} .. {hi:?}]");
    }
}

/// Registers bench functions under a group name, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the registered groups, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; ignore them.
            $( $group(); )+
        }
    };
}
