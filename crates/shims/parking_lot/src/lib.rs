//! Minimal in-tree stand-in for `parking_lot`: [`Mutex`] and [`RwLock`]
//! wrapping the std primitives with non-poisoning, guard-returning `lock` /
//! `read` / `write` methods. A poisoned std lock is recovered (the data is
//! still returned) to match parking_lot's no-poisoning semantics.

#![warn(missing_docs)]

use std::sync;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutex.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning reader–writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire a shared read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire an exclusive write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn rwlock_try_and_get_mut() {
        let mut l = RwLock::new(7);
        {
            let g = l.try_write().expect("uncontended try_write");
            assert_eq!(*g, 7);
            assert!(l.try_read().is_none(), "writer blocks try_read");
            assert!(l.try_write().is_none(), "writer blocks try_write");
        }
        {
            let g = l.try_read().expect("uncontended try_read");
            assert_eq!(*g, 7);
            assert!(l.try_write().is_none(), "reader blocks try_write");
        }
        *l.get_mut() = 8;
        assert_eq!(*l.read(), 8);
    }
}
