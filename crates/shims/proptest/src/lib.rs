//! Minimal in-tree stand-in for `proptest`: seeded random generation behind
//! a [`Strategy`] trait, the combinators this workspace's property tests
//! use (`prop_map`, `prop_flat_map`, `prop_oneof!`, collections, tuples,
//! ranges, `sample::Index`), and the `proptest! { … }` test macro.
//!
//! No shrinking: a failing case panics with the values that produced it
//! (generation is deterministic per test name, so failures reproduce).

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};
use std::collections::BTreeSet;
use std::ops::Range;

/// Deterministic generator handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// A generator seeded from the test's fully qualified name.
    pub fn for_test(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn random_f64(&mut self) -> f64 {
        self.0.random()
    }

    fn usize_in(&mut self, range: Range<usize>) -> usize {
        if range.start >= range.end {
            range.start
        } else {
            self.0.random_range(range)
        }
    }
}

/// Marker returned by `prop_assume!` to skip a generated case.
#[derive(Debug)]
pub struct TestCaseSkip;

/// Per-`proptest!` configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

/// Resolves the case count from an optional `PROPTEST_CASES`-style
/// override value (kept pure so it is testable without mutating the
/// process environment). Unlike upstream proptest the override also beats
/// explicit `with_cases` values, so CI can elevate the whole suite's case
/// count in one place.
fn resolve_cases(env_value: Option<&str>, explicit: u32) -> u32 {
    env_value.and_then(|v| v.parse().ok()).unwrap_or(explicit)
}

impl ProptestConfig {
    /// Config running `cases` random cases (or the `PROPTEST_CASES`
    /// environment override).
    pub fn with_cases(cases: u32) -> Self {
        let env = std::env::var("PROPTEST_CASES").ok();
        ProptestConfig {
            cases: resolve_cases(env.as_deref(), cases),
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self::with_cases(64)
    }
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Fn(&mut TestRng) -> V>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (the `prop_oneof!` backend).
pub struct Union<V>(Vec<BoxedStrategy<V>>);

impl<V> Union<V> {
    /// Builds a union over non-empty `arms`.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = (rng.next_u64() % self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.0.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy, E: Strategy> Strategy for (A, B, C, D, E) {
    type Value = (A::Value, B::Value, C::Value, D::Value, E::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
            self.4.generate(rng),
        )
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u16 {
    fn arbitrary(rng: &mut TestRng) -> u16 {
        rng.next_u64() as u16
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

/// Strategy for an [`Arbitrary`] type; see [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection sizes: an exact count or a half-open range.
pub trait IntoSizeRange {
    /// Lower/upper (exclusive) bounds.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self + 1)
    }
}

impl IntoSizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        (self.start, self.end)
    }
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Strategy for `Vec<T>`; see [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        min: usize,
        max: usize,
    }

    /// Vectors of `size` elements generated by `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { elem, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.min..self.max);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>`; see [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        elem: S,
        min: usize,
        max: usize,
    }

    /// Sets of roughly `size` elements generated by `elem` (duplicates are
    /// retried a bounded number of times).
    pub fn btree_set<S>(elem: S, size: impl IntoSizeRange) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        let (min, max) = size.bounds();
        BTreeSetStrategy { elem, min, max }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = rng.usize_in(self.min..self.max);
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < target && attempts < target * 10 + 16 {
                out.insert(self.elem.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Sampling helpers.
pub mod sample {
    use super::*;

    /// An abstract index into a collection of as-yet-unknown size.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        /// This index resolved against a collection of `len` elements.
        ///
        /// # Panics
        /// Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }
}

/// Floating-point strategies (uniform in `[0, 1)`).
pub struct UnitF64;

impl Strategy for UnitF64 {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.random_f64()
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };

    /// Namespace mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Uniform choice between strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($arm) ),+ ])
    };
}

/// Asserts inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current generated case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseSkip);
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` running `body` over `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( #[test] fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )+
                    let run = move || -> ::std::result::Result<(), $crate::TestCaseSkip> {
                        $body
                        Ok(())
                    };
                    let _skip = run();
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn proptest_cases_env_overrides_config() {
        assert_eq!(crate::resolve_cases(Some("512"), 64), 512);
        assert_eq!(crate::resolve_cases(Some("not-a-number"), 64), 64);
        assert_eq!(crate::resolve_cases(None, 64), 64);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..17, y in -5i64..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn vec_sizes(v in prop::collection::vec(0u32..6, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert!(v.iter().all(|&x| x < 6));
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![
            (0i64..3).prop_map(|x| x * 10),
            Just(-1i64),
        ]) {
            prop_assert!(v == -1 || v % 10 == 0);
        }

        #[test]
        fn assume_skips(x in 0u64..10) {
            prop_assume!(x > 3);
            prop_assert!(x > 3);
        }

        #[test]
        fn index_resolves(i in any::<prop::sample::Index>()) {
            prop_assert!(i.index(7) < 7);
        }

        #[test]
        fn flat_map_dependent(pair in (1usize..5).prop_flat_map(|n| {
            prop::collection::vec(0usize..n, n).prop_map(move |v| (n, v))
        })) {
            let (n, v) = pair;
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|&x| x < n));
        }

        #[test]
        fn btree_set_in_domain(s in prop::collection::btree_set(0u64..100, 0..20)) {
            prop_assert!(s.len() < 20);
            prop_assert!(s.iter().all(|&x| x < 100));
        }
    }
}
