//! Intra-operator parallelism on a process-wide worker pool.
//!
//! The evolution operators decompose their work into independent tasks —
//! one per (column × segment) for bitmap filtering and payload
//! construction — and fan them out here. Tasks run on `rayon`'s persistent
//! pool (one OS thread per hardware thread, started once per process), so
//! the fan-out grain can be thousands of tasks without spawning thousands
//! of threads. With one item (or one hardware thread) the map degenerates
//! to the serial loop.

/// Maps `f` over `items` in parallel, preserving order.
pub(crate) fn map_parallel<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if items.len() <= 1 || rayon::current_num_threads() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    rayon::scope(|scope| {
        let f = &f;
        for (slot, item) in out.iter_mut().zip(items) {
            scope.spawn(move |_| {
                *slot = Some(f(item));
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("pool task did not complete"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let out = map_parallel(vec![1, 2, 3, 4], |x| x * 10);
        assert_eq!(out, vec![10, 20, 30, 40]);
    }

    #[test]
    fn empty_and_single() {
        let out: Vec<i32> = map_parallel(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
        assert_eq!(map_parallel(vec![7], |x| x + 1), vec![8]);
    }

    #[test]
    fn many_tasks_preserve_order() {
        let items: Vec<u64> = (0..10_000).collect();
        let out = map_parallel(items, |x| x * 2);
        assert_eq!(out.len(), 10_000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 * 2);
        }
    }
}
