//! Optional intra-operator parallelism (feature `parallel`).
//!
//! Bitmap filtering and payload-bitmap construction are embarrassingly
//! parallel across columns: each column's work touches only its own
//! dictionary and bitmaps. With the `parallel` feature enabled these
//! per-column maps run on scoped crossbeam threads; without it they run
//! sequentially and the dependency is unused.

/// Maps `f` over `items`, in parallel when the `parallel` feature is on and
/// there is more than one item.
pub(crate) fn map_maybe_parallel<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    #[cfg(feature = "parallel")]
    {
        if items.len() > 1 {
            let f = &f;
            return crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = items
                    .into_iter()
                    .map(|item| scope.spawn(move |_| f(item)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("column worker panicked"))
                    .collect()
            })
            .expect("crossbeam scope failed");
        }
        items.into_iter().map(f).collect()
    }
    #[cfg(not(feature = "parallel"))]
    {
        items.into_iter().map(f).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let out = map_maybe_parallel(vec![1, 2, 3, 4], |x| x * 10);
        assert_eq!(out, vec![10, 20, 30, 40]);
    }

    #[test]
    fn empty_and_single() {
        let out: Vec<i32> = map_maybe_parallel(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
        assert_eq!(map_maybe_parallel(vec![7], |x| x + 1), vec![8]);
    }
}
