//! A textual statement language for SMOs, in the style the demo UI uses to
//! specify operators. The grammar matches what [`Smo`]'s `Display`
//! implementation renders for the data-moving operators, so statements can
//! be logged, stored, and replayed:
//!
//! ```text
//! CREATE TABLE t (id int, name str, KEY id)
//! DROP TABLE t
//! RENAME TABLE old TO new
//! COPY TABLE src TO dst
//! UNION TABLES a, b INTO out
//! PARTITION TABLE t WHERE col < 10 INTO sat, rest
//! DECOMPOSE TABLE r INTO s (a, b), t (a, c)
//! MERGE TABLES s, t INTO r
//! ADD COLUMN c int DEFAULT 0 TO t
//! DROP COLUMN c FROM t
//! RENAME COLUMN a TO b IN t
//! ```
//!
//! Keywords are case-insensitive; identifiers are case-sensitive.

use crate::decompose::DecomposeSpec;
use crate::error::{EvolutionError, Result};
use crate::merge::MergeStrategy;
use crate::simple_ops::ColumnFill;
use crate::smo::Smo;
use cods_query::pred::{CmpOp, Predicate};
use cods_storage::{ColumnDef, Schema, Value, ValueType};

fn err(msg: impl Into<String>) -> EvolutionError {
    EvolutionError::InvalidOperator(msg.into())
}

/// Splits on commas that are not inside parentheses.
fn split_top_level_commas(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, ch) in s.char_indices() {
        match ch {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                parts.push(s[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(s[start..].trim());
    parts
}

fn parse_type(s: &str) -> Result<ValueType> {
    match s.to_ascii_lowercase().as_str() {
        "int" | "integer" => Ok(ValueType::Int),
        "str" | "string" | "text" | "varchar" => Ok(ValueType::Str),
        "float" | "double" | "real" => Ok(ValueType::Float),
        "bool" | "boolean" => Ok(ValueType::Bool),
        other => Err(err(format!("unknown type {other:?}"))),
    }
}

/// Case-insensitive split on the first occurrence of ` <kw> ` as a word.
fn split_keyword<'a>(s: &'a str, kw: &str) -> Option<(&'a str, &'a str)> {
    let lower = s.to_ascii_lowercase();
    let pat = format!(" {} ", kw.to_ascii_lowercase());
    lower
        .find(&pat)
        .map(|i| (s[..i].trim(), s[i + pat.len()..].trim()))
}

fn parse_name_cols(part: &str) -> Result<(String, Vec<String>)> {
    // `name (a, b, c)`
    let open = part
        .find('(')
        .ok_or_else(|| err(format!("expected `name (cols…)`, got {part:?}")))?;
    if !part.trim_end().ends_with(')') {
        return Err(err(format!("missing `)` in {part:?}")));
    }
    let name = part[..open].trim();
    let inner = &part[open + 1..part.trim_end().len() - 1];
    if name.is_empty() {
        return Err(err("empty table name"));
    }
    let cols: Vec<String> = inner
        .split(',')
        .map(|c| c.trim().to_string())
        .filter(|c| !c.is_empty())
        .collect();
    if cols.is_empty() {
        return Err(err(format!("no columns listed for {name:?}")));
    }
    Ok((name.to_string(), cols))
}

fn parse_predicate(s: &str) -> Result<Predicate> {
    // `col <op> literal`, with AND/OR/NOT combinators, left-associative.
    let lower = s.to_ascii_lowercase();
    if let Some(i) = lower.find(" or ") {
        return Ok(parse_predicate(&s[..i])?.or(parse_predicate(&s[i + 4..])?));
    }
    if let Some(i) = lower.find(" and ") {
        return Ok(parse_predicate(&s[..i])?.and(parse_predicate(&s[i + 5..])?));
    }
    let t = s.trim();
    if let Some(rest) = t.strip_prefix("NOT ").or_else(|| t.strip_prefix("not ")) {
        return Ok(parse_predicate(rest)?.not());
    }
    for (sym, op) in [
        ("!=", CmpOp::Ne),
        ("<=", CmpOp::Le),
        (">=", CmpOp::Ge),
        ("=", CmpOp::Eq),
        ("<", CmpOp::Lt),
        (">", CmpOp::Gt),
    ] {
        if let Some((col, lit)) = t.split_once(sym) {
            let col = col.trim();
            let lit = lit.trim().trim_matches('\'');
            if col.is_empty() || lit.is_empty() {
                return Err(err(format!("malformed comparison {t:?}")));
            }
            // Literal type inference: int → float → string.
            let literal = if let Ok(i) = lit.parse::<i64>() {
                Value::int(i)
            } else if let Ok(f) = lit.parse::<f64>() {
                Value::float(f)
            } else if lit.eq_ignore_ascii_case("true") || lit.eq_ignore_ascii_case("false") {
                Value::Bool(lit.eq_ignore_ascii_case("true"))
            } else {
                Value::str(lit)
            };
            return Ok(Predicate::Compare {
                column: col.to_string(),
                op,
                literal,
            });
        }
    }
    Err(err(format!("cannot parse predicate {t:?}")))
}

/// Parses one SMO statement.
pub fn parse_smo(stmt: &str) -> Result<Smo> {
    let s = stmt.trim().trim_end_matches(';').trim();
    let lower = s.to_ascii_lowercase();

    if let Some(rest) = lower.strip_prefix("create table ") {
        let rest_orig = &s[s.len() - rest.len()..];
        let (name, cols) = parse_name_cols(rest_orig)?;
        let mut defs = Vec::new();
        let mut keys: Vec<String> = Vec::new();
        for c in cols {
            if let Some(k) = c.strip_prefix("KEY ").or_else(|| c.strip_prefix("key ")) {
                keys.extend(k.split_whitespace().map(str::to_string));
                continue;
            }
            let (cname, ty) = c
                .split_once(' ')
                .ok_or_else(|| err(format!("column def {c:?} must be `name type`")))?;
            defs.push(ColumnDef::new(cname.trim(), parse_type(ty.trim())?));
        }
        let key_refs: Vec<&str> = keys.iter().map(String::as_str).collect();
        let col_specs: Vec<(&str, ValueType)> =
            defs.iter().map(|d| (d.name.as_str(), d.ty)).collect();
        let schema = Schema::build(&col_specs, &key_refs).map_err(EvolutionError::Storage)?;
        return Ok(Smo::CreateTable { name, schema });
    }
    if let Some(rest) = lower.strip_prefix("drop table ") {
        let name = s[s.len() - rest.len()..].trim();
        return Ok(Smo::DropTable {
            name: name.to_string(),
        });
    }
    if lower.starts_with("rename table ") {
        let rest = s["rename table ".len()..].trim();
        let (from, to) = split_keyword(rest, "to").ok_or_else(|| err("RENAME TABLE needs `TO`"))?;
        return Ok(Smo::RenameTable {
            from: from.to_string(),
            to: to.to_string(),
        });
    }
    if lower.starts_with("copy table ") {
        let rest = s["copy table ".len()..].trim();
        let (from, to) = split_keyword(rest, "to").ok_or_else(|| err("COPY TABLE needs `TO`"))?;
        return Ok(Smo::CopyTable {
            from: from.to_string(),
            to: to.to_string(),
        });
    }
    if lower.starts_with("union tables ") {
        let rest = s["union tables ".len()..].trim();
        let (inputs, output) =
            split_keyword(rest, "into").ok_or_else(|| err("UNION TABLES needs `INTO`"))?;
        let parts = split_top_level_commas(inputs);
        let [left, right] = parts.as_slice() else {
            return Err(err("UNION TABLES needs exactly two inputs"));
        };
        return Ok(Smo::UnionTables {
            left: left.to_string(),
            right: right.to_string(),
            output: output.to_string(),
            drop_inputs: false,
        });
    }
    if lower.starts_with("partition table ") {
        let rest = s["partition table ".len()..].trim();
        let (input, where_into) =
            split_keyword(rest, "where").ok_or_else(|| err("PARTITION TABLE needs `WHERE`"))?;
        let (pred_text, outputs) =
            split_keyword(where_into, "into").ok_or_else(|| err("PARTITION TABLE needs `INTO`"))?;
        let parts = split_top_level_commas(outputs);
        let [sat, rest_name] = parts.as_slice() else {
            return Err(err("PARTITION TABLE needs two outputs"));
        };
        return Ok(Smo::PartitionTable {
            input: input.to_string(),
            predicate: parse_predicate(pred_text)?,
            satisfying: sat.to_string(),
            rest: rest_name.to_string(),
        });
    }
    if lower.starts_with("decompose table ") {
        let rest = s["decompose table ".len()..].trim();
        let (input, outputs) =
            split_keyword(rest, "into").ok_or_else(|| err("DECOMPOSE TABLE needs `INTO`"))?;
        let parts = split_top_level_commas(outputs);
        let [first, second] = parts.as_slice() else {
            return Err(err("DECOMPOSE TABLE needs exactly two outputs"));
        };
        let (un_name, un_cols) = parse_name_cols(first)?;
        let (ch_name, ch_cols) = parse_name_cols(second)?;
        return Ok(Smo::DecomposeTable {
            input: input.to_string(),
            spec: DecomposeSpec {
                unchanged_name: un_name,
                unchanged_cols: un_cols,
                changed_name: ch_name,
                changed_cols: ch_cols,
                verify_fd: true,
            },
        });
    }
    if lower.starts_with("merge tables ") {
        let rest = s["merge tables ".len()..].trim();
        let (inputs, output) =
            split_keyword(rest, "into").ok_or_else(|| err("MERGE TABLES needs `INTO`"))?;
        let parts = split_top_level_commas(inputs);
        let [left, right] = parts.as_slice() else {
            return Err(err("MERGE TABLES needs exactly two inputs"));
        };
        return Ok(Smo::MergeTables {
            left: left.to_string(),
            right: right.to_string(),
            output: output.to_string(),
            strategy: MergeStrategy::Auto,
        });
    }
    if lower.starts_with("add column ") {
        let rest = s["add column ".len()..].trim();
        let (def_part, table) =
            split_keyword(rest, "to").ok_or_else(|| err("ADD COLUMN needs `TO`"))?;
        let (col_part, default) = match split_keyword(def_part, "default") {
            Some((c, d)) => (c, Some(d)),
            None => (def_part, None),
        };
        let (cname, ty) = col_part
            .split_once(' ')
            .ok_or_else(|| err("ADD COLUMN needs `name type`"))?;
        let ty = parse_type(ty.trim())?;
        let fill = match default {
            Some(d) => ColumnFill::Default(Value::parse(d.trim_matches('\''), ty).map_err(err)?),
            None => ColumnFill::Default(Value::Null),
        };
        return Ok(Smo::AddColumn {
            table: table.to_string(),
            column: ColumnDef::new(cname.trim(), ty),
            fill,
        });
    }
    if lower.starts_with("drop column ") {
        let rest = s["drop column ".len()..].trim();
        let (column, table) =
            split_keyword(rest, "from").ok_or_else(|| err("DROP COLUMN needs `FROM`"))?;
        return Ok(Smo::DropColumn {
            table: table.to_string(),
            column: column.to_string(),
        });
    }
    if lower.starts_with("rename column ") {
        let rest = s["rename column ".len()..].trim();
        let (from, to_in) =
            split_keyword(rest, "to").ok_or_else(|| err("RENAME COLUMN needs `TO`"))?;
        let (to, table) =
            split_keyword(to_in, "in").ok_or_else(|| err("RENAME COLUMN needs `IN`"))?;
        return Ok(Smo::RenameColumn {
            table: table.to_string(),
            from: from.to_string(),
            to: to.to_string(),
        });
    }
    Err(err(format!("unrecognized statement {s:?}")))
}

/// Parses a script: one statement per line (or `;`-separated); `#` and `--`
/// start comments. Errors carry the 1-based source line, so a planner
/// rejecting statement 40 of a script points at the offending line.
pub fn parse_script(text: &str) -> Result<Vec<Smo>> {
    let mut smos = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("");
        let line = line.split("--").next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        for stmt in line.split(';') {
            if !stmt.trim().is_empty() {
                smos.push(parse_smo(stmt).map_err(|e| match e {
                    EvolutionError::InvalidOperator(m) => err(format!("line {}: {m}", lineno + 1)),
                    other => other,
                })?);
            }
        }
    }
    Ok(smos)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_create_with_key() {
        let smo = parse_smo("CREATE TABLE emp (id int, name str, KEY id)").unwrap();
        match smo {
            Smo::CreateTable { name, schema } => {
                assert_eq!(name, "emp");
                assert_eq!(schema.arity(), 2);
                assert_eq!(schema.key_names(), vec!["id"]);
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn parses_decompose_display_round_trip() {
        let smo =
            parse_smo("DECOMPOSE TABLE R INTO S (employee, skill), T (employee, address)").unwrap();
        // The Display form of the parsed SMO re-parses to the same operator.
        let rendered = smo.to_string();
        let reparsed = parse_smo(&rendered).unwrap();
        assert_eq!(reparsed.to_string(), rendered);
        match smo {
            Smo::DecomposeTable { input, spec } => {
                assert_eq!(input, "R");
                assert_eq!(spec.unchanged_cols, vec!["employee", "skill"]);
                assert_eq!(spec.changed_name, "T");
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn parses_merge_union_partition() {
        assert!(matches!(
            parse_smo("MERGE TABLES s, t INTO r").unwrap(),
            Smo::MergeTables { .. }
        ));
        assert!(matches!(
            parse_smo("UNION TABLES a, b INTO ab").unwrap(),
            Smo::UnionTables { .. }
        ));
        let smo = parse_smo("PARTITION TABLE t WHERE k < 10 AND v = 'x' INTO lo, hi").unwrap();
        match smo {
            Smo::PartitionTable { predicate, .. } => {
                assert!(matches!(predicate, Predicate::And(_, _)));
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn parses_column_smos() {
        let smo = parse_smo("ADD COLUMN dept str DEFAULT eng TO emp").unwrap();
        match smo {
            Smo::AddColumn {
                table,
                column,
                fill,
            } => {
                assert_eq!(table, "emp");
                assert_eq!(column.name, "dept");
                assert!(matches!(fill, ColumnFill::Default(Value::Str(_))));
            }
            other => panic!("{other}"),
        }
        assert!(matches!(
            parse_smo("DROP COLUMN dept FROM emp").unwrap(),
            Smo::DropColumn { .. }
        ));
        assert!(matches!(
            parse_smo("RENAME COLUMN a TO b IN emp").unwrap(),
            Smo::RenameColumn { .. }
        ));
    }

    #[test]
    fn parses_table_plumbing() {
        assert!(matches!(
            parse_smo("DROP TABLE t").unwrap(),
            Smo::DropTable { .. }
        ));
        assert!(matches!(
            parse_smo("rename table a to b").unwrap(),
            Smo::RenameTable { .. }
        ));
        assert!(matches!(
            parse_smo("COPY TABLE a TO b").unwrap(),
            Smo::CopyTable { .. }
        ));
    }

    #[test]
    fn predicate_literal_inference() {
        let p = parse_predicate("k = 5").unwrap();
        assert!(matches!(
            p,
            Predicate::Compare {
                literal: Value::Int(5),
                ..
            }
        ));
        let p = parse_predicate("k = 2.5").unwrap();
        assert!(matches!(
            p,
            Predicate::Compare {
                literal: Value::Float(_),
                ..
            }
        ));
        let p = parse_predicate("k = 'hello'").unwrap();
        assert!(matches!(
            p,
            Predicate::Compare {
                literal: Value::Str(_),
                ..
            }
        ));
        let p = parse_predicate("NOT k = true").unwrap();
        assert!(matches!(p, Predicate::Not(_)));
    }

    #[test]
    fn script_with_comments_executes() {
        use crate::platform::Cods;
        let script = "\
# build and evolve the Figure 1 schema
CREATE TABLE r (employee str, skill str, address str)
-- nothing to load here; structure only
COPY TABLE r TO r2;
DROP TABLE r2
";
        let smos = parse_script(script).unwrap();
        assert_eq!(smos.len(), 3);
        let cods = Cods::new();
        cods.execute_all(smos).unwrap();
        assert_eq!(cods.catalog().table_names(), vec!["r"]);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(parse_smo("FROBNICATE TABLE x").is_err());
        assert!(parse_smo("DECOMPOSE TABLE R INTO S").is_err());
        assert!(parse_smo("CREATE TABLE t (id banana)").is_err());
        assert!(parse_smo("PARTITION TABLE t WHERE INTO a, b").is_err());
    }

    #[test]
    fn script_errors_carry_line_numbers() {
        let err = parse_script("DROP TABLE a\n# comment\n\nFROBNICATE x").unwrap_err();
        assert!(err.to_string().contains("line 4"), "{err}");
    }
}
