//! The "relatively straightforward" SMOs of Table 1: CREATE / DROP / RENAME
//! / COPY TABLE, UNION TABLES, PARTITION TABLE, and the column-level
//! ADD / DROP / RENAME COLUMN — all executed at data level.
//!
//! Even these showcase the column store's advantage: COPY shares columns by
//! reference, ADD COLUMN with a default is a single fill bitmap regardless
//! of row count, and PARTITION evaluates its predicate once per *distinct
//! value* (over dictionaries) instead of once per row, then bitmap-filters.

use crate::error::{EvolutionError, Result};
use crate::status::{EvolutionStatus, StatusTracker};
use cods_bitmap::Wah;
use cods_query::pred::Predicate;
use cods_storage::{ColumnDef, EncodedColumn, Schema, Table, Value};
use std::sync::Arc;

/// How ADD COLUMN fills the new column.
#[derive(Clone, Debug)]
pub enum ColumnFill {
    /// Every row gets the same value. O(1) in the row count: a single fill
    /// bitmap.
    Default(Value),
    /// Explicit per-row values (must match the row count).
    Values(Vec<Value>),
}

/// CREATE TABLE: an empty table with the given schema.
pub fn create_table(name: &str, schema: Schema) -> Result<Table> {
    let columns = schema
        .columns()
        .iter()
        .map(|c| Ok(Arc::new(EncodedColumn::from_values(c.ty, &[])?)))
        .collect::<Result<Vec<_>>>()?;
    Table::new(name, schema, columns).map_err(EvolutionError::Storage)
}

/// UNION TABLES: concatenates two union-compatible tables. Unchanged value
/// payloads are reused segment-by-segment; only dictionaries are merged —
/// zone maps splice from both inputs without recomputation. After the
/// concat, the threshold-triggered compaction pass re-chunks any column
/// whose directory a long UNION chain has fragmented into irregular tiny
/// segments (untouched segments stay shared by reference), and the same
/// threshold triggers the adaptive encoding chooser: a freshly rewritten
/// directory is the cheap moment to re-evaluate run statistics, so an
/// unpinned column whose data shape has drifted (e.g. clustered halves
/// unioned into runs) flips encoding here instead of waiting for a manual
/// `recode`.
pub fn union_tables(
    left: &Table,
    right: &Table,
    output_name: &str,
) -> Result<(Table, EvolutionStatus)> {
    let mut tracker = StatusTracker::new();
    if !left.schema().union_compatible(right.schema()) {
        return Err(EvolutionError::InvalidOperator(format!(
            "tables {:?} and {:?} are not union-compatible",
            left.name(),
            right.name()
        )));
    }
    tracker.step("validate union compatibility");
    let columns: Vec<Arc<EncodedColumn>> = left
        .columns()
        .iter()
        .zip(right.columns())
        .map(|(a, b)| {
            let col = a.concat(b)?;
            // Threshold-triggered compaction; checked on the owned value so
            // the common healthy-directory path is clone-free. Compaction
            // just paid for a directory rewrite, so run the stats-driven
            // encoding chooser on the result too.
            let col = if col.needs_compaction() {
                col.compacted().auto_recoded()?
            } else {
                col
            };
            Ok(Arc::new(col))
        })
        .collect::<Result<_>>()?;
    tracker.step_items("concatenate column payloads", columns.len() as u64);
    let schema = Schema::new(left.schema().columns().to_vec()).map_err(EvolutionError::Storage)?;
    let table = Table::new(output_name, schema, columns).map_err(EvolutionError::Storage)?;
    Ok((table, tracker.finish()))
}

/// Builds the row-selection mask of a predicate *at data level* (delegates
/// to [`cods_query::bitmap_scan::predicate_mask`]): comparisons are
/// evaluated once per distinct dictionary value, and the per-value bitmaps
/// of satisfying values are combined — never touching individual rows.
pub fn predicate_mask(table: &Table, pred: &Predicate) -> Result<Wah> {
    Ok(cods_query::bitmap_scan::predicate_mask(table, pred)?)
}

/// PARTITION TABLE: splits `input` into rows satisfying `pred` and the rest.
pub fn partition_table(
    input: &Table,
    pred: &Predicate,
    satisfying_name: &str,
    rest_name: &str,
) -> Result<(Table, Table, EvolutionStatus)> {
    let mut tracker = StatusTracker::new();
    let mask = predicate_mask(input, pred)?;
    tracker.step_items("build predicate mask over dictionaries", mask.count_ones());
    let not_mask = mask.not();

    let schema = Schema::new(input.schema().columns().to_vec()).map_err(EvolutionError::Storage)?;
    // Fan the mask-driven filtering out per (column × segment) like
    // DECOMPOSE does, staying on the compressed form — no whole-column
    // position list is ever materialized.
    let col_refs: Vec<&EncodedColumn> = input.columns().iter().map(|c| c.as_ref()).collect();
    let sat_cols = crate::decompose::filter_columns_by_mask(&col_refs, &mask);
    let rest_cols = crate::decompose::filter_columns_by_mask(&col_refs, &not_mask);
    tracker.step("bitmap filtering into partitions");

    let sat =
        Table::new(satisfying_name, schema.clone(), sat_cols).map_err(EvolutionError::Storage)?;
    let rest = Table::new(rest_name, schema, rest_cols).map_err(EvolutionError::Storage)?;
    Ok((sat, rest, tracker.finish()))
}

/// Schema-level ADD COLUMN: validation (duplicate name, default-value
/// conformance) plus the resulting schema — note ADD, like DROP, rebuilds
/// the schema without a key declaration. Shared by the executor, the plan
/// validator's shadow catalog, and the fused column pass, so plan-time
/// prediction can never drift from run-time behavior.
pub(crate) fn add_column_schema(s: &Schema, def: &ColumnDef, fill: &ColumnFill) -> Result<Schema> {
    if s.contains(&def.name) {
        return Err(EvolutionError::InvalidOperator(format!(
            "column {:?} already exists",
            def.name
        )));
    }
    if let ColumnFill::Default(v) = fill {
        if !v.conforms_to(def.ty) {
            return Err(EvolutionError::InvalidOperator(format!(
                "default value {v} does not conform to type {}",
                def.ty
            )));
        }
    }
    let mut defs = s.columns().to_vec();
    defs.push(def.clone());
    Schema::new(defs).map_err(EvolutionError::Storage)
}

/// Schema-level DROP COLUMN: validation (existence, not the last column)
/// plus the resulting key-less schema. Shared like
/// [`add_column_schema`].
pub(crate) fn drop_column_schema(s: &Schema, column: &str) -> Result<Schema> {
    let idx = s.index_of(column)?;
    if s.arity() == 1 {
        return Err(EvolutionError::InvalidOperator(
            "cannot drop the last column".into(),
        ));
    }
    let defs: Vec<ColumnDef> = s
        .columns()
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != idx)
        .map(|(_, c)| c.clone())
        .collect();
    Schema::new(defs).map_err(EvolutionError::Storage)
}

/// Schema-level RENAME COLUMN: validation (existence, collision) plus the
/// resulting schema — rename preserves the key declaration. Shared like
/// [`add_column_schema`].
pub(crate) fn rename_column_schema(s: &Schema, from: &str, to: &str) -> Result<Schema> {
    let idx = s.index_of(from)?;
    if s.contains(to) {
        return Err(EvolutionError::InvalidOperator(format!(
            "column {to:?} already exists"
        )));
    }
    let defs: Vec<ColumnDef> = s
        .columns()
        .iter()
        .enumerate()
        .map(|(i, c)| {
            if i == idx {
                ColumnDef::new(to, c.ty)
            } else {
                c.clone()
            }
        })
        .collect();
    Schema::with_key(defs, s.key().to_vec()).map_err(EvolutionError::Storage)
}

/// Builds the payload column ADD COLUMN attaches, per `fill` — shared by
/// the single-operator path and the planner's fused column pass, which
/// builds each surviving added column exactly once.
pub(crate) fn build_fill_column(
    rows: u64,
    def: &ColumnDef,
    fill: &ColumnFill,
) -> Result<EncodedColumn> {
    let col = match fill {
        ColumnFill::Default(v) => {
            if !v.conforms_to(def.ty) {
                return Err(EvolutionError::InvalidOperator(format!(
                    "default value {v} does not conform to type {}",
                    def.ty
                )));
            }
            // One dictionary entry, one all-ones fill bitmap: O(1) in rows.
            if rows == 0 {
                EncodedColumn::from_values(def.ty, &[])?
            } else {
                let dict = cods_storage::Dictionary::from_values(vec![v.clone()])
                    .map_err(cods_storage::StorageError::Corrupt)?;
                EncodedColumn::from_parts(def.ty, dict, vec![Wah::ones(rows)], rows)?
            }
        }
        ColumnFill::Values(vals) => {
            if vals.len() as u64 != rows {
                return Err(EvolutionError::InvalidOperator(format!(
                    "ADD COLUMN got {} values for {rows} rows",
                    vals.len()
                )));
            }
            EncodedColumn::from_values(def.ty, vals)?
        }
    };
    Ok(col)
}

/// ADD COLUMN: appends a column filled per `fill`. Existing columns are
/// shared by reference.
pub fn add_column(
    table: &Table,
    def: ColumnDef,
    fill: &ColumnFill,
) -> Result<(Table, EvolutionStatus)> {
    let mut tracker = StatusTracker::new();
    let schema = add_column_schema(table.schema(), &def, fill)?;
    let new_col = build_fill_column(table.rows(), &def, fill)?;
    tracker.step("build new column");

    let mut columns = table.columns().to_vec();
    columns.push(Arc::new(new_col));
    let out = Table::new(table.name(), schema, columns).map_err(EvolutionError::Storage)?;
    tracker.step("attach column");
    Ok((out, tracker.finish()))
}

/// DROP COLUMN: removes a column; all other columns are shared.
pub fn drop_column(table: &Table, column: &str) -> Result<(Table, EvolutionStatus)> {
    let mut tracker = StatusTracker::new();
    let schema = drop_column_schema(table.schema(), column)?;
    let idx = table.schema().index_of(column)?;
    let columns: Vec<Arc<EncodedColumn>> = table
        .columns()
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != idx)
        .map(|(_, c)| Arc::clone(c))
        .collect();
    let out = Table::new(table.name(), schema, columns).map_err(EvolutionError::Storage)?;
    tracker.step("detach column");
    Ok((out, tracker.finish()))
}

/// RENAME COLUMN: pure metadata.
pub fn rename_column(table: &Table, from: &str, to: &str) -> Result<(Table, EvolutionStatus)> {
    let mut tracker = StatusTracker::new();
    let schema = rename_column_schema(table.schema(), from, to)?;
    let out = Table::new(table.name(), schema, table.columns().to_vec())
        .map_err(EvolutionError::Storage)?;
    tracker.step("rename column metadata");
    Ok((out, tracker.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cods_storage::ValueType;

    fn sample() -> Table {
        let schema =
            Schema::build(&[("id", ValueType::Int), ("grade", ValueType::Int)], &[]).unwrap();
        let rows: Vec<Vec<Value>> = (0..10)
            .map(|i| vec![Value::int(i), Value::int(i % 3)])
            .collect();
        Table::from_rows("t", schema, &rows).unwrap()
    }

    #[test]
    fn create_empty_table() {
        let schema = Schema::build(&[("a", ValueType::Int)], &[]).unwrap();
        let t = create_table("t", schema).unwrap();
        assert_eq!(t.rows(), 0);
        t.check_invariants().unwrap();
    }

    #[test]
    fn union_concatenates() {
        let a = sample();
        let b = sample();
        let (u, _) = union_tables(&a, &b, "u").unwrap();
        u.check_invariants().unwrap();
        assert_eq!(u.rows(), 20);
        assert_eq!(u.row(10), a.row(0));
    }

    #[test]
    fn union_compaction_threshold_triggers_encoding_chooser() {
        use cods_storage::Encoding;
        // Clustered base sliced into tiny pieces, then union-chained: the
        // chain fragments the directory past the compaction threshold, and
        // the rewrite re-evaluates the encoding — clustered data flips the
        // unpinned bitmap column to RLE.
        let schema = Schema::build(&[("k", ValueType::Int)], &[]).unwrap();
        let rows: Vec<Vec<Value>> = (0..2_000).map(|i| vec![Value::int(i / 200)]).collect();
        let base = Table::from_rows_with_segment_rows("b", schema.clone(), &rows, 200).unwrap();
        let chain = |base: &Table| {
            let mut acc = {
                let cols = base
                    .columns()
                    .iter()
                    .map(|c| Arc::new(c.slice(0, 20)))
                    .collect();
                Table::new("u", schema.clone(), cols).unwrap()
            };
            for i in 1..100 {
                let lo = (i * 20) % 1_980;
                let cols = base
                    .columns()
                    .iter()
                    .map(|c| Arc::new(c.slice(lo, lo + 20)))
                    .collect();
                let piece = Table::new("p", schema.clone(), cols).unwrap();
                acc = union_tables(&acc, &piece, "u").unwrap().0;
            }
            acc
        };
        let out = chain(&base);
        out.check_invariants().unwrap();
        assert_eq!(out.rows(), 2_000);
        let col = out.column(0);
        let (bitmap_segs, rle_segs) = col.encoding_counts();
        // The chain's compaction passes flipped the clustered bulk to RLE;
        // slices appended after the last threshold crossing may still sit
        // in bitmap segments — a mixed directory is the expected steady
        // state now that concat preserves both sides' segment encodings.
        assert!(
            rle_segs > bitmap_segs,
            "threshold-triggered chooser flips compacted clustered segments to RLE \
             (got {bitmap_segs}\u{d7}bitmap / {rle_segs}\u{d7}rle)"
        );
        // An explicit chooser pass converges the trailing fragments too.
        let full = col.auto_recoded().unwrap();
        assert!(full.is_uniform(Encoding::Rle));
        // A pinned column opts out even across the same chain.
        let pinned = base
            .with_column_encoding_pinned("k", Encoding::Bitmap)
            .unwrap();
        let out = chain(&pinned);
        assert!(out.column(0).is_uniform(Encoding::Bitmap));
        assert!(out.column(0).encoding_pinned(), "pin survives the chain");
    }

    #[test]
    fn union_rejects_incompatible() {
        let a = sample();
        let schema = Schema::build(&[("x", ValueType::Int)], &[]).unwrap();
        let b = Table::from_rows("b", schema, &[vec![Value::int(1)]]).unwrap();
        assert!(union_tables(&a, &b, "u").is_err());
    }

    #[test]
    fn predicate_mask_is_data_level() {
        let t = sample();
        let mask = predicate_mask(&t, &Predicate::eq("grade", 0i64)).unwrap();
        assert_eq!(mask.len(), 10);
        assert_eq!(mask.count_ones(), 4); // grades 0 at ids 0,3,6,9
        assert!(mask.get(0));
        assert!(mask.get(3));
        assert!(!mask.get(1));
        // Combined predicates.
        let m2 = predicate_mask(
            &t,
            &Predicate::eq("grade", 0i64).or(Predicate::eq("grade", 1i64)),
        )
        .unwrap();
        assert_eq!(m2.count_ones(), 7);
        let m3 = predicate_mask(&t, &Predicate::eq("grade", 0i64).not()).unwrap();
        assert_eq!(m3.count_ones(), 6);
        assert_eq!(
            predicate_mask(&t, &Predicate::True).unwrap().count_ones(),
            10
        );
    }

    #[test]
    fn partition_splits_and_preserves() {
        let t = sample();
        let (sat, rest, status) =
            partition_table(&t, &Predicate::lt("id", 4i64), "lo", "hi").unwrap();
        sat.check_invariants().unwrap();
        rest.check_invariants().unwrap();
        assert_eq!(sat.rows(), 4);
        assert_eq!(rest.rows(), 6);
        assert!(status.step("bitmap filtering into partitions").is_some());
        // Partition + union = original multiset.
        let (back, _) = union_tables(&sat, &rest, "back").unwrap();
        assert_eq!(back.tuple_multiset(), t.tuple_multiset());
    }

    #[test]
    fn add_column_default_is_o1() {
        let t = sample();
        let (out, _) = add_column(
            &t,
            ColumnDef::new("dept", ValueType::Str),
            &ColumnFill::Default(Value::str("eng")),
        )
        .unwrap();
        out.check_invariants().unwrap();
        assert_eq!(out.arity(), 3);
        assert_eq!(out.row(5)[2], Value::str("eng"));
        // A single fill word regardless of row count.
        assert!(out.column(2).value_bitmap(0).words().len() <= 2);
        // Other columns shared with the input.
        assert!(t.shares_column_with(&out, "id"));
    }

    #[test]
    fn add_column_values_and_errors() {
        let t = sample();
        let vals: Vec<Value> = (0..10).map(|i| Value::int(i * 100)).collect();
        let (out, _) = add_column(
            &t,
            ColumnDef::new("salary", ValueType::Int),
            &ColumnFill::Values(vals),
        )
        .unwrap();
        assert_eq!(out.row(3)[2], Value::int(300));
        // Wrong length.
        assert!(add_column(
            &t,
            ColumnDef::new("bad", ValueType::Int),
            &ColumnFill::Values(vec![Value::int(1)])
        )
        .is_err());
        // Duplicate name.
        assert!(add_column(
            &t,
            ColumnDef::new("id", ValueType::Int),
            &ColumnFill::Default(Value::int(0))
        )
        .is_err());
        // Type mismatch in default.
        assert!(add_column(
            &t,
            ColumnDef::new("oops", ValueType::Int),
            &ColumnFill::Default(Value::str("nope"))
        )
        .is_err());
    }

    #[test]
    fn drop_and_rename_column() {
        let t = sample();
        let (dropped, _) = drop_column(&t, "grade").unwrap();
        assert_eq!(dropped.arity(), 1);
        assert!(t.shares_column_with(&dropped, "id"));
        assert!(drop_column(&dropped, "id").is_err()); // last column

        let (renamed, _) = rename_column(&t, "grade", "level").unwrap();
        assert!(renamed.schema().contains("level"));
        assert!(!renamed.schema().contains("grade"));
        assert!(t.shares_column_with(&renamed, "id"));
        assert!(rename_column(&t, "grade", "id").is_err()); // collision
        assert!(rename_column(&t, "zzz", "w").is_err()); // missing
    }
}
