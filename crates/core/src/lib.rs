//! # cods
//!
//! A from-scratch reproduction of **CODS** (Liu, Natarajan, He, Hsiao, Chen:
//! *CODS: Evolving Data Efficiently and Scalably in Column Oriented
//! Databases*, PVLDB 3(2), 2010): a platform for **data-level data
//! evolution** on column-oriented databases.
//!
//! Database evolution = schema update + data evolution. Executing the data
//! evolution *at query level* (SQL `INSERT INTO … SELECT`) materializes
//! query results, rebuilds indexes, and — on a column store — decompresses
//! and re-compresses every affected column. CODS instead operates directly
//! on the compressed per-value bitmaps:
//!
//! * [`decompose`](decompose::decompose) — DECOMPOSE TABLE via *distinction*
//!   (one position per distinct key) and *bitmap filtering* (§2.4);
//! * [`merge`](merge::merge) — MERGE TABLES via key–foreign-key mergence
//!   (reuses one input wholesale, §2.5.1) or the general two-pass algorithm
//!   (emits the clustered output as fill runs and strided placements,
//!   §2.5.2);
//! * [`simple_ops`] — the remaining Table 1 operators (CREATE/DROP/RENAME/
//!   COPY TABLE, UNION, PARTITION, ADD/DROP/RENAME COLUMN);
//! * [`Cods`] — the platform: a catalog plus SMO executor
//!   with the demo's status log;
//! * [`plan`] / [`exec`] — the planned evolution surface:
//!   [`Cods::plan`](platform::Cods::plan) validates a whole SMO script
//!   against one catalog snapshot, fuses column-op chains, executes the
//!   dependency DAG in parallel waves, and commits atomically;
//! * [`schema_tools`] — lossless-join and functional-dependency analysis;
//! * [`verify`] — cross-engine result verification.
//!
//! The query-level baselines live in `cods-query`; the storage engines in
//! `cods-storage` (column) and `cods-rowstore` (row); the compressed-bitmap
//! kernel in `cods-bitmap`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod decompose;
pub mod error;
pub mod exec;
pub mod merge;
pub(crate) mod par;
pub mod parser;
pub mod plan;
pub mod planner;
pub mod platform;
pub mod schema_tools;
pub mod simple_ops;
pub mod smo;
pub mod status;
pub mod verify;

pub use decompose::{decompose, DecomposeOutcome, DecomposeSpec};
pub use error::{EvolutionError, Result};
pub use exec::PlanReport;
pub use merge::{merge, merge_general, merge_key_fk, MergeOutcome, MergeStrategy, UsedStrategy};
pub use parser::{parse_script, parse_smo};
pub use plan::{EvolutionPlan, PlanNode, PlanOp};
pub use planner::{plan_decomposition, TargetSpec};
pub use platform::{Cods, ExecutionRecord};
pub use simple_ops::ColumnFill;
pub use smo::Smo;
pub use status::{EvolutionStatus, PlanLog, PlanStageLog, StatusTracker, Step};
