//! Evolution planning: synthesize the SMO chain that decomposes one table
//! into *N* target tables.
//!
//! The paper notes that "decomposing a table into multiple tables can be
//! done by recursively executing this operation" — this module automates the
//! recursion. Given the target column sets, the planner:
//!
//! 1. validates coverage (every input column appears in some target);
//! 2. repeatedly picks a target that can be the *changed* side of a lossless
//!    binary decomposition of the remaining chain — i.e. the columns it
//!    shares with the rest functionally determine its other columns
//!    (Property 2, checked against the input data);
//! 3. emits the corresponding `DECOMPOSE TABLE` operators with generated
//!    intermediate names, ending with a `RENAME TABLE` so the final chain
//!    table carries the last target's name.
//!
//! FDs are checked on the *input* table, which is sound because every
//! intermediate chain table keeps all of the input's rows (only the split-off
//! changed sides shrink).

use crate::decompose::DecomposeSpec;
use crate::error::{EvolutionError, Result};
use crate::schema_tools::fd_holds;
use crate::smo::Smo;
use cods_storage::Table;
use std::collections::BTreeSet;

/// One target table of a multi-way decomposition.
#[derive(Clone, Debug)]
pub struct TargetSpec {
    /// Output table name.
    pub name: String,
    /// Its columns (order preserved in the output schema).
    pub cols: Vec<String>,
}

impl TargetSpec {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, cols: &[&str]) -> Self {
        TargetSpec {
            name: name.into(),
            cols: cols.iter().map(|s| s.to_string()).collect(),
        }
    }
}

/// Plans a lossless decomposition of `input` into the given targets,
/// returning the SMO chain to execute on a platform holding `input`.
///
/// # Errors
/// * [`EvolutionError::InvalidOperator`] — unknown/duplicated columns, fewer
///   than two targets, or duplicate target names;
/// * [`EvolutionError::LossyDecomposition`] — coverage gaps, disconnected
///   targets, or no split order whose functional dependencies hold in the
///   data.
pub fn plan_decomposition(input: &Table, targets: &[TargetSpec]) -> Result<Vec<Smo>> {
    if targets.len() < 2 {
        return Err(EvolutionError::InvalidOperator(
            "a decomposition needs at least two targets".into(),
        ));
    }
    let mut names = BTreeSet::new();
    for t in targets {
        if !names.insert(&t.name) {
            return Err(EvolutionError::InvalidOperator(format!(
                "duplicate target name {:?}",
                t.name
            )));
        }
        for c in &t.cols {
            if !input.schema().contains(c) {
                return Err(EvolutionError::InvalidOperator(format!(
                    "target {:?} references unknown column {c:?}",
                    t.name
                )));
            }
        }
    }
    // Coverage: every input column must appear in some target.
    for col in input.schema().names() {
        if !targets.iter().any(|t| t.cols.iter().any(|c| c == col)) {
            return Err(EvolutionError::LossyDecomposition(format!(
                "input column {col:?} appears in no target"
            )));
        }
    }

    let mut remaining: Vec<&TargetSpec> = targets.iter().collect();
    let mut smos = Vec::new();
    let mut chain_name = input.name().to_string();
    let mut step = 0usize;
    while remaining.len() > 1 {
        // Columns of the rest of the chain = union of all other targets.
        let pick = (0..remaining.len())
            .find(|&i| {
                let t = remaining[i];
                let rest_cols: BTreeSet<&str> = remaining
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .flat_map(|(_, r)| r.cols.iter().map(String::as_str))
                    .collect();
                let common: Vec<&str> = t
                    .cols
                    .iter()
                    .map(String::as_str)
                    .filter(|c| rest_cols.contains(c))
                    .collect();
                if common.is_empty() {
                    return false;
                }
                let dependent: Vec<&str> = t
                    .cols
                    .iter()
                    .map(String::as_str)
                    .filter(|c| !common.contains(c))
                    .collect();
                dependent.is_empty() || fd_holds(input, &common, &dependent).unwrap_or(false)
            })
            .ok_or_else(|| {
                EvolutionError::LossyDecomposition(
                    "no remaining target's shared columns functionally determine it; \
                     the requested decomposition cannot be lossless"
                        .into(),
                )
            })?;
        let target = remaining.remove(pick);
        // The rest of the chain keeps the union of the remaining targets'
        // columns, in input-schema order.
        let rest_set: BTreeSet<&str> = remaining
            .iter()
            .flat_map(|r| r.cols.iter().map(String::as_str))
            .collect();
        let rest_cols: Vec<String> = input
            .schema()
            .names()
            .into_iter()
            .filter(|c| rest_set.contains(c))
            .map(str::to_string)
            .collect();
        let rest_name = if remaining.len() == 1 {
            remaining[0].name.clone()
        } else {
            step += 1;
            format!("__plan_chain_{step}")
        };
        smos.push(Smo::DecomposeTable {
            input: chain_name.clone(),
            spec: DecomposeSpec {
                unchanged_name: rest_name.clone(),
                unchanged_cols: rest_cols,
                changed_name: target.name.clone(),
                changed_cols: target.cols.clone(),
                verify_fd: true,
            },
        });
        chain_name = rest_name;
    }
    Ok(smos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Cods;
    use cods_storage::{Schema, Value, ValueType};

    /// R(e, a, d, z): e → d, e → z; a is free.
    fn input() -> Table {
        let schema = Schema::build(
            &[
                ("e", ValueType::Int),
                ("a", ValueType::Int),
                ("d", ValueType::Int),
                ("z", ValueType::Int),
            ],
            &[],
        )
        .unwrap();
        let rows: Vec<Vec<Value>> = (0..300)
            .map(|i| {
                let e = i % 20;
                vec![
                    Value::int(e),
                    Value::int(i),
                    Value::int(e * 2),
                    Value::int(e * 3),
                ]
            })
            .collect();
        Table::from_rows("R", schema, &rows).unwrap()
    }

    #[test]
    fn plans_three_way_split_and_executes() {
        let r = input();
        let plan = plan_decomposition(
            &r,
            &[
                TargetSpec::new("S", &["e", "a"]),
                TargetSpec::new("D", &["e", "d"]),
                TargetSpec::new("Z", &["e", "z"]),
            ],
        )
        .unwrap();
        assert_eq!(plan.len(), 2);
        let cods = Cods::new();
        cods.catalog().create(r).unwrap();
        cods.execute_all(plan).unwrap();
        assert_eq!(cods.catalog().table_names(), vec!["D", "S", "Z"]);
        assert_eq!(cods.table("S").unwrap().rows(), 300);
        assert_eq!(cods.table("D").unwrap().rows(), 20);
        assert_eq!(cods.table("Z").unwrap().rows(), 20);
        cods.table("D").unwrap().verify_key().unwrap();
    }

    #[test]
    fn two_way_plan_is_a_single_smo() {
        let r = input();
        let plan = plan_decomposition(
            &r,
            &[
                TargetSpec::new("S", &["e", "a", "z"]),
                TargetSpec::new("D", &["e", "d"]),
            ],
        )
        .unwrap();
        assert_eq!(plan.len(), 1);
        match &plan[0] {
            Smo::DecomposeTable { input, spec } => {
                assert_eq!(input, "R");
                assert_eq!(spec.unchanged_name, "S");
                assert_eq!(spec.changed_name, "D");
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn rejects_coverage_gaps_and_unknowns() {
        let r = input();
        let err = plan_decomposition(
            &r,
            &[
                TargetSpec::new("S", &["e", "a"]),
                TargetSpec::new("D", &["e", "d"]), // z missing everywhere
            ],
        );
        assert!(matches!(err, Err(EvolutionError::LossyDecomposition(_))));
        let err = plan_decomposition(
            &r,
            &[
                TargetSpec::new("S", &["e", "a", "z"]),
                TargetSpec::new("D", &["e", "bogus"]),
            ],
        );
        assert!(matches!(err, Err(EvolutionError::InvalidOperator(_))));
        let err = plan_decomposition(&r, &[TargetSpec::new("S", &["e"])]);
        assert!(matches!(err, Err(EvolutionError::InvalidOperator(_))));
    }

    #[test]
    fn rejects_fd_less_split() {
        // a does not depend on e, so (e, a) cannot be a changed side when
        // the rest keeps everything else.
        let r = input();
        let err = plan_decomposition(
            &r,
            &[
                TargetSpec::new("X", &["e", "d", "z"]),
                TargetSpec::new("Y", &["e", "a"]),
            ],
        );
        // Y's dependent column a violates e → a… but X works as the changed
        // side instead (e → d, z holds), so this plan actually succeeds with
        // X split off first.
        let plan = err.unwrap();
        assert_eq!(plan.len(), 1);
        match &plan[0] {
            Smo::DecomposeTable { spec, .. } => {
                assert_eq!(spec.changed_name, "X");
                assert_eq!(spec.unchanged_name, "Y");
            }
            other => panic!("unexpected {other}"),
        }

        // But a genuinely FD-less target set must fail: split (e, a) away
        // from (e, d) with a NOT depending on e and d required too.
        let schema = Schema::build(
            &[
                ("e", ValueType::Int),
                ("a", ValueType::Int),
                ("b", ValueType::Int),
            ],
            &[],
        )
        .unwrap();
        let rows: Vec<Vec<Value>> = (0..50)
            .map(|i| vec![Value::int(i % 5), Value::int(i), Value::int(i * 7)])
            .collect();
        let t = Table::from_rows("T", schema, &rows).unwrap();
        let err = plan_decomposition(
            &t,
            &[
                TargetSpec::new("P", &["e", "a"]),
                TargetSpec::new("Q", &["e", "b"]),
            ],
        );
        assert!(matches!(err, Err(EvolutionError::LossyDecomposition(_))));
    }

    #[test]
    fn rejects_duplicate_target_names() {
        let r = input();
        let err = plan_decomposition(
            &r,
            &[
                TargetSpec::new("S", &["e", "a", "z"]),
                TargetSpec::new("S", &["e", "d"]),
            ],
        );
        assert!(matches!(err, Err(EvolutionError::InvalidOperator(_))));
    }
}
