//! Error types of the CODS evolution platform.

use cods_storage::StorageError;
use std::fmt;

/// Errors raised while planning or executing a schema modification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvolutionError {
    /// Underlying storage failure.
    Storage(StorageError),
    /// The requested decomposition is not lossless-join.
    LossyDecomposition(String),
    /// The data violates the functional dependency a decomposition relies on
    /// (Property 2 of Section 2.4).
    FdViolation(String),
    /// Key–foreign-key mergence requested, but a foreign-key value of the
    /// reusable side has no match in the key side.
    ForeignKeyViolation(String),
    /// The operator's inputs are malformed (missing columns, empty specs…).
    InvalidOperator(String),
    /// The two mergence inputs share no columns.
    NoCommonColumns(String),
}

impl fmt::Display for EvolutionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvolutionError::Storage(e) => write!(f, "storage error: {e}"),
            EvolutionError::LossyDecomposition(m) => {
                write!(f, "decomposition is not lossless-join: {m}")
            }
            EvolutionError::FdViolation(m) => {
                write!(f, "functional dependency violated: {m}")
            }
            EvolutionError::ForeignKeyViolation(m) => {
                write!(f, "key-foreign key mergence violated: {m}")
            }
            EvolutionError::InvalidOperator(m) => write!(f, "invalid operator: {m}"),
            EvolutionError::NoCommonColumns(m) => {
                write!(f, "mergence inputs share no columns: {m}")
            }
        }
    }
}

impl std::error::Error for EvolutionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EvolutionError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for EvolutionError {
    fn from(e: StorageError) -> Self {
        EvolutionError::Storage(e)
    }
}

impl cods_storage::Retryable for EvolutionError {
    /// Only an optimistic catalog-commit loss is transient; every other
    /// evolution error (validation, data, persistence) is deterministic
    /// and would fail again identically.
    fn should_retry(&self) -> bool {
        matches!(self, EvolutionError::Storage(StorageError::Conflict(_)))
    }
}

/// Convenient result alias.
pub type Result<T> = std::result::Result<T, EvolutionError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = EvolutionError::FdViolation("employee -> address".into());
        assert!(e.to_string().contains("functional dependency"));
        let s: EvolutionError = StorageError::UnknownTable("x".into()).into();
        assert!(std::error::Error::source(&s).is_some());
        assert!(std::error::Error::source(&e).is_none());
    }
}
