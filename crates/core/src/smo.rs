//! The Schema Modification Operator (SMO) language — all eleven operators of
//! Table 1 in the paper, as an executable AST.

use crate::decompose::DecomposeSpec;
use crate::merge::MergeStrategy;
use crate::simple_ops::ColumnFill;
use cods_query::pred::Predicate;
use cods_storage::{ColumnDef, Schema};
use std::fmt;

/// A schema modification operator (Table 1 of the paper).
#[derive(Clone, Debug)]
pub enum Smo {
    /// CREATE TABLE: a new, empty table.
    CreateTable {
        /// Table name.
        name: String,
        /// Its schema.
        schema: Schema,
    },
    /// DROP TABLE.
    DropTable {
        /// Table name.
        name: String,
    },
    /// RENAME TABLE, "keeping its data unchanged".
    RenameTable {
        /// Current name.
        from: String,
        /// New name.
        to: String,
    },
    /// COPY TABLE: a copy of an existing table (columns shared).
    CopyTable {
        /// Source table.
        from: String,
        /// Name of the copy.
        to: String,
    },
    /// UNION TABLES: combine the tuples of two same-schema tables.
    UnionTables {
        /// First input.
        left: String,
        /// Second input.
        right: String,
        /// Output name.
        output: String,
        /// Whether the inputs are dropped afterwards.
        drop_inputs: bool,
    },
    /// PARTITION TABLE: split tuples by a condition into two tables.
    PartitionTable {
        /// Input table (dropped afterwards).
        input: String,
        /// The condition.
        predicate: Predicate,
        /// Output receiving satisfying rows.
        satisfying: String,
        /// Output receiving the rest.
        rest: String,
    },
    /// DECOMPOSE TABLE: split a table into two, losslessly (§2.4). The input
    /// is dropped; its columns live on inside the outputs.
    DecomposeTable {
        /// Input table name.
        input: String,
        /// What to produce.
        spec: DecomposeSpec,
    },
    /// MERGE TABLES: "create a new table on storage by joining two tables"
    /// (§2.5). Inputs are kept.
    MergeTables {
        /// Left input (its columns lead the output schema).
        left: String,
        /// Right input.
        right: String,
        /// Output name.
        output: String,
        /// Strategy (auto-detected by default).
        strategy: MergeStrategy,
    },
    /// ADD COLUMN, loading data "from user input or by default".
    AddColumn {
        /// Target table.
        table: String,
        /// New column definition.
        column: ColumnDef,
        /// Fill for existing rows.
        fill: ColumnFill,
    },
    /// DROP COLUMN and its associated data.
    DropColumn {
        /// Target table.
        table: String,
        /// Column to drop.
        column: String,
    },
    /// RENAME COLUMN without changing data.
    RenameColumn {
        /// Target table.
        table: String,
        /// Current column name.
        from: String,
        /// New column name.
        to: String,
    },
}

impl Smo {
    /// Returns `true` for the column-level operators (ADD / DROP / RENAME
    /// COLUMN) — the ones the planner fuses into a single per-table pass
    /// when they form an uninterrupted chain.
    pub fn is_column_op(&self) -> bool {
        matches!(
            self,
            Smo::AddColumn { .. } | Smo::DropColumn { .. } | Smo::RenameColumn { .. }
        )
    }

    /// For column-level operators, the table they modify in place.
    pub fn column_op_table(&self) -> Option<&str> {
        match self {
            Smo::AddColumn { table, .. }
            | Smo::DropColumn { table, .. }
            | Smo::RenameColumn { table, .. } => Some(table),
            _ => None,
        }
    }

    /// The operator's name as listed in Table 1.
    pub fn operator_name(&self) -> &'static str {
        match self {
            Smo::CreateTable { .. } => "CREATE TABLE",
            Smo::DropTable { .. } => "DROP TABLE",
            Smo::RenameTable { .. } => "RENAME TABLE",
            Smo::CopyTable { .. } => "COPY TABLE",
            Smo::UnionTables { .. } => "UNION TABLES",
            Smo::PartitionTable { .. } => "PARTITION TABLE",
            Smo::DecomposeTable { .. } => "DECOMPOSE TABLE",
            Smo::MergeTables { .. } => "MERGE TABLES",
            Smo::AddColumn { .. } => "ADD COLUMN",
            Smo::DropColumn { .. } => "DROP COLUMN",
            Smo::RenameColumn { .. } => "RENAME COLUMN",
        }
    }
}

impl fmt::Display for Smo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Smo::CreateTable { name, schema } => {
                write!(f, "CREATE TABLE {name} ({} columns)", schema.arity())
            }
            Smo::DropTable { name } => write!(f, "DROP TABLE {name}"),
            Smo::RenameTable { from, to } => write!(f, "RENAME TABLE {from} TO {to}"),
            Smo::CopyTable { from, to } => write!(f, "COPY TABLE {from} TO {to}"),
            Smo::UnionTables {
                left,
                right,
                output,
                ..
            } => write!(f, "UNION TABLES {left}, {right} INTO {output}"),
            Smo::PartitionTable {
                input,
                satisfying,
                rest,
                ..
            } => write!(f, "PARTITION TABLE {input} INTO {satisfying}, {rest}"),
            Smo::DecomposeTable { input, spec } => write!(
                f,
                "DECOMPOSE TABLE {input} INTO {} ({}), {} ({})",
                spec.unchanged_name,
                spec.unchanged_cols.join(", "),
                spec.changed_name,
                spec.changed_cols.join(", ")
            ),
            Smo::MergeTables {
                left,
                right,
                output,
                ..
            } => write!(f, "MERGE TABLES {left}, {right} INTO {output}"),
            Smo::AddColumn { table, column, .. } => {
                write!(f, "ADD COLUMN {} TO {table}", column.name)
            }
            Smo::DropColumn { table, column } => {
                write!(f, "DROP COLUMN {column} FROM {table}")
            }
            Smo::RenameColumn { table, from, to } => {
                write!(f, "RENAME COLUMN {from} TO {to} IN {table}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cods_storage::ValueType;

    #[test]
    fn display_forms() {
        let schema = Schema::build(&[("a", ValueType::Int)], &[]).unwrap();
        let smo = Smo::CreateTable {
            name: "t".into(),
            schema,
        };
        assert_eq!(smo.to_string(), "CREATE TABLE t (1 columns)");
        assert_eq!(smo.operator_name(), "CREATE TABLE");

        let smo = Smo::DecomposeTable {
            input: "R".into(),
            spec: DecomposeSpec::new("S", &["a", "b"], "T", &["a", "c"]),
        };
        assert!(smo.to_string().contains("DECOMPOSE TABLE R"));
        assert!(smo.to_string().contains("S (a, b)"));
    }

    #[test]
    fn all_eleven_operators_have_names() {
        // Mirror of Table 1: the operator catalogue is complete.
        let names = [
            "DECOMPOSE TABLE",
            "MERGE TABLES",
            "CREATE TABLE",
            "DROP TABLE",
            "RENAME TABLE",
            "COPY TABLE",
            "UNION TABLES",
            "PARTITION TABLE",
            "ADD COLUMN",
            "DROP COLUMN",
            "RENAME COLUMN",
        ];
        assert_eq!(names.len(), 11);
    }
}
