//! **Data-level MERGE TABLES** (Section 2.5 of the paper).
//!
//! Two strategies, chosen by the shape of the join attributes:
//!
//! * **Key–foreign-key mergence** (§2.5.1) — the join attributes are the key
//!   of one input (`T`). The other input (`S`) is *reused wholesale*: its
//!   columns become the output's columns by reference. Only `T`'s payload
//!   attributes need new bitmaps, built in one sequential scan of `S`'s key
//!   ids; the scan works on dictionary ids and compressed bitmaps only.
//!
//! * **General mergence** (§2.5.2) — an arbitrary equi-join. A two-pass
//!   algorithm: pass 1 counts the occurrences `n1(v)`, `n2(v)` of every
//!   distinct join value in `S` and `T`; each value occupies `n1·n2`
//!   consecutive output rows (the output is *clustered by join value*), so
//!   the join-attribute bitmaps are emitted directly as fill runs. Pass 2
//!   places `S`-side payload values "in a consecutive way" (runs of length
//!   `n2`) and `T`-side payload values "in a non-consecutive way but with
//!   the same distance" (stride `n2`), again writing compressed bitmaps
//!   directly.

use crate::error::{EvolutionError, Result};
use crate::status::{EvolutionStatus, StatusTracker};
use cods_bitmap::RleSeq;
use cods_storage::{ColumnDef, EncodedAssembler, EncodedChunk, EncodedColumn, Schema, Table};
use std::collections::HashMap;
use std::sync::Arc;

/// Strategy selection for MERGE TABLES.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MergeStrategy {
    /// Detect: if one side is unique on the join attributes, use key–FK
    /// mergence with that side as the keyed table (falling back to general
    /// mergence if a foreign-key value has no match); otherwise general.
    Auto,
    /// Force key–FK mergence; `keyed` names the input whose key is the join
    /// attribute set.
    KeyForeignKey {
        /// Name of the keyed (unique) input table.
        keyed: String,
    },
    /// Force the general two-pass algorithm.
    General,
}

/// Which algorithm actually ran.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UsedStrategy {
    /// §2.5.1 ran, reusing the non-keyed side's columns.
    KeyForeignKey,
    /// §2.5.2 ran.
    General,
}

/// Result of a mergence.
#[derive(Clone, Debug)]
pub struct MergeOutcome {
    /// The joined output table.
    pub output: Table,
    /// Which algorithm ran.
    pub strategy: UsedStrategy,
    /// Step log.
    pub status: EvolutionStatus,
}

/// For each dictionary id of `from`, the id of the same value in `to`
/// (`None` when absent). Cost: O(distinct values), never O(rows).
fn id_mapping(from: &EncodedColumn, to: &EncodedColumn) -> Vec<Option<u32>> {
    from.dict()
        .values()
        .iter()
        .map(|v| to.dict().id_of(v))
        .collect()
}

/// An output-chunk emitter that accumulates value-id **runs** — run
/// detection is O(1) per pushed row or run — and decides the chunk's
/// encoding only when the task finishes, through the per-segment chooser
/// on the chunk's own run/row/distinct statistics
/// ([`EncodedChunk::from_seq_for`]): run-level output (a clustered join's
/// fill runs) lands as an RLE chunk, dense rewrites convert to a bitmap
/// chunk in O(runs), and a pinned uniform source column forces its
/// encoding. This is how the mergence operators emit mixed directories for
/// free — each (column × output segment) task picks independently.
struct RunSink {
    seq: RleSeq,
}

impl RunSink {
    fn new() -> RunSink {
        RunSink { seq: RleSeq::new() }
    }

    fn rows(&self) -> u64 {
        self.seq.len()
    }

    fn push_rows(&mut self, id: usize, count: u64) {
        if count > 0 {
            self.seq.append_run(id as u32, count);
        }
    }

    fn push_row(&mut self, id: usize) {
        self.push_rows(id, 1);
    }

    /// Finishes the chunk at exactly `len` rows (everything pushed so far)
    /// in the encoding the chooser picks for it against `col`.
    fn finish_chunk(self, col: &EncodedColumn, len: u64) -> EncodedChunk {
        debug_assert_eq!(self.seq.len(), len);
        EncodedChunk::from_seq_for(col, self.seq)
    }
}

fn join_indices(schema: &Schema, join_cols: &[String]) -> Result<Vec<usize>> {
    join_cols.iter().map(|n| Ok(schema.index_of(n)?)).collect()
}

fn validate_join(left: &Table, right: &Table, join_cols: &[String]) -> Result<()> {
    validate_join_schemas(
        left.schema(),
        right.schema(),
        left.name(),
        right.name(),
        join_cols,
    )
}

/// Schema-level join validation, shared with the evolution planner (which
/// checks mergences against predicted schemas before any data moves).
pub(crate) fn validate_join_schemas(
    left: &Schema,
    right: &Schema,
    left_name: &str,
    right_name: &str,
    join_cols: &[String],
) -> Result<()> {
    if join_cols.is_empty() {
        return Err(EvolutionError::NoCommonColumns(format!(
            "{left_name} and {right_name}"
        )));
    }
    for n in join_cols {
        let l = left.column(n)?;
        let r = right.column(n)?;
        if l.ty != r.ty {
            return Err(EvolutionError::InvalidOperator(format!(
                "join column {n:?} has type {} on one side and {} on the other",
                l.ty, r.ty
            )));
        }
    }
    Ok(())
}

/// Returns `true` if `table` has no duplicate combination of `cols`.
pub fn is_unique_on(table: &Table, cols: &[usize]) -> bool {
    let (positions, _) = crate::decompose::distinction(table, cols, false);
    positions.len() as u64 == table.rows()
}

/// Output schema of a mergence: the reusable/left columns followed by the
/// other side's non-join columns. Shared with the evolution planner, which
/// predicts output schemas without running the mergence.
pub(crate) fn merged_schema(left: &Schema, right: &Schema, join_cols: &[String]) -> Result<Schema> {
    let mut defs: Vec<ColumnDef> = left.columns().to_vec();
    for c in right.columns() {
        if !join_cols.contains(&c.name) {
            defs.push(c.clone());
        }
    }
    Schema::new(defs).map_err(EvolutionError::Storage)
}

// ---------------------------------------------------------------------
// §2.5.1 — key–foreign-key mergence
// ---------------------------------------------------------------------

/// Merges `reusable` (the side whose columns carry over) with `keyed` (the
/// side whose key is the join attribute set).
///
/// Fails with [`EvolutionError::ForeignKeyViolation`] if some join value of
/// `reusable` has no match in `keyed`, and with
/// [`EvolutionError::InvalidOperator`] if `keyed` is not actually unique on
/// the join attributes.
pub fn merge_key_fk(
    reusable: &Table,
    keyed: &Table,
    output_name: &str,
    join_cols: &[String],
) -> Result<MergeOutcome> {
    let mut tracker = StatusTracker::new();
    validate_join(reusable, keyed, join_cols)?;
    let r_join = join_indices(reusable.schema(), join_cols)?;
    let k_join = join_indices(keyed.schema(), join_cols)?;

    if !is_unique_on(keyed, &k_join) {
        return Err(EvolutionError::InvalidOperator(format!(
            "table {:?} is not unique on {:?}; use general mergence",
            keyed.name(),
            join_cols
        )));
    }
    tracker.step("verify key uniqueness");

    // Dictionary-level id maps, one per join column: reusable id → keyed id.
    let maps: Vec<Vec<Option<u32>>> = r_join
        .iter()
        .zip(&k_join)
        .map(|(&rc, &kc)| id_mapping(reusable.column(rc), keyed.column(kc)))
        .collect();
    tracker.step("map join dictionaries");

    // keyed-side: key combination → its unique row.
    let k_ids: Vec<Vec<u32>> = k_join
        .iter()
        .map(|&c| keyed.column(c).value_ids())
        .collect();
    let keyed_rows = keyed.rows() as usize;
    let mut row_of_key: HashMap<Vec<u32>, u64> = HashMap::with_capacity(keyed_rows);
    for row in 0..keyed_rows {
        let key: Vec<u32> = k_ids.iter().map(|c| c[row]).collect();
        row_of_key.insert(key, row as u64);
    }
    tracker.step_items("index key rows", keyed_rows as u64);

    // Sequential scan of the reusable side: every row is mapped to the
    // keyed row providing its payload values. Parallelized per row chunk
    // (the key column's nominal segment size): each pool task scans its
    // range serially against the shared id maps and key index, and the
    // per-chunk results are spliced back in row order — bit-identical to
    // the serial scan, including which row reports a violation first
    // (chunks are joined in order, and each chunk scans its rows in
    // order).
    let r_ids: Vec<Vec<u32>> = r_join
        .iter()
        .map(|&c| reusable.column(c).value_ids())
        .collect();
    let n = reusable.rows() as usize;
    let chunk_rows =
        (reusable.column(r_join[0]).nominal_segment_rows().max(1) as usize).min(n.max(1));
    let starts: Vec<usize> = (0..n).step_by(chunk_rows).collect();
    let chunks: Vec<Result<Vec<u64>>> = crate::par::map_parallel(starts, |start| {
        let end = (start + chunk_rows).min(n);
        let mut out: Vec<u64> = Vec::with_capacity(end - start);
        let mut key_buf: Vec<u32> = vec![0; r_join.len()];
        for row in start..end {
            for (slot, (ids, map)) in key_buf.iter_mut().zip(r_ids.iter().zip(&maps)) {
                let rid = ids[row];
                match map[rid as usize] {
                    Some(mapped) => *slot = mapped,
                    None => {
                        return Err(EvolutionError::ForeignKeyViolation(format!(
                            "row {row} of {:?} has a join value missing from {:?}",
                            reusable.name(),
                            keyed.name()
                        )));
                    }
                }
            }
            match row_of_key.get(&key_buf) {
                Some(&t_row) => out.push(t_row),
                None => {
                    return Err(EvolutionError::ForeignKeyViolation(format!(
                        "row {row} of {:?} has a join combination missing from {:?}",
                        reusable.name(),
                        keyed.name()
                    )));
                }
            }
        }
        Ok(out)
    });
    let mut target_row: Vec<u64> = Vec::with_capacity(n);
    for chunk in chunks {
        target_row.extend(chunk?);
    }
    tracker.step_items("sequential scan (parallel per chunk)", n as u64);

    // Build the payload columns (keyed-side non-join attributes) directly
    // in compressed form — each in its input column's encoding — over the
    // reusable side's row space. Columns are processed one at a time so
    // only one dense id array is alive at once (peak memory O(rows), not
    // O(rows × payload columns)); within a column, one task per output
    // segment gathers that segment's rows in parallel, spliced back in
    // order.
    let payload_cols: Vec<usize> = (0..keyed.arity()).filter(|i| !k_join.contains(i)).collect();
    let mut new_columns: Vec<Arc<EncodedColumn>> = Vec::with_capacity(payload_cols.len());
    for &pc in &payload_cols {
        let col = keyed.column(pc).as_ref();
        let ids = col.value_ids();
        let step = col.nominal_segment_rows().max(1) as usize;
        let starts: Vec<usize> = (0..n).step_by(step).collect();
        let chunks = crate::par::map_parallel(starts, |start| {
            let end = (start + step).min(n);
            EncodedChunk::from_ids_for(
                col,
                target_row[start..end].iter().map(|&t| ids[t as usize]),
                (end - start) as u64,
            )
        });
        let mut asm = col.assembler();
        for chunk in chunks {
            asm.push_chunk(chunk);
        }
        new_columns.push(Arc::new(col.from_assembler_compacting(asm)));
    }
    tracker.step_items("build payload bitmaps", payload_cols.len() as u64);

    // Output: reusable columns shared by reference + new payload columns.
    let schema = merged_schema(reusable.schema(), keyed.schema(), join_cols)?;
    let mut columns: Vec<Arc<EncodedColumn>> = reusable.columns().to_vec();
    columns.extend(new_columns);
    let output = Table::new(output_name, schema, columns).map_err(EvolutionError::Storage)?;
    tracker.step("assemble output table");

    Ok(MergeOutcome {
        output,
        strategy: UsedStrategy::KeyForeignKey,
        status: tracker.finish(),
    })
}

// ---------------------------------------------------------------------
// §2.5.2 — general mergence
// ---------------------------------------------------------------------

/// Merges `left` and `right` on arbitrary (non-key) join attributes with the
/// two-pass algorithm. The output is clustered by join value.
pub fn merge_general(
    left: &Table,
    right: &Table,
    output_name: &str,
    join_cols: &[String],
) -> Result<MergeOutcome> {
    let mut tracker = StatusTracker::new();
    validate_join(left, right, join_cols)?;
    let l_join = join_indices(left.schema(), join_cols)?;
    let r_join = join_indices(right.schema(), join_cols)?;

    // ---- Pass 1: occurrence counts of every distinct join combination ----
    // Left side grouping (combos live in left-id space).
    let l_ids: Vec<Vec<u32>> = l_join.iter().map(|&c| left.column(c).value_ids()).collect();
    let l_rows = left.rows() as usize;
    let mut combo_index: HashMap<Vec<u32>, u32> = HashMap::new();
    let mut combos: Vec<Vec<u32>> = Vec::new();
    let mut n1: Vec<u64> = Vec::new();
    let mut l_group: Vec<u32> = Vec::with_capacity(l_rows);
    for row in 0..l_rows {
        let key: Vec<u32> = l_ids.iter().map(|c| c[row]).collect();
        let g = *combo_index.entry(key.clone()).or_insert_with(|| {
            combos.push(key);
            n1.push(0);
            (combos.len() - 1) as u32
        });
        n1[g as usize] += 1;
        l_group.push(g);
    }

    // Right side: map ids into left-id space, then into the same groups.
    let maps: Vec<Vec<Option<u32>>> = r_join
        .iter()
        .zip(&l_join)
        .map(|(&rc, &lc)| id_mapping(right.column(rc), left.column(lc)))
        .collect();
    let r_ids: Vec<Vec<u32>> = r_join
        .iter()
        .map(|&c| right.column(c).value_ids())
        .collect();
    let r_rows = right.rows() as usize;
    const NO_GROUP: u32 = u32::MAX;
    let mut n2: Vec<u64> = vec![0; combos.len()];
    let mut r_group: Vec<u32> = Vec::with_capacity(r_rows);
    let mut key_buf: Vec<u32> = vec![0; r_join.len()];
    'rows: for row in 0..r_rows {
        for (slot, (ids, map)) in key_buf.iter_mut().zip(r_ids.iter().zip(&maps)) {
            match map[ids[row] as usize] {
                Some(mapped) => *slot = mapped,
                None => {
                    r_group.push(NO_GROUP);
                    continue 'rows;
                }
            }
        }
        match combo_index.get(&key_buf) {
            Some(&g) => {
                n2[g as usize] += 1;
                r_group.push(g);
            }
            None => r_group.push(NO_GROUP),
        }
    }
    tracker.step_items("pass 1: count join occurrences", combos.len() as u64);

    // Offsets: group g occupies rows [off[g], off[g] + n1[g] * n2[g]).
    let mut offsets: Vec<u64> = Vec::with_capacity(combos.len());
    let mut total: u64 = 0;
    for g in 0..combos.len() {
        offsets.push(total);
        total += n1[g] * n2[g];
    }
    let active: Vec<usize> = (0..combos.len())
        .filter(|&g| n1[g] > 0 && n2[g] > 0)
        .collect();
    tracker.step_items("cluster output by join value", active.len() as u64);

    // Bucket the matching rows of both sides per group.
    let mut s_rows: Vec<Vec<u64>> = vec![Vec::new(); combos.len()];
    for (row, &g) in l_group.iter().enumerate() {
        if n2[g as usize] > 0 {
            s_rows[g as usize].push(row as u64);
        }
    }
    let mut t_rows: Vec<Vec<u64>> = vec![Vec::new(); combos.len()];
    for (row, &g) in r_group.iter().enumerate() {
        if g != NO_GROUP && n1[g as usize] > 0 {
            t_rows[g as usize].push(row as u64);
        }
    }

    // ---- Pass 2: emit every output column chunked per output segment ----
    // Join columns are pure fill runs; left payloads place values
    // consecutively (runs of n2); right payloads place values at stride n2
    // within each group. The output row space is cut at each column's
    // nominal segment size, and one pool task emits one (column × output
    // segment) chunk — run-level and clipped to its row range — exactly
    // like the key-FK payload fan-out; the chunks are then spliced back
    // into a segment directory per column through its assembler.
    #[derive(Clone, Copy)]
    enum OutCol {
        Join { pos_in_join: usize, lc: usize },
        LeftPayload { lc: usize },
        RightPayload { rc: usize },
    }
    let mut plan: Vec<OutCol> = Vec::with_capacity(left.arity() + right.arity() - join_cols.len());
    for lc in 0..left.arity() {
        match l_join.iter().position(|&j| j == lc) {
            Some(pos_in_join) => plan.push(OutCol::Join { pos_in_join, lc }),
            None => plan.push(OutCol::LeftPayload { lc }),
        }
    }
    for rc in 0..right.arity() {
        if !r_join.contains(&rc) {
            plan.push(OutCol::RightPayload { rc });
        }
    }
    let col_of = |task: &OutCol| -> &EncodedColumn {
        match *task {
            OutCol::Join { lc, .. } | OutCol::LeftPayload { lc } => left.column(lc),
            OutCol::RightPayload { rc } => right.column(rc),
        }
    };
    // Per-column preparation, itself one pool task per column: left
    // payloads materialize their dense id array once; right payloads
    // additionally gather each group's output-order ids once (a chunk task
    // would otherwise regather them for every segment overlapping the
    // group).
    enum ColPrep {
        Join,
        Left(Vec<u32>),
        Right(Vec<Vec<u32>>),
    }
    let col_prep: Vec<ColPrep> = crate::par::map_parallel(plan.clone(), |task| match task {
        OutCol::Join { .. } => ColPrep::Join,
        OutCol::LeftPayload { lc } => ColPrep::Left(left.column(lc).value_ids()),
        OutCol::RightPayload { rc } => {
            let ids = right.column(rc).value_ids();
            let mut by_group: Vec<Vec<u32>> = vec![Vec::new(); combos.len()];
            for &g in &active {
                by_group[g] = t_rows[g].iter().map(|&r| ids[r as usize]).collect();
            }
            ColPrep::Right(by_group)
        }
    });
    // Task list: (output column, output row range of one nominal segment).
    let mut tasks: Vec<(usize, u64, u64)> = Vec::new();
    for (ci, task) in plan.iter().enumerate() {
        let step = col_of(task).nominal_segment_rows().max(1);
        let mut lo = 0u64;
        while lo < total {
            let hi = (lo + step).min(total);
            tasks.push((ci, lo, hi));
            lo = hi;
        }
    }
    let group_end = |g: usize| offsets[g] + n1[g] * n2[g];
    let n_tasks = tasks.len() as u64;
    let chunks: Vec<(usize, EncodedChunk)> = crate::par::map_parallel(tasks, |(ci, lo, hi)| {
        let col = col_of(&plan[ci]);
        let mut sink = RunSink::new();
        // Group offsets ascend, so the groups overlapping [lo, hi) form a
        // contiguous span of `active`, found by binary search.
        let first = active.partition_point(|&g| group_end(g) <= lo);
        match (&plan[ci], &col_prep[ci]) {
            (OutCol::Join { pos_in_join, .. }, ColPrep::Join) => {
                for &g in &active[first..] {
                    if offsets[g] >= hi {
                        break;
                    }
                    let a = offsets[g].max(lo);
                    let b = group_end(g).min(hi);
                    sink.push_rows(combos[g][*pos_in_join] as usize, b - a);
                }
            }
            (OutCol::LeftPayload { .. }, ColPrep::Left(ids)) => {
                for &g in &active[first..] {
                    let base = offsets[g];
                    if base >= hi {
                        break;
                    }
                    let n2g = n2[g];
                    // Skip the s-rows whose runs end before `lo`.
                    let i0 = (lo.saturating_sub(base) / n2g) as usize;
                    for (i, &srow) in s_rows[g].iter().enumerate().skip(i0) {
                        let row0 = base + i as u64 * n2g;
                        if row0 >= hi {
                            break;
                        }
                        let a = row0.max(lo);
                        let b = (row0 + n2g).min(hi);
                        sink.push_rows(ids[srow as usize] as usize, b - a);
                    }
                }
            }
            (OutCol::RightPayload { .. }, ColPrep::Right(by_group)) => {
                for &g in &active[first..] {
                    let base = offsets[g];
                    if base >= hi {
                        break;
                    }
                    let n2g = n2[g];
                    let group_ids = &by_group[g];
                    let i0 = lo.saturating_sub(base) / n2g;
                    for i in i0..n1[g] {
                        let row0 = base + i * n2g;
                        if row0 >= hi {
                            break;
                        }
                        let j0 = lo.saturating_sub(row0);
                        let j1 = n2g.min(hi - row0);
                        for j in j0..j1 {
                            debug_assert_eq!(sink.rows(), row0 + j - lo);
                            sink.push_row(group_ids[j as usize] as usize);
                        }
                    }
                }
            }
            _ => unreachable!("column preparation out of sync with the plan"),
        }
        debug_assert_eq!(sink.rows(), hi - lo);
        (ci, sink.finish_chunk(col, hi - lo))
    });
    // Tasks were generated in ascending (column, row range) order and
    // map_parallel preserves order, so chunks splice back sequentially.
    let mut assemblers: Vec<EncodedAssembler> =
        plan.iter().map(|t| col_of(t).assembler()).collect();
    for (ci, chunk) in chunks {
        assemblers[ci].push_chunk(chunk);
    }
    let out_columns: Vec<Arc<EncodedColumn>> = plan
        .iter()
        .zip(assemblers)
        .map(|(task, asm)| Arc::new(col_of(task).from_assembler_compacting(asm)))
        .collect();
    tracker.step_items(
        "pass 2: emit output columns (parallel per column x segment)",
        n_tasks,
    );

    let schema = merged_schema(left.schema(), right.schema(), join_cols)?;
    let output = Table::new(output_name, schema, out_columns).map_err(EvolutionError::Storage)?;
    tracker.step_items("assemble output table", total);

    Ok(MergeOutcome {
        output,
        strategy: UsedStrategy::General,
        status: tracker.finish(),
    })
}

// ---------------------------------------------------------------------
// Strategy dispatch
// ---------------------------------------------------------------------

/// Reorders a mergence output to the canonical left-first column layout
/// (left's columns, then right's non-join columns). `Auto` runs this after
/// a key–FK mergence that reused the *right* side, so the output schema is
/// the same whichever input turns out to be keyed — a property the
/// evolution planner relies on to predict schemas ahead of the data.
/// O(arity): columns are shared by reference.
fn reordered_left_first(
    out: MergeOutcome,
    left: &Schema,
    right: &Schema,
    join_cols: &[String],
) -> Result<MergeOutcome> {
    let desired = merged_schema(left, right, join_cols)?;
    if out.output.schema().names() == desired.names() {
        return Ok(out);
    }
    let columns = desired
        .columns()
        .iter()
        .map(|d| {
            let idx = out.output.schema().index_of(&d.name)?;
            Ok(Arc::clone(out.output.column(idx)))
        })
        .collect::<Result<Vec<_>>>()?;
    let output =
        Table::new(out.output.name(), desired, columns).map_err(EvolutionError::Storage)?;
    Ok(MergeOutcome { output, ..out })
}

/// Merges `left` and `right` into `output_name`, joining on their common
/// columns, with the given strategy.
pub fn merge(
    left: &Table,
    right: &Table,
    output_name: &str,
    strategy: &MergeStrategy,
) -> Result<MergeOutcome> {
    let join_cols = crate::schema_tools::common_columns(left.schema(), right.schema());
    if join_cols.is_empty() {
        return Err(EvolutionError::NoCommonColumns(format!(
            "{} and {}",
            left.name(),
            right.name()
        )));
    }
    match strategy {
        MergeStrategy::General => merge_general(left, right, output_name, &join_cols),
        MergeStrategy::KeyForeignKey { keyed } => {
            if keyed == right.name() {
                merge_key_fk(left, right, output_name, &join_cols)
            } else if keyed == left.name() {
                // Reuse right's columns; output schema order then differs
                // from left-first, which callers opting into this explicitly
                // accept.
                merge_key_fk(right, left, output_name, &join_cols)
            } else {
                Err(EvolutionError::InvalidOperator(format!(
                    "keyed table {keyed:?} is neither input"
                )))
            }
        }
        MergeStrategy::Auto => {
            let r_join = join_indices(right.schema(), &join_cols)?;
            if is_unique_on(right, &r_join) {
                match merge_key_fk(left, right, output_name, &join_cols) {
                    Err(EvolutionError::ForeignKeyViolation(_)) => {
                        merge_general(left, right, output_name, &join_cols)
                    }
                    other => other,
                }
            } else {
                let l_join = join_indices(left.schema(), &join_cols)?;
                if is_unique_on(left, &l_join) {
                    match merge_key_fk(right, left, output_name, &join_cols) {
                        Err(EvolutionError::ForeignKeyViolation(_)) => {
                            merge_general(left, right, output_name, &join_cols)
                        }
                        Ok(out) => {
                            reordered_left_first(out, left.schema(), right.schema(), &join_cols)
                        }
                        other => other,
                    }
                } else {
                    merge_general(left, right, output_name, &join_cols)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cods_storage::{Value, ValueType};

    fn s_table() -> Table {
        let schema = Schema::build(
            &[("employee", ValueType::Str), ("skill", ValueType::Str)],
            &[],
        )
        .unwrap();
        let rows: Vec<Vec<Value>> = [
            ("Jones", "Typing"),
            ("Jones", "Shorthand"),
            ("Roberts", "Light Cleaning"),
            ("Ellis", "Alchemy"),
            ("Jones", "Whittling"),
            ("Ellis", "Juggling"),
            ("Harrison", "Light Cleaning"),
        ]
        .iter()
        .map(|&(e, s)| vec![Value::str(e), Value::str(s)])
        .collect();
        Table::from_rows("S", schema, &rows).unwrap()
    }

    fn t_table() -> Table {
        let schema = Schema::build(
            &[("employee", ValueType::Str), ("address", ValueType::Str)],
            &["employee"],
        )
        .unwrap();
        let rows: Vec<Vec<Value>> = [
            ("Jones", "425 Grant Ave"),
            ("Roberts", "747 Industrial Way"),
            ("Ellis", "747 Industrial Way"),
            ("Harrison", "425 Grant Ave"),
        ]
        .iter()
        .map(|&(e, a)| vec![Value::str(e), Value::str(a)])
        .collect();
        Table::from_rows("T", schema, &rows).unwrap()
    }

    fn expected_r() -> Vec<Vec<Value>> {
        [
            ("Jones", "Typing", "425 Grant Ave"),
            ("Jones", "Shorthand", "425 Grant Ave"),
            ("Roberts", "Light Cleaning", "747 Industrial Way"),
            ("Ellis", "Alchemy", "747 Industrial Way"),
            ("Jones", "Whittling", "425 Grant Ave"),
            ("Ellis", "Juggling", "747 Industrial Way"),
            ("Harrison", "Light Cleaning", "425 Grant Ave"),
        ]
        .iter()
        .map(|&(e, s, a)| vec![Value::str(e), Value::str(s), Value::str(a)])
        .collect()
    }

    fn multiset(rows: Vec<Vec<Value>>) -> HashMap<Vec<Value>, u64> {
        let mut m = HashMap::new();
        for r in rows {
            *m.entry(r).or_insert(0) += 1;
        }
        m
    }

    #[test]
    fn key_fk_reconstructs_figure1() {
        let s = s_table();
        let t = t_table();
        let out = merge_key_fk(&s, &t, "R", &["employee".into()]).unwrap();
        assert_eq!(out.strategy, UsedStrategy::KeyForeignKey);
        out.output.check_invariants().unwrap();
        assert_eq!(out.output.rows(), 7);
        assert_eq!(
            out.output.schema().names(),
            vec!["employee", "skill", "address"]
        );
        // Row order is preserved from S, so exact row equality holds.
        assert_eq!(out.output.to_rows(), expected_r());
    }

    #[test]
    fn key_fk_reuses_s_columns() {
        let s = s_table();
        let t = t_table();
        let out = merge_key_fk(&s, &t, "R", &["employee".into()]).unwrap();
        assert!(s.shares_column_with(&out.output, "employee"));
        assert!(s.shares_column_with(&out.output, "skill"));
    }

    #[test]
    fn key_fk_rejects_non_unique_keyed_side() {
        let s = s_table();
        let err = merge_key_fk(&s, &s_table(), "R", &["employee".into()]);
        assert!(matches!(err, Err(EvolutionError::InvalidOperator(_))));
    }

    #[test]
    fn key_fk_detects_fk_violation() {
        let s = s_table();
        let schema = Schema::build(
            &[("employee", ValueType::Str), ("address", ValueType::Str)],
            &["employee"],
        )
        .unwrap();
        // Missing Harrison.
        let t = Table::from_rows(
            "T",
            schema,
            &[
                vec![Value::str("Jones"), Value::str("A")],
                vec![Value::str("Roberts"), Value::str("B")],
                vec![Value::str("Ellis"), Value::str("C")],
            ],
        )
        .unwrap();
        let err = merge_key_fk(&s, &t, "R", &["employee".into()]);
        assert!(matches!(err, Err(EvolutionError::ForeignKeyViolation(_))));
    }

    #[test]
    fn general_matches_key_fk_on_fk_data() {
        let s = s_table();
        let t = t_table();
        let fk = merge_key_fk(&s, &t, "R1", &["employee".into()]).unwrap();
        let gen = merge_general(&s, &t, "R2", &["employee".into()]).unwrap();
        gen.output.check_invariants().unwrap();
        assert_eq!(
            multiset(fk.output.to_rows()),
            multiset(gen.output.to_rows())
        );
    }

    #[test]
    fn general_handles_many_to_many() {
        let a = Table::from_rows(
            "A",
            Schema::build(&[("k", ValueType::Int), ("x", ValueType::Str)], &[]).unwrap(),
            &[
                vec![Value::int(1), Value::str("a1")],
                vec![Value::int(1), Value::str("a2")],
                vec![Value::int(2), Value::str("a3")],
                vec![Value::int(3), Value::str("a4")],
            ],
        )
        .unwrap();
        let b = Table::from_rows(
            "B",
            Schema::build(&[("k", ValueType::Int), ("y", ValueType::Str)], &[]).unwrap(),
            &[
                vec![Value::int(1), Value::str("b1")],
                vec![Value::int(1), Value::str("b2")],
                vec![Value::int(1), Value::str("b3")],
                vec![Value::int(2), Value::str("b4")],
                vec![Value::int(9), Value::str("b5")],
            ],
        )
        .unwrap();
        let out = merge_general(&a, &b, "AB", &["k".into()]).unwrap();
        out.output.check_invariants().unwrap();
        // k=1: 2×3 = 6 rows; k=2: 1×1 = 1 row; k=3 and k=9 unmatched.
        assert_eq!(out.output.rows(), 7);
        // Cross-check against a naive tuple join.
        let mut naive: Vec<Vec<Value>> = Vec::new();
        for ra in a.to_rows() {
            for rb in b.to_rows() {
                if ra[0] == rb[0] {
                    naive.push(vec![ra[0].clone(), ra[1].clone(), rb[1].clone()]);
                }
            }
        }
        assert_eq!(multiset(out.output.to_rows()), multiset(naive));
        // Output is clustered by join value: k column is sorted by group.
        let k_col: Vec<Value> = out.output.to_rows().iter().map(|r| r[0].clone()).collect();
        let mut seen = Vec::new();
        for v in k_col {
            if seen.last() != Some(&v) {
                assert!(!seen.contains(&v), "join values interleaved");
                seen.push(v);
            }
        }
    }

    #[test]
    fn general_composite_join() {
        let a = Table::from_rows(
            "A",
            Schema::build(
                &[
                    ("k1", ValueType::Int),
                    ("k2", ValueType::Str),
                    ("x", ValueType::Int),
                ],
                &[],
            )
            .unwrap(),
            &[
                vec![Value::int(1), Value::str("p"), Value::int(10)],
                vec![Value::int(1), Value::str("q"), Value::int(20)],
                vec![Value::int(1), Value::str("p"), Value::int(30)],
            ],
        )
        .unwrap();
        let b = Table::from_rows(
            "B",
            Schema::build(
                &[
                    ("k1", ValueType::Int),
                    ("k2", ValueType::Str),
                    ("y", ValueType::Int),
                ],
                &[],
            )
            .unwrap(),
            &[
                vec![Value::int(1), Value::str("p"), Value::int(100)],
                vec![Value::int(1), Value::str("r"), Value::int(200)],
            ],
        )
        .unwrap();
        let out = merge_general(&a, &b, "AB", &["k1".into(), "k2".into()]).unwrap();
        // Only (1, p) matches: 2 left rows × 1 right row.
        assert_eq!(out.output.rows(), 2);
        let m = multiset(out.output.to_rows());
        assert_eq!(
            m[&vec![
                Value::int(1),
                Value::str("p"),
                Value::int(10),
                Value::int(100)
            ]],
            1
        );
        assert_eq!(
            m[&vec![
                Value::int(1),
                Value::str("p"),
                Value::int(30),
                Value::int(100)
            ]],
            1
        );
    }

    #[test]
    fn auto_picks_key_fk_when_unique() {
        let s = s_table();
        let t = t_table();
        let out = merge(&s, &t, "R", &MergeStrategy::Auto).unwrap();
        assert_eq!(out.strategy, UsedStrategy::KeyForeignKey);
        assert_eq!(
            out.output.schema().names(),
            vec!["employee", "skill", "address"]
        );
        // Swapped inputs: left is unique → key-FK with right reusable, but
        // the output schema still comes out left-first, so Auto's schema is
        // predictable whichever side is keyed (the planner relies on it).
        let out = merge(&t, &s, "R2", &MergeStrategy::Auto).unwrap();
        assert_eq!(out.strategy, UsedStrategy::KeyForeignKey);
        assert_eq!(
            out.output.schema().names(),
            vec!["employee", "address", "skill"]
        );
    }

    #[test]
    fn auto_falls_back_to_general() {
        let a = Table::from_rows(
            "A",
            Schema::build(&[("k", ValueType::Int), ("x", ValueType::Int)], &[]).unwrap(),
            &[
                vec![Value::int(1), Value::int(10)],
                vec![Value::int(1), Value::int(20)],
            ],
        )
        .unwrap();
        let b = Table::from_rows(
            "B",
            Schema::build(&[("k", ValueType::Int), ("y", ValueType::Int)], &[]).unwrap(),
            &[
                vec![Value::int(1), Value::int(100)],
                vec![Value::int(1), Value::int(200)],
            ],
        )
        .unwrap();
        let out = merge(&a, &b, "AB", &MergeStrategy::Auto).unwrap();
        assert_eq!(out.strategy, UsedStrategy::General);
        assert_eq!(out.output.rows(), 4);
    }

    #[test]
    fn auto_falls_back_on_fk_gap() {
        // Right side unique on k, but left has an unmatched key → auto must
        // degrade to general mergence (inner-join semantics) transparently.
        let a = Table::from_rows(
            "A",
            Schema::build(&[("k", ValueType::Int), ("x", ValueType::Int)], &[]).unwrap(),
            &[
                vec![Value::int(1), Value::int(10)],
                vec![Value::int(2), Value::int(20)],
            ],
        )
        .unwrap();
        let b = Table::from_rows(
            "B",
            Schema::build(&[("k", ValueType::Int), ("y", ValueType::Int)], &[]).unwrap(),
            &[vec![Value::int(1), Value::int(100)]],
        )
        .unwrap();
        let out = merge(&a, &b, "AB", &MergeStrategy::Auto).unwrap();
        assert_eq!(out.strategy, UsedStrategy::General);
        assert_eq!(out.output.rows(), 1);
    }

    #[test]
    fn no_common_columns_rejected() {
        let a = Table::from_rows(
            "A",
            Schema::build(&[("x", ValueType::Int)], &[]).unwrap(),
            &[vec![Value::int(1)]],
        )
        .unwrap();
        let b = Table::from_rows(
            "B",
            Schema::build(&[("y", ValueType::Int)], &[]).unwrap(),
            &[vec![Value::int(1)]],
        )
        .unwrap();
        assert!(matches!(
            merge(&a, &b, "AB", &MergeStrategy::Auto),
            Err(EvolutionError::NoCommonColumns(_))
        ));
    }

    #[test]
    fn join_type_mismatch_rejected() {
        let a = Table::from_rows(
            "A",
            Schema::build(&[("k", ValueType::Int)], &[]).unwrap(),
            &[vec![Value::int(1)]],
        )
        .unwrap();
        let b = Table::from_rows(
            "B",
            Schema::build(&[("k", ValueType::Str)], &[]).unwrap(),
            &[vec![Value::str("1")]],
        )
        .unwrap();
        assert!(matches!(
            merge(&a, &b, "AB", &MergeStrategy::Auto),
            Err(EvolutionError::InvalidOperator(_))
        ));
    }

    #[test]
    fn general_empty_result() {
        let a = Table::from_rows(
            "A",
            Schema::build(&[("k", ValueType::Int), ("x", ValueType::Int)], &[]).unwrap(),
            &[vec![Value::int(1), Value::int(10)]],
        )
        .unwrap();
        let b = Table::from_rows(
            "B",
            Schema::build(&[("k", ValueType::Int), ("y", ValueType::Int)], &[]).unwrap(),
            &[vec![Value::int(2), Value::int(100)]],
        )
        .unwrap();
        let out = merge_general(&a, &b, "AB", &["k".into()]).unwrap();
        assert_eq!(out.output.rows(), 0);
        out.output.check_invariants().unwrap();
    }

    #[test]
    fn explicit_keyed_strategy() {
        let s = s_table();
        let t = t_table();
        let out = merge(
            &s,
            &t,
            "R",
            &MergeStrategy::KeyForeignKey { keyed: "T".into() },
        )
        .unwrap();
        assert_eq!(out.strategy, UsedStrategy::KeyForeignKey);
        let err = merge(
            &s,
            &t,
            "R2",
            &MergeStrategy::KeyForeignKey { keyed: "Z".into() },
        );
        assert!(err.is_err());
    }
}
