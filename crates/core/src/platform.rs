//! The CODS platform: a catalog plus the SMO executor, with the execution
//! history / status log the demo exposes (Section 3).

use crate::decompose::decompose;
use crate::error::{EvolutionError, Result};
use crate::merge::merge;
use crate::simple_ops;
use crate::smo::Smo;
use crate::status::EvolutionStatus;
use cods_storage::{Catalog, StorageError, Table};
use parking_lot::Mutex;
use std::sync::Arc;

/// One executed operator with its status log.
#[derive(Clone, Debug)]
pub struct ExecutionRecord {
    /// Rendered operator (e.g. `DECOMPOSE TABLE R INTO S (…), T (…)`).
    pub operator: String,
    /// Step log with timings.
    pub status: EvolutionStatus,
}

/// The CODS platform instance.
///
/// ```
/// use cods::{Cods, Smo, DecomposeSpec};
/// use cods_storage::{Schema, Table, Value, ValueType};
///
/// let cods = Cods::new();
/// let schema = Schema::build(
///     &[("employee", ValueType::Str), ("skill", ValueType::Str),
///       ("address", ValueType::Str)], &[]).unwrap();
/// let rows = vec![
///     vec![Value::str("Jones"), Value::str("Typing"), Value::str("425 Grant Ave")],
///     vec![Value::str("Jones"), Value::str("Shorthand"), Value::str("425 Grant Ave")],
/// ];
/// cods.catalog().create(Table::from_rows("R", schema, &rows).unwrap()).unwrap();
///
/// cods.execute(Smo::DecomposeTable {
///     input: "R".into(),
///     spec: DecomposeSpec::new("S", &["employee", "skill"],
///                              "T", &["employee", "address"]),
/// }).unwrap();
/// assert!(cods.catalog().contains("S"));
/// assert!(cods.catalog().contains("T"));
/// assert!(!cods.catalog().contains("R")); // input replaced by outputs
/// ```
#[derive(Default)]
pub struct Cods {
    catalog: Catalog,
    history: Mutex<Vec<ExecutionRecord>>,
}

impl Cods {
    /// Creates a platform with an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a platform around an existing catalog.
    pub fn with_catalog(catalog: Catalog) -> Self {
        Cods {
            catalog,
            history: Mutex::new(Vec::new()),
        }
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The execution history.
    pub fn history(&self) -> Vec<ExecutionRecord> {
        self.history.lock().clone()
    }

    fn record(&self, operator: String, status: EvolutionStatus) {
        self.history
            .lock()
            .push(ExecutionRecord { operator, status });
    }

    /// Fetches a table snapshot.
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        Ok(self.catalog.get(name)?)
    }

    /// Executes one schema modification operator, updating the catalog and
    /// recording the status log. Returns the status.
    pub fn execute(&self, smo: Smo) -> Result<EvolutionStatus> {
        let rendered = smo.to_string();
        let status = self.dispatch(smo)?;
        self.record(rendered, status.clone());
        Ok(status)
    }

    /// Executes a sequence of operators, stopping at the first failure.
    pub fn execute_all<I: IntoIterator<Item = Smo>>(
        &self,
        smos: I,
    ) -> Result<Vec<EvolutionStatus>> {
        smos.into_iter().map(|s| self.execute(s)).collect()
    }

    fn dispatch(&self, smo: Smo) -> Result<EvolutionStatus> {
        match smo {
            Smo::CreateTable { name, schema } => {
                let t = simple_ops::create_table(&name, schema)?;
                self.catalog.create(t)?;
                Ok(EvolutionStatus::default())
            }
            Smo::DropTable { name } => {
                self.catalog.drop_table(&name)?;
                Ok(EvolutionStatus::default())
            }
            Smo::RenameTable { from, to } => {
                self.catalog.rename(&from, &to)?;
                Ok(EvolutionStatus::default())
            }
            Smo::CopyTable { from, to } => {
                self.catalog.copy(&from, &to)?;
                Ok(EvolutionStatus::default())
            }
            Smo::UnionTables {
                left,
                right,
                output,
                drop_inputs,
            } => {
                let l = self.catalog.get(&left)?;
                let r = self.catalog.get(&right)?;
                if self.catalog.contains(&output) && output != left && output != right {
                    return Err(EvolutionError::Storage(StorageError::TableExists(output)));
                }
                let (t, status) = simple_ops::union_tables(&l, &r, &output)?;
                if drop_inputs {
                    self.catalog.drop_table(&left)?;
                    if right != left {
                        self.catalog.drop_table(&right)?;
                    }
                }
                self.catalog.put(t);
                Ok(status)
            }
            Smo::PartitionTable {
                input,
                predicate,
                satisfying,
                rest,
            } => {
                let t = self.catalog.get(&input)?;
                self.ensure_absent(&satisfying, &input)?;
                self.ensure_absent(&rest, &input)?;
                let (sat, others, status) =
                    simple_ops::partition_table(&t, &predicate, &satisfying, &rest)?;
                self.catalog.drop_table(&input)?;
                self.catalog.create(sat)?;
                self.catalog.create(others)?;
                Ok(status)
            }
            Smo::DecomposeTable { input, spec } => {
                let t = self.catalog.get(&input)?;
                self.ensure_absent(&spec.unchanged_name, &input)?;
                self.ensure_absent(&spec.changed_name, &input)?;
                let out = decompose(&t, &spec)?;
                self.catalog.drop_table(&input)?;
                self.catalog.create(out.unchanged)?;
                self.catalog.create(out.changed)?;
                Ok(out.status)
            }
            Smo::MergeTables {
                left,
                right,
                output,
                strategy,
            } => {
                let l = self.catalog.get(&left)?;
                let r = self.catalog.get(&right)?;
                if self.catalog.contains(&output) {
                    return Err(EvolutionError::Storage(StorageError::TableExists(output)));
                }
                let out = merge(&l, &r, &output, &strategy)?;
                self.catalog.create(out.output)?;
                Ok(out.status)
            }
            Smo::AddColumn {
                table,
                column,
                fill,
            } => {
                let t = self.catalog.get(&table)?;
                let (out, status) = simple_ops::add_column(&t, column, &fill)?;
                self.catalog.put(out);
                Ok(status)
            }
            Smo::DropColumn { table, column } => {
                let t = self.catalog.get(&table)?;
                let (out, status) = simple_ops::drop_column(&t, &column)?;
                self.catalog.put(out);
                Ok(status)
            }
            Smo::RenameColumn { table, from, to } => {
                let t = self.catalog.get(&table)?;
                let (out, status) = simple_ops::rename_column(&t, &from, &to)?;
                self.catalog.put(out);
                Ok(status)
            }
        }
    }

    fn ensure_absent(&self, name: &str, being_dropped: &str) -> Result<()> {
        if name != being_dropped && self.catalog.contains(name) {
            return Err(EvolutionError::Storage(StorageError::TableExists(
                name.to_string(),
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::DecomposeSpec;
    use crate::merge::MergeStrategy;
    use crate::simple_ops::ColumnFill;
    use cods_query::pred::Predicate;
    use cods_storage::{ColumnDef, Schema, Value, ValueType};

    fn platform_with_figure1() -> Cods {
        let cods = Cods::new();
        let schema = Schema::build(
            &[
                ("employee", ValueType::Str),
                ("skill", ValueType::Str),
                ("address", ValueType::Str),
            ],
            &[],
        )
        .unwrap();
        let rows: Vec<Vec<Value>> = [
            ("Jones", "Typing", "425 Grant Ave"),
            ("Jones", "Shorthand", "425 Grant Ave"),
            ("Roberts", "Light Cleaning", "747 Industrial Way"),
            ("Ellis", "Alchemy", "747 Industrial Way"),
            ("Jones", "Whittling", "425 Grant Ave"),
            ("Ellis", "Juggling", "747 Industrial Way"),
            ("Harrison", "Light Cleaning", "425 Grant Ave"),
        ]
        .iter()
        .map(|&(e, s, a)| vec![Value::str(e), Value::str(s), Value::str(a)])
        .collect();
        cods.catalog()
            .create(Table::from_rows("R", schema, &rows).unwrap())
            .unwrap();
        cods
    }

    fn figure1_decompose() -> Smo {
        Smo::DecomposeTable {
            input: "R".into(),
            spec: DecomposeSpec::new("S", &["employee", "skill"], "T", &["employee", "address"]),
        }
    }

    #[test]
    fn decompose_then_merge_round_trip() {
        let cods = platform_with_figure1();
        let original = cods.table("R").unwrap().tuple_multiset();
        cods.execute(figure1_decompose()).unwrap();
        assert!(!cods.catalog().contains("R"));
        cods.execute(Smo::MergeTables {
            left: "S".into(),
            right: "T".into(),
            output: "R".into(),
            strategy: MergeStrategy::Auto,
        })
        .unwrap();
        assert_eq!(cods.table("R").unwrap().tuple_multiset(), original);
        assert_eq!(cods.history().len(), 2);
        assert!(cods.history()[0].operator.starts_with("DECOMPOSE"));
    }

    #[test]
    fn create_rename_copy_drop() {
        let cods = Cods::new();
        let schema = Schema::build(&[("a", ValueType::Int)], &[]).unwrap();
        cods.execute(Smo::CreateTable {
            name: "t".into(),
            schema,
        })
        .unwrap();
        cods.execute(Smo::CopyTable {
            from: "t".into(),
            to: "t2".into(),
        })
        .unwrap();
        cods.execute(Smo::RenameTable {
            from: "t2".into(),
            to: "t3".into(),
        })
        .unwrap();
        cods.execute(Smo::DropTable { name: "t".into() }).unwrap();
        assert_eq!(cods.catalog().table_names(), vec!["t3"]);
        assert_eq!(cods.history().len(), 4);
    }

    #[test]
    fn partition_then_union_round_trip() {
        let cods = platform_with_figure1();
        let original = cods.table("R").unwrap().tuple_multiset();
        cods.execute(Smo::PartitionTable {
            input: "R".into(),
            predicate: Predicate::eq("address", "425 Grant Ave"),
            satisfying: "grant".into(),
            rest: "industrial".into(),
        })
        .unwrap();
        assert_eq!(cods.table("grant").unwrap().rows(), 4);
        assert_eq!(cods.table("industrial").unwrap().rows(), 3);
        cods.execute(Smo::UnionTables {
            left: "grant".into(),
            right: "industrial".into(),
            output: "R".into(),
            drop_inputs: true,
        })
        .unwrap();
        assert_eq!(cods.table("R").unwrap().tuple_multiset(), original);
        assert_eq!(cods.catalog().len(), 1);
    }

    #[test]
    fn column_smos() {
        let cods = platform_with_figure1();
        cods.execute(Smo::AddColumn {
            table: "R".into(),
            column: ColumnDef::new("country", ValueType::Str),
            fill: ColumnFill::Default(Value::str("US")),
        })
        .unwrap();
        assert_eq!(cods.table("R").unwrap().arity(), 4);
        cods.execute(Smo::RenameColumn {
            table: "R".into(),
            from: "country".into(),
            to: "nation".into(),
        })
        .unwrap();
        assert!(cods.table("R").unwrap().schema().contains("nation"));
        cods.execute(Smo::DropColumn {
            table: "R".into(),
            column: "nation".into(),
        })
        .unwrap();
        assert_eq!(cods.table("R").unwrap().arity(), 3);
    }

    #[test]
    fn output_collisions_are_rejected() {
        let cods = platform_with_figure1();
        cods.execute(Smo::CopyTable {
            from: "R".into(),
            to: "S".into(),
        })
        .unwrap();
        // Decompose wants to create "S" which exists.
        let err = cods.execute(figure1_decompose());
        assert!(err.is_err());
        // The input R must be untouched after the failure.
        assert!(cods.catalog().contains("R"));
    }

    #[test]
    fn merge_keeps_inputs() {
        let cods = platform_with_figure1();
        cods.execute(figure1_decompose()).unwrap();
        cods.execute(Smo::MergeTables {
            left: "S".into(),
            right: "T".into(),
            output: "R".into(),
            strategy: MergeStrategy::Auto,
        })
        .unwrap();
        assert!(cods.catalog().contains("S"));
        assert!(cods.catalog().contains("T"));
        assert!(cods.catalog().contains("R"));
    }
}
