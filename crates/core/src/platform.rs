//! The CODS platform: a catalog plus the SMO execution surface, with the
//! execution history / status log the demo exposes (Section 3).
//!
//! The primary surface is **planned** execution — [`Cods::plan`] /
//! [`Cods::plan_script`] validate a whole script up front, fuse and
//! parallelize it, and commit atomically (see [`crate::plan`]). The
//! one-operator-at-a-time [`Cods::execute`] / [`Cods::execute_all`] remain
//! as a compatibility path implemented over single-operator plans.

use crate::error::Result;
use crate::exec::PlanReport;
use crate::plan::EvolutionPlan;
use crate::smo::Smo;
use crate::status::EvolutionStatus;
use cods_storage::{Catalog, RetryPolicy, Table};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One executed operator with its status log.
#[derive(Clone, Debug)]
pub struct ExecutionRecord {
    /// Rendered operator (e.g. `DECOMPOSE TABLE R INTO S (…), T (…)`).
    pub operator: String,
    /// Step log with timings.
    pub status: EvolutionStatus,
    /// The plan execution this record belongs to; records sharing an id
    /// were committed by the same atomic plan. `cods history` groups by it.
    pub plan_id: Option<u64>,
}

/// The CODS platform instance.
///
/// ```
/// use cods::{Cods, Smo, DecomposeSpec};
/// use cods_storage::{Schema, Table, Value, ValueType};
///
/// let cods = Cods::new();
/// let schema = Schema::build(
///     &[("employee", ValueType::Str), ("skill", ValueType::Str),
///       ("address", ValueType::Str)], &[]).unwrap();
/// let rows = vec![
///     vec![Value::str("Jones"), Value::str("Typing"), Value::str("425 Grant Ave")],
///     vec![Value::str("Jones"), Value::str("Shorthand"), Value::str("425 Grant Ave")],
/// ];
/// cods.catalog().create(Table::from_rows("R", schema, &rows).unwrap()).unwrap();
///
/// cods.execute(Smo::DecomposeTable {
///     input: "R".into(),
///     spec: DecomposeSpec::new("S", &["employee", "skill"],
///                              "T", &["employee", "address"]),
/// }).unwrap();
/// assert!(cods.catalog().contains("S"));
/// assert!(cods.catalog().contains("T"));
/// assert!(!cods.catalog().contains("R")); // input replaced by outputs
/// ```
#[derive(Default)]
pub struct Cods {
    catalog: Catalog,
    history: Mutex<Vec<ExecutionRecord>>,
    plan_seq: AtomicU64,
}

impl Cods {
    /// Creates a platform with an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a platform around an existing catalog.
    pub fn with_catalog(catalog: Catalog) -> Self {
        Cods {
            catalog,
            history: Mutex::new(Vec::new()),
            plan_seq: AtomicU64::new(0),
        }
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The execution history.
    pub fn history(&self) -> Vec<ExecutionRecord> {
        self.history.lock().clone()
    }

    /// Stamps a finished plan's records with a fresh plan id and appends
    /// them to the history, keeping each plan's records contiguous.
    pub(crate) fn record_plan(&self, report: &mut PlanReport) {
        let id = self.plan_seq.fetch_add(1, Ordering::Relaxed);
        for rec in &mut report.records {
            rec.plan_id = Some(id);
        }
        self.history.lock().extend(report.records.iter().cloned());
    }

    /// Fetches a table snapshot.
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        Ok(self.catalog.get(name)?)
    }

    /// Plans a sequence of operators: the whole chain is resolved and
    /// validated against one catalog snapshot (names, schemas,
    /// decomposition shapes, join attributes — errors surface before any
    /// work), fused, and arranged into a dependency DAG. Execute the
    /// returned [`EvolutionPlan`] with
    /// [`execute`](EvolutionPlan::execute) for parallel, all-or-nothing
    /// application.
    pub fn plan(&self, smos: Vec<Smo>) -> Result<EvolutionPlan<'_>> {
        EvolutionPlan::new(self, smos)
    }

    /// Parses an SMO script (see [`crate::parser`]) and plans it — the
    /// validate-then-commit path behind the CLI's `run` and `plan`
    /// commands.
    pub fn plan_script(&self, text: &str) -> Result<EvolutionPlan<'_>> {
        self.plan(crate::parser::parse_script(text)?)
    }

    /// Executes one schema modification operator, updating the catalog and
    /// recording the status log. Returns the status.
    ///
    /// Compatibility path: this is a thin wrapper over a single-operator
    /// [`Cods::plan`], retried with bounded exponential backoff
    /// ([`RetryPolicy::default`]) if a concurrent writer invalidates the
    /// snapshot — the old eager path's serialized semantics, minus its
    /// unbounded spin. Scripts should prefer `plan(...)` +
    /// [`EvolutionPlan::execute`], which validates the whole chain up
    /// front and commits atomically.
    pub fn execute(&self, smo: Smo) -> Result<EvolutionStatus> {
        self.execute_with_retry(smo, &RetryPolicy::default())
    }

    /// [`Cods::execute`] with an explicit conflict-retry policy. Each
    /// attempt re-plans against the then-current catalog, so a retry sees
    /// (and validates against) whatever the winning writer committed.
    pub fn execute_with_retry(&self, smo: Smo, policy: &RetryPolicy) -> Result<EvolutionStatus> {
        let report = self
            .catalog
            .commit_with_retry(policy, |_| self.plan(vec![smo.clone()])?.execute())?;
        let rec = report.records.into_iter().next().expect("single-op plan");
        Ok(rec.status)
    }

    /// Plans and executes a whole SMO script atomically, retrying the
    /// plan-validate-execute-commit cycle with bounded backoff when a
    /// concurrent writer wins the optimistic commit race. This is the
    /// serving layer's script surface: many sessions submit scripts
    /// against one catalog and conflicts resolve by re-planning rather
    /// than surfacing raw [`StorageError::Conflict`] — which is still
    /// returned once `policy.max_attempts` is exhausted.
    ///
    /// Parse and validation errors are deterministic and surface
    /// immediately, without consuming retry attempts.
    pub fn run_script_with_retry(&self, text: &str, policy: &RetryPolicy) -> Result<PlanReport> {
        let smos = crate::parser::parse_script(text)?;
        self.catalog
            .commit_with_retry(policy, |_| self.plan(smos.clone())?.execute())
    }

    /// Executes a sequence of operators, stopping at the first failure.
    ///
    /// Compatibility path with **partial-mutation semantics**: every
    /// operator commits individually, so a mid-sequence failure leaves the
    /// effects of all earlier operators in the catalog. Use
    /// [`Cods::plan`] / [`Cods::plan_script`] for all-or-nothing script
    /// execution — a failing plan leaves the catalog untouched.
    pub fn execute_all<I: IntoIterator<Item = Smo>>(
        &self,
        smos: I,
    ) -> Result<Vec<EvolutionStatus>> {
        smos.into_iter().map(|s| self.execute(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::DecomposeSpec;
    use crate::merge::MergeStrategy;
    use crate::simple_ops::ColumnFill;
    use cods_query::pred::Predicate;
    use cods_storage::{ColumnDef, Schema, Value, ValueType};

    fn platform_with_figure1() -> Cods {
        let cods = Cods::new();
        let schema = Schema::build(
            &[
                ("employee", ValueType::Str),
                ("skill", ValueType::Str),
                ("address", ValueType::Str),
            ],
            &[],
        )
        .unwrap();
        let rows: Vec<Vec<Value>> = [
            ("Jones", "Typing", "425 Grant Ave"),
            ("Jones", "Shorthand", "425 Grant Ave"),
            ("Roberts", "Light Cleaning", "747 Industrial Way"),
            ("Ellis", "Alchemy", "747 Industrial Way"),
            ("Jones", "Whittling", "425 Grant Ave"),
            ("Ellis", "Juggling", "747 Industrial Way"),
            ("Harrison", "Light Cleaning", "425 Grant Ave"),
        ]
        .iter()
        .map(|&(e, s, a)| vec![Value::str(e), Value::str(s), Value::str(a)])
        .collect();
        cods.catalog()
            .create(Table::from_rows("R", schema, &rows).unwrap())
            .unwrap();
        cods
    }

    fn figure1_decompose() -> Smo {
        Smo::DecomposeTable {
            input: "R".into(),
            spec: DecomposeSpec::new("S", &["employee", "skill"], "T", &["employee", "address"]),
        }
    }

    #[test]
    fn decompose_then_merge_round_trip() {
        let cods = platform_with_figure1();
        let original = cods.table("R").unwrap().tuple_multiset();
        cods.execute(figure1_decompose()).unwrap();
        assert!(!cods.catalog().contains("R"));
        cods.execute(Smo::MergeTables {
            left: "S".into(),
            right: "T".into(),
            output: "R".into(),
            strategy: MergeStrategy::Auto,
        })
        .unwrap();
        assert_eq!(cods.table("R").unwrap().tuple_multiset(), original);
        assert_eq!(cods.history().len(), 2);
        assert!(cods.history()[0].operator.starts_with("DECOMPOSE"));
    }

    #[test]
    fn create_rename_copy_drop() {
        let cods = Cods::new();
        let schema = Schema::build(&[("a", ValueType::Int)], &[]).unwrap();
        cods.execute(Smo::CreateTable {
            name: "t".into(),
            schema,
        })
        .unwrap();
        cods.execute(Smo::CopyTable {
            from: "t".into(),
            to: "t2".into(),
        })
        .unwrap();
        cods.execute(Smo::RenameTable {
            from: "t2".into(),
            to: "t3".into(),
        })
        .unwrap();
        cods.execute(Smo::DropTable { name: "t".into() }).unwrap();
        assert_eq!(cods.catalog().table_names(), vec!["t3"]);
        assert_eq!(cods.history().len(), 4);
    }

    #[test]
    fn partition_then_union_round_trip() {
        let cods = platform_with_figure1();
        let original = cods.table("R").unwrap().tuple_multiset();
        cods.execute(Smo::PartitionTable {
            input: "R".into(),
            predicate: Predicate::eq("address", "425 Grant Ave"),
            satisfying: "grant".into(),
            rest: "industrial".into(),
        })
        .unwrap();
        assert_eq!(cods.table("grant").unwrap().rows(), 4);
        assert_eq!(cods.table("industrial").unwrap().rows(), 3);
        cods.execute(Smo::UnionTables {
            left: "grant".into(),
            right: "industrial".into(),
            output: "R".into(),
            drop_inputs: true,
        })
        .unwrap();
        assert_eq!(cods.table("R").unwrap().tuple_multiset(), original);
        assert_eq!(cods.catalog().len(), 1);
    }

    #[test]
    fn column_smos() {
        let cods = platform_with_figure1();
        cods.execute(Smo::AddColumn {
            table: "R".into(),
            column: ColumnDef::new("country", ValueType::Str),
            fill: ColumnFill::Default(Value::str("US")),
        })
        .unwrap();
        assert_eq!(cods.table("R").unwrap().arity(), 4);
        cods.execute(Smo::RenameColumn {
            table: "R".into(),
            from: "country".into(),
            to: "nation".into(),
        })
        .unwrap();
        assert!(cods.table("R").unwrap().schema().contains("nation"));
        cods.execute(Smo::DropColumn {
            table: "R".into(),
            column: "nation".into(),
        })
        .unwrap();
        assert_eq!(cods.table("R").unwrap().arity(), 3);
    }

    #[test]
    fn run_script_with_retry_survives_contention() {
        use std::sync::Arc;
        let cods = Arc::new(platform_with_figure1());
        let policy = RetryPolicy::no_backoff(16).with_seed(7);
        // Hammer the catalog from a rival thread while the script path
        // commits; every conflict must be absorbed by re-planning.
        let rival = {
            let cods = Arc::clone(&cods);
            std::thread::spawn(move || {
                for i in 0..24 {
                    let name = format!("noise_{i}");
                    let schema = Schema::build(&[("x", ValueType::Int)], &[]).unwrap();
                    cods.execute(Smo::CreateTable { name, schema }).unwrap();
                }
            })
        };
        let report = cods
            .run_script_with_retry(
                "DECOMPOSE TABLE R INTO S (employee, skill), T (employee, address)",
                &policy,
            )
            .unwrap();
        rival.join().unwrap();
        assert_eq!(report.records.len(), 1);
        assert!(cods.catalog().contains("S"));
        assert!(cods.catalog().contains("T"));
        assert!(!cods.catalog().contains("R"));
        // Parse errors are deterministic: no retries, immediate surface.
        assert!(cods.run_script_with_retry("FROBNICATE y", &policy).is_err());
    }

    #[test]
    fn output_collisions_are_rejected() {
        let cods = platform_with_figure1();
        cods.execute(Smo::CopyTable {
            from: "R".into(),
            to: "S".into(),
        })
        .unwrap();
        // Decompose wants to create "S" which exists.
        let err = cods.execute(figure1_decompose());
        assert!(err.is_err());
        // The input R must be untouched after the failure.
        assert!(cods.catalog().contains("R"));
    }

    #[test]
    fn merge_keeps_inputs() {
        let cods = platform_with_figure1();
        cods.execute(figure1_decompose()).unwrap();
        cods.execute(Smo::MergeTables {
            left: "S".into(),
            right: "T".into(),
            output: "R".into(),
            strategy: MergeStrategy::Auto,
        })
        .unwrap();
        assert!(cods.catalog().contains("S"));
        assert!(cods.catalog().contains("T"));
        assert!(cods.catalog().contains("R"));
    }
}
