//! **Data-level DECOMPOSE TABLE** (Section 2.4 of the paper).
//!
//! A lossless-join decomposition of `R(A1…An)` into `S(A1…Ak, Ak+1…Am)` and
//! `T(A1…Ak, Am+1…An)`, where the common attributes `A1…Ak` are a key of `T`,
//! is executed entirely on the compressed representation:
//!
//! 1. **Reuse** — `S` is a column subset of `R`; its columns are shared by
//!    reference (Property 1: "the unchanged output table can be created right
//!    away using the existing columns in R without any data operation").
//! 2. **Distinction** — one pass over the key columns' value ids finds, for
//!    every distinct key combination, the position of its first occurrence
//!    in `R`. The result is a sorted tuple-position list.
//! 3. **Bitmap filtering** — every bitmap of every `T` column is shrunk to
//!    that position list (`Wah::filter_positions`), producing `T`'s
//!    compressed bitmaps directly: no tuples are materialized, nothing is
//!    decompressed or re-compressed, and no index needs rebuilding.
//!
//! Property 2 (the key functionally determines `T`'s other attributes, so
//! any representative row suffices) is optionally verified in the same pass.

use crate::error::{EvolutionError, Result};
use crate::schema_tools::check_decomposition_shape;
use crate::status::{EvolutionStatus, StatusTracker};
use cods_storage::{EncodedColumn, Table};
use std::collections::HashMap;
use std::sync::Arc;

/// Specification of a decomposition.
#[derive(Clone, Debug)]
pub struct DecomposeSpec {
    /// Name for the unchanged output (the side keeping all rows).
    pub unchanged_name: String,
    /// Columns of the unchanged output.
    pub unchanged_cols: Vec<String>,
    /// Name for the changed output (shrunk to one row per distinct key).
    pub changed_name: String,
    /// Columns of the changed output; the columns shared with
    /// `unchanged_cols` become its key.
    pub changed_cols: Vec<String>,
    /// Verify Property 2 (the FD key → rest) during the pass, failing with
    /// [`EvolutionError::FdViolation`] if the data would make the
    /// decomposition lossy. Costs one extra O(rows) id scan per changed
    /// non-key column.
    pub verify_fd: bool,
}

impl DecomposeSpec {
    /// Builds a spec with FD verification enabled.
    pub fn new(
        unchanged_name: impl Into<String>,
        unchanged_cols: &[&str],
        changed_name: impl Into<String>,
        changed_cols: &[&str],
    ) -> Self {
        DecomposeSpec {
            unchanged_name: unchanged_name.into(),
            unchanged_cols: unchanged_cols.iter().map(|s| s.to_string()).collect(),
            changed_name: changed_name.into(),
            changed_cols: changed_cols.iter().map(|s| s.to_string()).collect(),
            verify_fd: true,
        }
    }

    /// Disables FD verification (trusted input).
    pub fn trusted(mut self) -> Self {
        self.verify_fd = false;
        self
    }
}

/// Result of a decomposition.
#[derive(Clone, Debug)]
pub struct DecomposeOutcome {
    /// The unchanged output table (columns shared with the input).
    pub unchanged: Table,
    /// The changed output table (one row per distinct key).
    pub changed: Table,
    /// Number of distinct key combinations found by distinction.
    pub distinct_keys: u64,
    /// Step log.
    pub status: EvolutionStatus,
}

/// The *distinction* step: the sorted list of first-occurrence positions of
/// every distinct combination of `key_cols`, plus (when `group_of_row` is
/// requested) the key-group index of every row for FD verification.
///
/// Works purely on value ids — dictionary values are never touched — and
/// fans out per row chunk (the key column's nominal segment size): each
/// pool task builds a *partial* map of the distinct keys in its chunk, in
/// local first-occurrence order, and the partials are merged in chunk order
/// so group numbering and first-occurrence positions come out exactly as a
/// single sequential scan would produce them. A second fan-out rewrites
/// each chunk's local group ids to global ones.
pub fn distinction(
    table: &Table,
    key_cols: &[usize],
    want_groups: bool,
) -> (Vec<u64>, Option<Vec<u32>>) {
    let rows = table.rows() as usize;
    if rows == 0 {
        return (Vec::new(), want_groups.then(Vec::new));
    }
    let id_cols: Vec<Vec<u32>> = key_cols
        .iter()
        .map(|&c| table.column(c).value_ids())
        .collect();
    let distinct = table.column(key_cols[0]).distinct_count();
    let chunk_rows = (table.column(key_cols[0]).nominal_segment_rows().max(1) as usize).min(rows);
    let starts: Vec<usize> = (0..rows).step_by(chunk_rows).collect();

    // Per-chunk partials: the chunk's distinct keys in local first-occurrence
    // order — (first row offset within the chunk, key ids) — plus, when
    // groups are requested, each row's local group index.
    struct Partial {
        firsts: Vec<(u32, Vec<u32>)>,
        local_groups: Option<Vec<u32>>,
    }
    let single = key_cols.len() == 1;
    // A dense per-chunk group table costs O(distinct) zeroing per chunk —
    // fine while the dictionary is small relative to a chunk, ruinous for
    // high-cardinality keys (distinct ≈ rows would make the fan-out
    // O(chunks × rows)); fall back to a hash map keyed by ids actually
    // seen, like `SegmentChunk::from_ids`.
    let dense = distinct as u64 <= (chunk_rows as u64).max(4096);
    let partials: Vec<Partial> = crate::par::map_parallel(starts.clone(), |start| {
        let end = (start + chunk_rows).min(rows);
        let mut firsts: Vec<(u32, Vec<u32>)> = Vec::new();
        let mut local_groups: Option<Vec<u32>> =
            want_groups.then(|| Vec::with_capacity(end - start));
        if single && dense {
            // Fast path: group identity is the single column's value id.
            let ids = &id_cols[0][start..end];
            let mut group_of_id: Vec<u32> = vec![u32::MAX; distinct];
            for (off, &id) in ids.iter().enumerate() {
                let slot = &mut group_of_id[id as usize];
                if *slot == u32::MAX {
                    *slot = firsts.len() as u32;
                    firsts.push((off as u32, vec![id]));
                }
                if let Some(g) = local_groups.as_mut() {
                    g.push(*slot);
                }
            }
        } else if single {
            let ids = &id_cols[0][start..end];
            let mut seen: HashMap<u32, u32> = HashMap::new();
            for (off, &id) in ids.iter().enumerate() {
                let next = seen.len() as u32;
                let group = *seen.entry(id).or_insert_with(|| {
                    firsts.push((off as u32, vec![id]));
                    next
                });
                if let Some(g) = local_groups.as_mut() {
                    g.push(group);
                }
            }
        } else {
            let mut seen: HashMap<Vec<u32>, u32> = HashMap::new();
            let mut key: Vec<u32> = vec![0; id_cols.len()];
            for row in start..end {
                for (slot, c) in key.iter_mut().zip(&id_cols) {
                    *slot = c[row];
                }
                // One clone per *miss* (new distinct key), not per row.
                let group = match seen.get(&key) {
                    Some(&g) => g,
                    None => {
                        let g = seen.len() as u32;
                        firsts.push(((row - start) as u32, key.clone()));
                        seen.insert(key.clone(), g);
                        g
                    }
                };
                if let Some(g) = local_groups.as_mut() {
                    g.push(group);
                }
            }
        }
        Partial {
            firsts,
            local_groups,
        }
    });

    // Sequential merge over the partial maps only — O(distinct keys per
    // chunk), not O(rows): chunks are visited in row order, so the first
    // chunk containing a key fixes its global group id and position.
    let mut positions: Vec<u64> = Vec::new();
    let mut local_to_global: Vec<Vec<u32>> = Vec::with_capacity(partials.len());
    if single {
        let mut group_of_id: Vec<u32> = vec![u32::MAX; distinct];
        for (&start, partial) in starts.iter().zip(&partials) {
            let mut map = Vec::with_capacity(partial.firsts.len());
            for (off, key) in &partial.firsts {
                let slot = &mut group_of_id[key[0] as usize];
                if *slot == u32::MAX {
                    *slot = positions.len() as u32;
                    positions.push(start as u64 + *off as u64);
                }
                map.push(*slot);
            }
            local_to_global.push(map);
        }
    } else {
        let mut seen: HashMap<&[u32], u32> = HashMap::new();
        for (&start, partial) in starts.iter().zip(&partials) {
            let mut map = Vec::with_capacity(partial.firsts.len());
            for (off, key) in &partial.firsts {
                let next = positions.len() as u32;
                let group = *seen.entry(key.as_slice()).or_insert_with(|| {
                    positions.push(start as u64 + *off as u64);
                    next
                });
                map.push(group);
            }
            local_to_global.push(map);
        }
    }

    // Second fan-out: rewrite each chunk's local groups through its
    // local → global map, then splice in chunk order.
    let groups = want_groups.then(|| {
        let tasks: Vec<(Partial, Vec<u32>)> = partials.into_iter().zip(local_to_global).collect();
        let rewritten = crate::par::map_parallel(tasks, |(partial, map)| {
            partial
                .local_groups
                .expect("groups requested")
                .into_iter()
                .map(|lg| map[lg as usize])
                .collect::<Vec<u32>>()
        });
        let mut out = Vec::with_capacity(rows);
        for chunk in rewritten {
            out.extend_from_slice(&chunk);
        }
        out
    });
    (positions, groups)
}

/// Bitmap-filters each column to `positions` with one pool task per
/// (column × segment) — both encodings fan out the same way; each task
/// produces a chunk in its column's encoding — then reassembles each
/// column's chunks into a fresh segment directory. Shared by DECOMPOSE and
/// PARTITION.
pub(crate) fn filter_columns_by_positions(
    columns: &[&EncodedColumn],
    positions: &[u64],
) -> Vec<Arc<EncodedColumn>> {
    // Task list: (column index, segment index, span of `positions`).
    let mut tasks = Vec::new();
    for (ci, col) in columns.iter().enumerate() {
        for (seg_idx, range) in col.position_spans(positions) {
            tasks.push((ci, seg_idx, range));
        }
    }
    let chunks = crate::par::map_parallel(tasks, |(ci, seg_idx, range)| {
        (
            ci,
            columns[ci].filter_segment_chunk(seg_idx, &positions[range]),
        )
    });
    // Tasks were generated in ascending (column, segment) order and
    // map_parallel preserves order, so chunks splice back sequentially.
    let mut assemblers: Vec<cods_storage::EncodedAssembler> =
        columns.iter().map(|c| c.assembler()).collect();
    for (ci, chunk) in chunks {
        assemblers[ci].push_chunk(chunk);
    }
    columns
        .iter()
        .zip(assemblers)
        .map(|(col, asm)| Arc::new(col.from_assembler_compacting(asm)))
        .collect()
}

/// Mask-driven variant of [`filter_columns_by_positions`]: splits the
/// selection mask along each column's segment boundaries (compressed-form,
/// one pass) and fans out one task per (column × segment). Never
/// materializes a whole-column position list, so PARTITION's memory stays
/// O(segment) regardless of table size.
pub(crate) fn filter_columns_by_mask(
    columns: &[&EncodedColumn],
    mask: &cods_bitmap::Wah,
) -> Vec<Arc<EncodedColumn>> {
    let mut tasks = Vec::new();
    for (ci, col) in columns.iter().enumerate() {
        for (seg_idx, mask_seg) in col.split_mask(mask).into_iter().enumerate() {
            tasks.push((ci, seg_idx, mask_seg));
        }
    }
    let chunks = crate::par::map_parallel(tasks, |(ci, seg_idx, mask_seg)| {
        (
            ci,
            columns[ci].filter_segment_mask_chunk(seg_idx, &mask_seg),
        )
    });
    let mut assemblers: Vec<cods_storage::EncodedAssembler> =
        columns.iter().map(|c| c.assembler()).collect();
    for (ci, chunk) in chunks {
        assemblers[ci].push_chunk(chunk);
    }
    columns
        .iter()
        .zip(assemblers)
        .map(|(col, asm)| Arc::new(col.from_assembler_compacting(asm)))
        .collect()
}

/// Executes a data-level decomposition of `input`.
///
/// Schema keys of the outputs: the changed table is keyed by the common
/// columns; the unchanged table keeps no key declaration.
pub fn decompose(input: &Table, spec: &DecomposeSpec) -> Result<DecomposeOutcome> {
    let mut tracker = StatusTracker::new();

    // Shape validation (coverage, overlap, existence).
    let common =
        check_decomposition_shape(input.schema(), &spec.unchanged_cols, &spec.changed_cols)?;
    tracker.step("validate decomposition shape");

    // Step 0 — reuse: the unchanged table shares the input's columns.
    let unchanged_names: Vec<&str> = spec.unchanged_cols.iter().map(String::as_str).collect();
    let unchanged_schema = input.schema().project(&unchanged_names, &[])?;
    let unchanged_columns: Vec<Arc<EncodedColumn>> = unchanged_names
        .iter()
        .map(|n| Ok(Arc::clone(input.column_by_name(n)?)))
        .collect::<Result<_>>()?;
    let unchanged = Table::new(&spec.unchanged_name, unchanged_schema, unchanged_columns)?;
    tracker.step_items("reuse unchanged columns", unchanged.arity() as u64);

    // Step 1 — distinction over the common (key) columns.
    let key_idx: Vec<usize> = common
        .iter()
        .map(|n| Ok(input.schema().index_of(n)?))
        .collect::<Result<_>>()?;
    let (positions, groups) = distinction(input, &key_idx, spec.verify_fd);
    tracker.step_items("distinction", positions.len() as u64);

    // Property 2 — every row of a key group must agree with its
    // representative on the changed table's non-key columns.
    if let Some(groups) = groups {
        for name in spec.changed_cols.iter().filter(|c| !common.contains(c)) {
            let ids = input.column_by_name(name)?.value_ids();
            let rep: Vec<u32> = positions.iter().map(|&p| ids[p as usize]).collect();
            for (row, &g) in groups.iter().enumerate() {
                if ids[row] != rep[g as usize] {
                    return Err(EvolutionError::FdViolation(format!(
                        "column {name:?} differs within key group at row {row}: \
                         the decomposition would lose data"
                    )));
                }
            }
        }
        tracker.step("verify functional dependency");
    }

    // Step 2 — bitmap filtering of every changed-side column, fanned out as
    // one task per (column × input segment). Each task shrinks one
    // segment's bitmaps to the positions falling in its row range; the
    // chunks are then spliced back into segment directories per column.
    let changed_names: Vec<&str> = spec.changed_cols.iter().map(String::as_str).collect();
    let common_refs: Vec<&str> = common.iter().map(String::as_str).collect();
    let changed_schema = input.schema().project(&changed_names, &common_refs)?;
    let to_filter: Vec<&EncodedColumn> = changed_names
        .iter()
        .map(|n| Ok(input.column_by_name(n)?.as_ref()))
        .collect::<Result<_>>()?;
    let changed_columns = filter_columns_by_positions(&to_filter, &positions);
    let changed = Table::new(&spec.changed_name, changed_schema, changed_columns)?;
    tracker.step_items(
        "bitmap filtering",
        (changed.arity() as u64) * positions.len() as u64,
    );

    Ok(DecomposeOutcome {
        unchanged,
        changed,
        distinct_keys: positions.len() as u64,
        status: tracker.finish(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cods_storage::{Schema, Value, ValueType};

    fn figure1() -> Table {
        let schema = Schema::build(
            &[
                ("employee", ValueType::Str),
                ("skill", ValueType::Str),
                ("address", ValueType::Str),
            ],
            &[],
        )
        .unwrap();
        let rows: Vec<Vec<Value>> = [
            ("Jones", "Typing", "425 Grant Ave"),
            ("Jones", "Shorthand", "425 Grant Ave"),
            ("Roberts", "Light Cleaning", "747 Industrial Way"),
            ("Ellis", "Alchemy", "747 Industrial Way"),
            ("Jones", "Whittling", "425 Grant Ave"),
            ("Ellis", "Juggling", "747 Industrial Way"),
            ("Harrison", "Light Cleaning", "425 Grant Ave"),
        ]
        .iter()
        .map(|&(e, s, a)| vec![Value::str(e), Value::str(s), Value::str(a)])
        .collect();
        Table::from_rows("R", schema, &rows).unwrap()
    }

    fn figure1_spec() -> DecomposeSpec {
        DecomposeSpec::new("S", &["employee", "skill"], "T", &["employee", "address"])
    }

    #[test]
    fn figure1_decomposition() {
        let r = figure1();
        let out = decompose(&r, &figure1_spec()).unwrap();
        assert_eq!(out.unchanged.rows(), 7);
        assert_eq!(out.changed.rows(), 4);
        assert_eq!(out.distinct_keys, 4);
        out.unchanged.check_invariants().unwrap();
        out.changed.check_invariants().unwrap();
        out.changed.verify_key().unwrap();

        // T is exactly the employee → address mapping of Figure 1.
        let mut t_rows = out.changed.to_rows();
        t_rows.sort();
        assert_eq!(
            t_rows,
            vec![
                vec![Value::str("Ellis"), Value::str("747 Industrial Way")],
                vec![Value::str("Harrison"), Value::str("425 Grant Ave")],
                vec![Value::str("Jones"), Value::str("425 Grant Ave")],
                vec![Value::str("Roberts"), Value::str("747 Industrial Way")],
            ]
        );
    }

    #[test]
    fn unchanged_side_shares_columns_with_input() {
        let r = figure1();
        let out = decompose(&r, &figure1_spec()).unwrap();
        assert!(r.shares_column_with(&out.unchanged, "employee"));
        assert!(r.shares_column_with(&out.unchanged, "skill"));
    }

    #[test]
    fn status_reports_paper_steps() {
        let r = figure1();
        let out = decompose(&r, &figure1_spec()).unwrap();
        assert!(out.status.step("distinction").is_some());
        assert!(out.status.step("bitmap filtering").is_some());
        assert_eq!(out.status.step("distinction").unwrap().items, Some(4));
    }

    #[test]
    fn fd_violation_detected() {
        // Same employee, two addresses → employee → address does not hold.
        let schema = Schema::build(
            &[
                ("employee", ValueType::Str),
                ("skill", ValueType::Str),
                ("address", ValueType::Str),
            ],
            &[],
        )
        .unwrap();
        let rows = vec![
            vec![Value::str("Jones"), Value::str("Typing"), Value::str("A")],
            vec![Value::str("Jones"), Value::str("Welding"), Value::str("B")],
        ];
        let r = Table::from_rows("R", schema, &rows).unwrap();
        let err = decompose(&r, &figure1_spec());
        assert!(matches!(err, Err(EvolutionError::FdViolation(_))));
        // Trusted mode silently takes the representative row.
        let out = decompose(&r, &figure1_spec().trusted()).unwrap();
        assert_eq!(out.changed.rows(), 1);
        assert_eq!(out.changed.row(0)[1], Value::str("A"));
    }

    #[test]
    fn composite_key_distinction() {
        let schema = Schema::build(
            &[
                ("a", ValueType::Int),
                ("b", ValueType::Int),
                ("c", ValueType::Int),
            ],
            &[],
        )
        .unwrap();
        // (a, b) → c holds; 4 distinct (a, b) pairs.
        let rows: Vec<Vec<Value>> = [
            (1, 1, 10),
            (1, 2, 20),
            (2, 1, 30),
            (1, 1, 10),
            (2, 2, 40),
            (1, 2, 20),
        ]
        .iter()
        .map(|&(a, b, c)| vec![Value::int(a), Value::int(b), Value::int(c)])
        .collect();
        let r = Table::from_rows("R", schema, &rows).unwrap();
        let spec = DecomposeSpec::new("S", &["a", "b"], "T", &["a", "b", "c"]);
        let out = decompose(&r, &spec).unwrap();
        assert_eq!(out.distinct_keys, 4);
        assert_eq!(out.changed.rows(), 4);
        out.changed.verify_key().unwrap();
    }

    #[test]
    fn distinction_positions_are_first_occurrences() {
        let r = figure1();
        let (positions, groups) = distinction(&r, &[0], true);
        assert_eq!(positions, vec![0, 2, 3, 6]); // Jones, Roberts, Ellis, Harrison
        let g = groups.unwrap();
        assert_eq!(g, vec![0, 0, 1, 2, 0, 2, 3]);
    }

    #[test]
    fn chunked_distinction_matches_single_chunk() {
        // Small segments force many parallel partial maps; the merged
        // result must be identical — positions, group numbering, and all —
        // to the single-chunk scan, for single and composite keys.
        let schema = Schema::build(
            &[
                ("a", ValueType::Int),
                ("b", ValueType::Int),
                ("c", ValueType::Int),
            ],
            &[],
        )
        .unwrap();
        let rows: Vec<Vec<Value>> = (0..500)
            .map(|i| {
                vec![
                    Value::int(i * 7 % 23),
                    Value::int(i % 3),
                    Value::int(i * 11 % 9),
                ]
            })
            .collect();
        let chunked = Table::from_rows_with_segment_rows("R", schema.clone(), &rows, 16).unwrap();
        let mono = Table::from_rows_with_segment_rows("R", schema, &rows, 1 << 40).unwrap();
        assert!(chunked.column(0).segment_count() > 8);
        assert_eq!(mono.column(0).segment_count(), 1);
        for key_cols in [vec![0usize], vec![0, 1], vec![2, 1, 0]] {
            for want_groups in [false, true] {
                let (pc, gc) = distinction(&chunked, &key_cols, want_groups);
                let (pm, gm) = distinction(&mono, &key_cols, want_groups);
                assert_eq!(pc, pm, "positions differ for key {key_cols:?}");
                assert_eq!(gc, gm, "groups differ for key {key_cols:?}");
                assert!(pc.windows(2).all(|w| w[0] < w[1]), "positions sorted");
            }
        }
    }

    #[test]
    fn decompose_empty_table() {
        let schema = Schema::build(&[("a", ValueType::Int), ("b", ValueType::Int)], &[]).unwrap();
        let r = Table::from_rows("R", schema, &[]).unwrap();
        let spec = DecomposeSpec::new("S", &["a"], "T", &["a", "b"]);
        let out = decompose(&r, &spec).unwrap();
        assert_eq!(out.unchanged.rows(), 0);
        assert_eq!(out.changed.rows(), 0);
    }
}
