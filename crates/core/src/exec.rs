//! **Plan execution** — waves of independent operators over an in-memory
//! workspace, then one atomic catalog commit.
//!
//! The executor never touches the catalog while running: every node reads
//! input tables from (and writes output tables to) a workspace seeded with
//! the plan's snapshot. Intermediates therefore live only in memory, a
//! failing node anywhere aborts the whole plan with the catalog untouched,
//! and the final state lands through
//! [`Catalog::commit_evolution`](cods_storage::Catalog::commit_evolution)
//! in a single write-locked step — or not at all, if the catalog moved
//! since the snapshot ([`StorageError::Conflict`](cods_storage::StorageError)).

use crate::decompose::decompose;
use crate::error::{EvolutionError, Result};
use crate::merge::merge;
use crate::plan::{EvolutionPlan, PlanOp};
use crate::platform::ExecutionRecord;
use crate::simple_ops::{self, ColumnFill};
use crate::smo::Smo;
use crate::status::{EvolutionStatus, PlanLog, PlanStageLog, StatusTracker};
use cods_storage::{ColumnDef, EncodedColumn, Schema, StorageError, Table};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// The in-memory table namespace a plan executes against.
pub(crate) type Workspace = BTreeMap<String, Arc<Table>>;

/// The result of one executed plan.
#[derive(Clone, Debug)]
pub struct PlanReport {
    /// Per-node execution records, in node order (also appended to the
    /// platform history, grouped under one plan id).
    pub records: Vec<ExecutionRecord>,
    /// Per-stage log: planning, waves, commit.
    pub log: PlanLog,
    /// Tables the nodes produced in total — what an eager one-at-a-time
    /// execution would have materialized into the catalog.
    pub staged_puts: usize,
    /// Tables actually written by the atomic commit.
    pub committed_puts: usize,
    /// Tables the atomic commit removed.
    pub committed_drops: usize,
    /// Intermediate tables that never entered the catalog.
    pub elided: Vec<String>,
}

/// What one node hands back: catalog-free mutations plus its status log.
struct NodeOutcome {
    drops: Vec<String>,
    puts: Vec<Table>,
    status: EvolutionStatus,
}

fn get(ws: &Workspace, name: &str) -> Result<Arc<Table>> {
    ws.get(name)
        .cloned()
        .ok_or_else(|| EvolutionError::Storage(StorageError::UnknownTable(name.to_string())))
}

fn run_smo(smo: &Smo, ws: &Workspace) -> Result<NodeOutcome> {
    let none = EvolutionStatus::default();
    match smo {
        Smo::CreateTable { name, schema } => Ok(NodeOutcome {
            drops: vec![],
            puts: vec![simple_ops::create_table(name, schema.clone())?],
            status: none,
        }),
        Smo::DropTable { name } => {
            get(ws, name)?;
            Ok(NodeOutcome {
                drops: vec![name.clone()],
                puts: vec![],
                status: none,
            })
        }
        Smo::RenameTable { from, to } => {
            let t = get(ws, from)?;
            Ok(NodeOutcome {
                drops: vec![from.clone()],
                puts: vec![t.renamed(to)],
                status: none,
            })
        }
        Smo::CopyTable { from, to } => {
            let t = get(ws, from)?;
            Ok(NodeOutcome {
                drops: vec![],
                puts: vec![t.renamed(to)],
                status: none,
            })
        }
        Smo::UnionTables {
            left,
            right,
            output,
            drop_inputs,
        } => {
            let l = get(ws, left)?;
            let r = get(ws, right)?;
            let (t, status) = simple_ops::union_tables(&l, &r, output)?;
            let mut drops = Vec::new();
            if *drop_inputs {
                drops.push(left.clone());
                if right != left {
                    drops.push(right.clone());
                }
            }
            Ok(NodeOutcome {
                drops,
                puts: vec![t],
                status,
            })
        }
        Smo::PartitionTable {
            input,
            predicate,
            satisfying,
            rest,
        } => {
            let t = get(ws, input)?;
            let (sat, others, status) =
                simple_ops::partition_table(&t, predicate, satisfying, rest)?;
            Ok(NodeOutcome {
                drops: vec![input.clone()],
                puts: vec![sat, others],
                status,
            })
        }
        Smo::DecomposeTable { input, spec } => {
            let t = get(ws, input)?;
            let out = decompose(&t, spec)?;
            Ok(NodeOutcome {
                drops: vec![input.clone()],
                puts: vec![out.unchanged, out.changed],
                status: out.status,
            })
        }
        Smo::MergeTables {
            left,
            right,
            output,
            strategy,
        } => {
            let l = get(ws, left)?;
            let r = get(ws, right)?;
            let out = merge(&l, &r, output, strategy)?;
            Ok(NodeOutcome {
                drops: vec![],
                puts: vec![out.output],
                status: out.status,
            })
        }
        Smo::AddColumn {
            table,
            column,
            fill,
        } => {
            let t = get(ws, table)?;
            let (out, status) = simple_ops::add_column(&t, column.clone(), fill)?;
            Ok(NodeOutcome {
                drops: vec![],
                puts: vec![out],
                status,
            })
        }
        Smo::DropColumn { table, column } => {
            let t = get(ws, table)?;
            let (out, status) = simple_ops::drop_column(&t, column)?;
            Ok(NodeOutcome {
                drops: vec![],
                puts: vec![out],
                status,
            })
        }
        Smo::RenameColumn { table, from, to } => {
            let t = get(ws, table)?;
            let (out, status) = simple_ops::rename_column(&t, from, to)?;
            Ok(NodeOutcome {
                drops: vec![],
                puts: vec![out],
                status,
            })
        }
    }
}

/// Where a fused output column comes from: carried over from the input
/// table, or built fresh by a surviving ADD COLUMN.
enum ColSource {
    Input(usize),
    Added { def: ColumnDef, fill: ColumnFill },
}

/// Runs a fused ADD / DROP / RENAME COLUMN chain as one per-table pass:
/// the net column set is computed first, then carried columns are shared
/// by reference and each *surviving* added column is built exactly once —
/// an add that a later drop cancels costs nothing. The schema (including
/// key-declaration behavior) comes out exactly as the sequential ops would
/// produce it.
fn run_fused(table: &str, ops: &[Smo], ws: &Workspace) -> Result<NodeOutcome> {
    let input = get(ws, table)?;
    let mut tracker = StatusTracker::new();

    // Net effect: the running schema goes through the same
    // `simple_ops::*_column_schema` appliers the sequential executors use
    // (one source of truth for validation, ordering, and key behavior),
    // while `entries` tracks where each surviving column's data comes
    // from. The two stay position-aligned: add appends, drop removes in
    // place, rename renames in place.
    let mut schema: Schema = input.schema().clone();
    let mut entries: Vec<ColSource> = (0..input.arity()).map(ColSource::Input).collect();
    let mut cancelled = 0u64;
    for op in ops {
        match op {
            Smo::AddColumn { column, fill, .. } => {
                schema = simple_ops::add_column_schema(&schema, column, fill)?;
                entries.push(ColSource::Added {
                    def: column.clone(),
                    fill: fill.clone(),
                });
            }
            Smo::DropColumn { column, .. } => {
                let idx = schema.index_of(column)?;
                schema = simple_ops::drop_column_schema(&schema, column)?;
                if matches!(entries[idx], ColSource::Added { .. }) {
                    cancelled += 1;
                }
                entries.remove(idx);
            }
            Smo::RenameColumn { from, to, .. } => {
                schema = simple_ops::rename_column_schema(&schema, from, to)?;
            }
            other => {
                return Err(EvolutionError::InvalidOperator(format!(
                    "non-column operator in fused pass: {other}"
                )));
            }
        }
    }
    tracker.step_items("net column plan", ops.len() as u64);

    let mut columns: Vec<Arc<EncodedColumn>> = Vec::with_capacity(entries.len());
    let mut built = 0u64;
    for src in &entries {
        match src {
            ColSource::Input(i) => columns.push(Arc::clone(input.column(*i))),
            ColSource::Added { def, fill } => {
                columns.push(Arc::new(simple_ops::build_fill_column(
                    input.rows(),
                    def,
                    fill,
                )?));
                built += 1;
            }
        }
    }
    tracker.step_items("build surviving added columns", built);
    if cancelled > 0 {
        tracker.step_items("cancelled add-then-drop columns", cancelled);
    }
    let out = Table::new(table, schema, columns).map_err(EvolutionError::Storage)?;
    tracker.step("assemble fused table");
    Ok(NodeOutcome {
        drops: vec![],
        puts: vec![out],
        status: tracker.finish(),
    })
}

fn run_node(op: &PlanOp, ws: &Workspace) -> Result<NodeOutcome> {
    match op {
        PlanOp::Single(smo) => run_smo(smo, ws),
        PlanOp::FusedColumns { table, ops } => run_fused(table, ops, ws),
    }
}

/// Executes `plan`: waves run concurrently on the shared pool, mutations
/// stage into the workspace, and the final state commits atomically.
pub(crate) fn run(plan: &EvolutionPlan<'_>) -> Result<PlanReport> {
    let t0 = Instant::now();
    let mut ws: Workspace = plan.snapshot.clone();
    let mut stages: Vec<PlanStageLog> = Vec::with_capacity(plan.waves.len());
    let mut records: Vec<ExecutionRecord> = Vec::with_capacity(plan.nodes.len());
    let mut record_slots: Vec<Option<ExecutionRecord>> = Vec::new();
    record_slots.resize_with(plan.nodes.len(), || None);
    let mut staged_puts = 0usize;

    for (wave_idx, wave) in plan.waves.iter().enumerate() {
        // Every node in a wave only reads tables produced by earlier waves,
        // so the whole wave runs against one immutable workspace.
        let outcomes = crate::par::map_parallel(wave.clone(), |i| run_node(&plan.nodes[i].op, &ws));
        let mut stage = PlanStageLog {
            wave: wave_idx,
            operators: Vec::with_capacity(wave.len()),
        };
        for (&i, outcome) in wave.iter().zip(outcomes) {
            // First failure aborts the whole plan: the workspace is
            // discarded and the catalog was never touched.
            let outcome = outcome?;
            staged_puts += outcome.puts.len();
            for d in &outcome.drops {
                ws.remove(d);
            }
            for t in outcome.puts {
                ws.insert(t.name().to_string(), Arc::new(t));
            }
            let operator = plan.nodes[i].op.to_string();
            stage
                .operators
                .push((operator.clone(), outcome.status.clone()));
            record_slots[i] = Some(ExecutionRecord {
                operator,
                status: outcome.status,
                plan_id: None,
            });
        }
        stages.push(stage);
    }

    // Stage the diff against the snapshot and commit it in one step.
    let commit_start = Instant::now();
    let mut drops: Vec<String> = Vec::new();
    for name in plan.snapshot.keys() {
        if !ws.contains_key(name) {
            drops.push(name.clone());
        }
    }
    let mut puts: Vec<Arc<Table>> = Vec::new();
    for (name, t) in &ws {
        match plan.snapshot.get(name) {
            Some(old) if Arc::ptr_eq(old, t) => {}
            _ => puts.push(Arc::clone(t)),
        }
    }
    let committed_puts = puts.len();
    let committed_drops = drops.len();
    // A plan whose net diff is empty (e.g. an empty script) commits
    // nothing: no version bump, no spurious conflicts for other in-flight
    // snapshots.
    let mut durable = false;
    if !drops.is_empty() || !puts.is_empty() {
        let receipt = plan
            .cods
            .catalog()
            .commit_evolution(plan.base_version, &drops, puts)
            .map_err(EvolutionError::Storage)?;
        durable = receipt.durable;
    }
    let commit = commit_start.elapsed();

    for slot in record_slots {
        records.push(slot.expect("every node executed"));
    }
    Ok(PlanReport {
        records,
        log: PlanLog {
            planning: plan.planning,
            stages,
            commit,
            total: plan.planning + t0.elapsed(),
            durable,
        },
        staged_puts,
        committed_puts,
        committed_drops,
        elided: plan.elided_intermediates().to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Cods;
    use cods_storage::{Value, ValueType};

    fn platform() -> Cods {
        let cods = Cods::new();
        let schema = Schema::build(
            &[
                ("k", ValueType::Int),
                ("a", ValueType::Int),
                ("d", ValueType::Int),
            ],
            &[],
        )
        .unwrap();
        let rows: Vec<Vec<Value>> = (0..50)
            .map(|i| vec![Value::int(i % 5), Value::int(i), Value::int((i % 5) * 3)])
            .collect();
        cods.catalog()
            .create(Table::from_rows("R", schema, &rows).unwrap())
            .unwrap();
        cods
    }

    #[test]
    fn fused_pass_matches_sequential_ops() {
        let seq = platform();
        seq.execute_all(
            crate::parse_script(
                "ADD COLUMN x int DEFAULT 9 TO R\n\
             RENAME COLUMN x TO y IN R\n\
             ADD COLUMN gone str DEFAULT 'z' TO R\n\
             DROP COLUMN gone FROM R\n\
             DROP COLUMN a FROM R",
            )
            .unwrap(),
        )
        .unwrap();

        let fused = platform();
        let report = fused
            .plan_script(
                "ADD COLUMN x int DEFAULT 9 TO R\n\
                 RENAME COLUMN x TO y IN R\n\
                 ADD COLUMN gone str DEFAULT 'z' TO R\n\
                 DROP COLUMN gone FROM R\n\
                 DROP COLUMN a FROM R",
            )
            .unwrap()
            .execute()
            .unwrap();
        // One node, one staged table, and the cancelled add was never built.
        assert_eq!(report.records.len(), 1);
        assert_eq!(report.staged_puts, 1);
        let status = &report.records[0].status;
        assert_eq!(
            status.step("build surviving added columns").unwrap().items,
            Some(1)
        );
        assert_eq!(
            status
                .step("cancelled add-then-drop columns")
                .unwrap()
                .items,
            Some(1)
        );

        let a = seq.table("R").unwrap();
        let b = fused.table("R").unwrap();
        assert_eq!(a.schema(), b.schema());
        assert_eq!(a.to_rows(), b.to_rows());
        // Carried columns are shared with the input, not copied.
        assert!(b.schema().names().contains(&"k"));
    }

    #[test]
    fn failing_wave_leaves_catalog_untouched() {
        let cods = platform();
        // Force an FD violation: a does not functionally depend on k, so
        // the decompose fails at run time (after the COPY already ran).
        let plan = cods
            .plan_script("COPY TABLE R TO KEEP\nDECOMPOSE TABLE R INTO S (k, d), T (k, a)")
            .unwrap();
        let err = plan.execute();
        assert!(matches!(err, Err(EvolutionError::FdViolation(_))));
        // Nothing committed — not even the COPY that succeeded in wave 0.
        assert_eq!(cods.catalog().table_names(), vec!["R"]);
        assert!(cods.history().is_empty());
    }

    #[test]
    fn concurrent_catalog_mutation_conflicts() {
        let cods = platform();
        let plan = cods.plan_script("COPY TABLE R TO R2").unwrap();
        cods.execute(Smo::AddColumn {
            table: "R".into(),
            column: ColumnDef::new("racer", ValueType::Int),
            fill: ColumnFill::Default(Value::int(0)),
        })
        .unwrap();
        let err = plan.execute();
        assert!(matches!(
            err,
            Err(EvolutionError::Storage(StorageError::Conflict(_)))
        ));
        assert!(!cods.catalog().contains("R2"));
    }

    #[test]
    fn commit_stages_only_the_final_state() {
        let cods = platform();
        let v0 = cods.catalog().version();
        let report = cods
            .plan_script(
                "DECOMPOSE TABLE R INTO S (k, a), T (k, d)\n\
                 MERGE TABLES S, T INTO R2\n\
                 DROP TABLE S\nDROP TABLE T",
            )
            .unwrap()
            .execute()
            .unwrap();
        // The nodes staged 3 tables, but only R2 lands (plus R's drop):
        // S and T never enter the catalog.
        assert_eq!(report.staged_puts, 3);
        assert_eq!(report.committed_puts, 1);
        assert_eq!(report.committed_drops, 1);
        assert_eq!(report.elided, vec!["S".to_string(), "T".to_string()]);
        assert_eq!(cods.catalog().table_names(), vec!["R2"]);
        // One version bump for the whole script.
        assert_eq!(cods.catalog().version(), v0 + 1);
        assert_eq!(report.log.stages.len(), 3);
    }
}
