//! Schema-level analysis backing the evolution operators: common attributes,
//! lossless-join checking, and functional-dependency verification — the two
//! properties of Section 2.4 that make data-level decomposition correct.

use crate::error::{EvolutionError, Result};
use cods_storage::{Schema, Table};
use std::collections::HashMap;

/// The columns two schemas share, in the first schema's order.
pub fn common_columns(a: &Schema, b: &Schema) -> Vec<String> {
    a.names()
        .into_iter()
        .filter(|n| b.contains(n))
        .map(str::to_string)
        .collect()
}

/// Validates the *shape* of a decomposition of `input` into column sets
/// `left_cols` and `right_cols`:
///
/// * every output column exists in the input;
/// * the union of the outputs covers the input exactly;
/// * the two outputs share at least one column (the join attributes).
///
/// Returns the common columns. Losslessness additionally requires the common
/// columns to be a key of one output — that is a *data* property checked by
/// [`fd_holds`] / the decomposition executor.
pub fn check_decomposition_shape(
    input: &Schema,
    left_cols: &[String],
    right_cols: &[String],
) -> Result<Vec<String>> {
    for n in left_cols.iter().chain(right_cols) {
        if !input.contains(n) {
            return Err(EvolutionError::InvalidOperator(format!(
                "output column {n:?} does not exist in the input table"
            )));
        }
    }
    for set in [left_cols, right_cols] {
        let mut seen = std::collections::HashSet::new();
        for n in set {
            if !seen.insert(n) {
                return Err(EvolutionError::InvalidOperator(format!(
                    "duplicate column {n:?} in output spec"
                )));
            }
        }
    }
    let missing: Vec<&str> = input
        .names()
        .into_iter()
        .filter(|n| !left_cols.iter().any(|c| c == n) && !right_cols.iter().any(|c| c == n))
        .collect();
    if !missing.is_empty() {
        return Err(EvolutionError::LossyDecomposition(format!(
            "input columns {missing:?} appear in neither output"
        )));
    }
    let common: Vec<String> = left_cols
        .iter()
        .filter(|n| right_cols.contains(n))
        .cloned()
        .collect();
    if common.is_empty() {
        return Err(EvolutionError::LossyDecomposition(
            "outputs share no columns, so the join cannot reconstruct the input".into(),
        ));
    }
    Ok(common)
}

/// Checks whether the functional dependency `lhs → rhs` holds in `table`.
///
/// Runs one pass over the compressed columns' value ids (never touching the
/// values themselves): for every distinct lhs combination the rhs combination
/// must be constant.
pub fn fd_holds(table: &Table, lhs: &[&str], rhs: &[&str]) -> Result<bool> {
    let lhs_ids: Vec<Vec<u32>> = lhs
        .iter()
        .map(|n| Ok(table.column_by_name(n)?.value_ids()))
        .collect::<Result<_>>()?;
    let rhs_ids: Vec<Vec<u32>> = rhs
        .iter()
        .map(|n| Ok(table.column_by_name(n)?.value_ids()))
        .collect::<Result<_>>()?;
    let mut witness: HashMap<Vec<u32>, Vec<u32>> = HashMap::new();
    for row in 0..table.rows() as usize {
        let l: Vec<u32> = lhs_ids.iter().map(|c| c[row]).collect();
        let r: Vec<u32> = rhs_ids.iter().map(|c| c[row]).collect();
        match witness.get(&l) {
            Some(prev) if *prev != r => return Ok(false),
            Some(_) => {}
            None => {
                witness.insert(l, r);
            }
        }
    }
    Ok(true)
}

/// Determines which output of a decomposition can be the *changed* (shrunk)
/// side: the common columns must functionally determine its remaining
/// columns (Property 2). Returns `true` if `candidate_cols \ common` is
/// functionally determined by `common` in `input`.
pub fn can_be_changed_side(
    input: &Table,
    candidate_cols: &[String],
    common: &[String],
) -> Result<bool> {
    let rest: Vec<&str> = candidate_cols
        .iter()
        .filter(|c| !common.contains(c))
        .map(String::as_str)
        .collect();
    if rest.is_empty() {
        // The candidate is exactly the common columns — trivially valid.
        return Ok(true);
    }
    let lhs: Vec<&str> = common.iter().map(String::as_str).collect();
    fd_holds(input, &lhs, &rest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cods_storage::{Value, ValueType};

    fn figure1() -> Table {
        let schema = Schema::build(
            &[
                ("employee", ValueType::Str),
                ("skill", ValueType::Str),
                ("address", ValueType::Str),
            ],
            &[],
        )
        .unwrap();
        let rows: Vec<Vec<Value>> = [
            ("Jones", "Typing", "425 Grant Ave"),
            ("Jones", "Shorthand", "425 Grant Ave"),
            ("Roberts", "Light Cleaning", "747 Industrial Way"),
            ("Ellis", "Alchemy", "747 Industrial Way"),
            ("Jones", "Whittling", "425 Grant Ave"),
            ("Ellis", "Juggling", "747 Industrial Way"),
            ("Harrison", "Light Cleaning", "425 Grant Ave"),
        ]
        .iter()
        .map(|&(e, s, a)| vec![Value::str(e), Value::str(s), Value::str(a)])
        .collect();
        Table::from_rows("R", schema, &rows).unwrap()
    }

    #[test]
    fn common_columns_found() {
        let a = Schema::build(&[("x", ValueType::Int), ("y", ValueType::Int)], &[]).unwrap();
        let b = Schema::build(&[("y", ValueType::Int), ("z", ValueType::Int)], &[]).unwrap();
        assert_eq!(common_columns(&a, &b), vec!["y"]);
    }

    #[test]
    fn shape_check_accepts_figure1() {
        let r = figure1();
        let common = check_decomposition_shape(
            r.schema(),
            &["employee".into(), "skill".into()],
            &["employee".into(), "address".into()],
        )
        .unwrap();
        assert_eq!(common, vec!["employee"]);
    }

    #[test]
    fn shape_check_rejects_missing_coverage() {
        let r = figure1();
        let err = check_decomposition_shape(
            r.schema(),
            &["employee".into(), "skill".into()],
            &["employee".into()], // address lost
        );
        assert!(matches!(err, Err(EvolutionError::LossyDecomposition(_))));
    }

    #[test]
    fn shape_check_rejects_disjoint_outputs() {
        let r = figure1();
        let err = check_decomposition_shape(
            r.schema(),
            &["employee".into(), "skill".into()],
            &["address".into()],
        );
        assert!(matches!(err, Err(EvolutionError::LossyDecomposition(_))));
    }

    #[test]
    fn shape_check_rejects_unknown_column() {
        let r = figure1();
        let err = check_decomposition_shape(
            r.schema(),
            &["employee".into(), "bogus".into()],
            &["employee".into(), "address".into()],
        );
        assert!(matches!(err, Err(EvolutionError::InvalidOperator(_))));
    }

    #[test]
    fn fd_employee_address_holds() {
        let r = figure1();
        assert!(fd_holds(&r, &["employee"], &["address"]).unwrap());
        // …but employee does not determine skill.
        assert!(!fd_holds(&r, &["employee"], &["skill"]).unwrap());
    }

    #[test]
    fn changed_side_detection() {
        let r = figure1();
        let common = vec!["employee".to_string()];
        assert!(can_be_changed_side(&r, &["employee".into(), "address".into()], &common).unwrap());
        assert!(!can_be_changed_side(&r, &["employee".into(), "skill".into()], &common).unwrap());
        // Candidate equal to common is trivially fine.
        assert!(can_be_changed_side(&r, &common, &common).unwrap());
    }
}
