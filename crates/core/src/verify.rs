//! Cross-engine verification: data-level results must equal query-level
//! results as multisets of tuples. Used by the test suite and exposed for
//! the demo's "display table" comparisons.

use crate::error::Result;
use cods_storage::{Table, Value};
use std::collections::HashMap;

/// Multiset of tuples of a table.
pub fn multiset(table: &Table) -> HashMap<Vec<Value>, u64> {
    table.tuple_multiset()
}

/// Returns `true` if two tables hold the same tuples (order-insensitive,
/// duplicate-sensitive), projecting both to `a`'s column order by name.
pub fn same_tuples(a: &Table, b: &Table) -> Result<bool> {
    if a.rows() != b.rows() {
        return Ok(false);
    }
    let names = a.schema().names();
    if b.schema().arity() != names.len() || names.iter().any(|n| !b.schema().contains(n)) {
        return Ok(false);
    }
    // Project b's rows into a's column order.
    let perm: Vec<usize> = names
        .iter()
        .map(|n| Ok(b.schema().index_of(n)?))
        .collect::<Result<_>>()?;
    let mut counts: HashMap<Vec<Value>, i64> = HashMap::new();
    for row in a.to_rows() {
        *counts.entry(row).or_insert(0) += 1;
    }
    for row in b.to_rows() {
        let projected: Vec<Value> = perm.iter().map(|&i| row[i].clone()).collect();
        match counts.get_mut(&projected) {
            Some(c) => *c -= 1,
            None => return Ok(false),
        }
    }
    Ok(counts.values().all(|&c| c == 0))
}

/// Asserts that reconstructing the original table by re-joining a
/// decomposition's outputs yields the original tuples — the lossless-join
/// property end to end.
pub fn verify_lossless_round_trip(
    original: &Table,
    unchanged: &Table,
    changed: &Table,
) -> Result<bool> {
    let merged = crate::merge::merge(
        unchanged,
        changed,
        "__verify_round_trip",
        &crate::merge::MergeStrategy::Auto,
    )?;
    same_tuples(original, &merged.output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::{decompose, DecomposeSpec};
    use cods_storage::{Schema, ValueType};

    fn figure1() -> Table {
        let schema = Schema::build(
            &[
                ("employee", ValueType::Str),
                ("skill", ValueType::Str),
                ("address", ValueType::Str),
            ],
            &[],
        )
        .unwrap();
        let rows: Vec<Vec<Value>> = [
            ("Jones", "Typing", "425 Grant Ave"),
            ("Jones", "Shorthand", "425 Grant Ave"),
            ("Roberts", "Light Cleaning", "747 Industrial Way"),
            ("Ellis", "Alchemy", "747 Industrial Way"),
            ("Jones", "Whittling", "425 Grant Ave"),
            ("Ellis", "Juggling", "747 Industrial Way"),
            ("Harrison", "Light Cleaning", "425 Grant Ave"),
        ]
        .iter()
        .map(|&(e, s, a)| vec![Value::str(e), Value::str(s), Value::str(a)])
        .collect();
        Table::from_rows("R", schema, &rows).unwrap()
    }

    #[test]
    fn same_tuples_modulo_column_order() {
        let r = figure1();
        let schema2 = Schema::build(
            &[
                ("address", ValueType::Str),
                ("employee", ValueType::Str),
                ("skill", ValueType::Str),
            ],
            &[],
        )
        .unwrap();
        let permuted: Vec<Vec<Value>> = r
            .to_rows()
            .into_iter()
            .map(|row| vec![row[2].clone(), row[0].clone(), row[1].clone()])
            .collect();
        let r2 = Table::from_rows("R2", schema2, &permuted).unwrap();
        assert!(same_tuples(&r, &r2).unwrap());
    }

    #[test]
    fn same_tuples_detects_differences() {
        let r = figure1();
        let mut rows = r.to_rows();
        rows[0][1] = Value::str("Dancing");
        let r2 = Table::from_rows("R2", r.schema().clone(), &rows).unwrap();
        assert!(!same_tuples(&r, &r2).unwrap());
        // Different row counts.
        rows.pop();
        let r3 = Table::from_rows("R3", r.schema().clone(), &rows).unwrap();
        assert!(!same_tuples(&r, &r3).unwrap());
    }

    #[test]
    fn lossless_round_trip_on_figure1() {
        let r = figure1();
        let out = decompose(
            &r,
            &DecomposeSpec::new("S", &["employee", "skill"], "T", &["employee", "address"]),
        )
        .unwrap();
        assert!(verify_lossless_round_trip(&r, &out.unchanged, &out.changed).unwrap());
    }
}
