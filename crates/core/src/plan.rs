//! **Planned evolution** — the validate-then-commit execution surface.
//!
//! [`Cods::plan`](crate::Cods::plan) resolves and validates an *entire* SMO
//! script against one catalog snapshot before any data moves:
//!
//! 1. **Validate** — every operator is checked against a *shadow catalog*
//!    of predicted schemas (names, column existence and types, union
//!    compatibility, decomposition shape, join attributes), so a malformed
//!    statement anywhere in the script errors before any work runs.
//! 2. **Fuse** — uninterrupted chains of ADD / DROP / RENAME COLUMN on the
//!    same table collapse into a single per-table pass (an added column
//!    that is later dropped is never built at all), and because execution
//!    runs against an in-memory workspace, intermediate tables consumed
//!    within the plan never enter the catalog.
//! 3. **Execute** — a dependency DAG over table names (read-after-write,
//!    write-after-read, write-after-write) is cut into waves; independent
//!    branches of each wave dispatch concurrently on the shared worker
//!    pool (see [`crate::exec`]).
//! 4. **Commit** — all catalog mutations are staged and applied in one
//!    atomic [`Catalog`](cods_storage::Catalog) transaction: a mid-script
//!    failure (an FD violation three operators in, say) leaves the catalog
//!    exactly as the snapshot saw it.

use crate::error::{EvolutionError, Result};
use crate::exec::{self, PlanReport};
use crate::merge;
use crate::platform::Cods;
use crate::schema_tools::check_decomposition_shape;
use crate::smo::Smo;
use cods_storage::{Schema, StorageError, Table};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The work of one plan node: a single SMO, or a fused chain of
/// column-level SMOs executed as one per-table pass.
#[derive(Clone, Debug)]
pub enum PlanOp {
    /// One operator, exactly as written.
    Single(Smo),
    /// A chain of ADD / DROP / RENAME COLUMN on `table`, net-applied in a
    /// single pass: carried columns are shared by reference once, added
    /// columns are built once, and an add that a later drop cancels is
    /// never materialized.
    FusedColumns {
        /// The table all fused operators target.
        table: String,
        /// The original operators, in script order.
        ops: Vec<Smo>,
    },
}

impl fmt::Display for PlanOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanOp::Single(smo) => write!(f, "{smo}"),
            PlanOp::FusedColumns { table, ops } => {
                write!(f, "FUSED COLUMN PASS ON {table}: ")?;
                for (i, op) in ops.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{op}")?;
                }
                Ok(())
            }
        }
    }
}

/// One node of the plan DAG.
#[derive(Clone, Debug)]
pub struct PlanNode {
    /// What the node executes.
    pub op: PlanOp,
    /// Indices of the nodes this one must run after.
    pub deps: Vec<usize>,
    /// The execution wave (0 = no dependencies).
    pub wave: usize,
}

/// A validated, fused, DAG-ordered evolution script bound to the catalog
/// snapshot it was planned against. Run it with
/// [`execute`](EvolutionPlan::execute); inspect it with
/// [`describe`](EvolutionPlan::describe).
pub struct EvolutionPlan<'c> {
    pub(crate) cods: &'c Cods,
    pub(crate) base_version: u64,
    pub(crate) snapshot: BTreeMap<String, Arc<Table>>,
    pub(crate) nodes: Vec<PlanNode>,
    pub(crate) waves: Vec<Vec<usize>>,
    pub(crate) planning: Duration,
    /// Human-readable fusion decisions, in discovery order.
    fusion_notes: Vec<String>,
    /// Tables written during the plan that never reach the committed
    /// catalog (consumed by later operators) — the fusion win.
    elided: Vec<String>,
}

/// The shadow effect of one operator: what it reads and writes, by name.
struct Effect {
    reads: Vec<String>,
    writes: Vec<String>,
}

#[derive(Default)]
struct NameState {
    last_writer: Option<usize>,
    readers: Vec<usize>,
}

fn unknown(name: &str) -> EvolutionError {
    EvolutionError::Storage(StorageError::UnknownTable(name.to_string()))
}

fn exists(name: &str) -> EvolutionError {
    EvolutionError::Storage(StorageError::TableExists(name.to_string()))
}

fn expect<'s>(shadow: &'s BTreeMap<String, Schema>, name: &str) -> Result<&'s Schema> {
    shadow.get(name).ok_or_else(|| unknown(name))
}

fn expect_absent(shadow: &BTreeMap<String, Schema>, name: &str) -> Result<()> {
    if shadow.contains_key(name) {
        return Err(exists(name));
    }
    Ok(())
}

/// Validates `smo` against the shadow catalog and applies its schema-level
/// effect, mirroring the runtime executors' checks and output schemas
/// exactly (including which operators preserve key declarations).
fn shadow_apply(shadow: &mut BTreeMap<String, Schema>, smo: &Smo) -> Result<Effect> {
    let eff = |reads: Vec<&str>, writes: Vec<&str>| Effect {
        reads: reads.into_iter().map(str::to_string).collect(),
        writes: writes.into_iter().map(str::to_string).collect(),
    };
    match smo {
        Smo::CreateTable { name, schema } => {
            expect_absent(shadow, name)?;
            shadow.insert(name.clone(), schema.clone());
            Ok(eff(vec![], vec![name]))
        }
        Smo::DropTable { name } => {
            expect(shadow, name)?;
            shadow.remove(name);
            Ok(eff(vec![], vec![name]))
        }
        Smo::RenameTable { from, to } => {
            let s = expect(shadow, from)?.clone();
            expect_absent(shadow, to)?;
            shadow.remove(from);
            shadow.insert(to.clone(), s);
            Ok(eff(vec![from], vec![from, to]))
        }
        Smo::CopyTable { from, to } => {
            let s = expect(shadow, from)?.clone();
            expect_absent(shadow, to)?;
            shadow.insert(to.clone(), s);
            Ok(eff(vec![from], vec![to]))
        }
        Smo::UnionTables {
            left,
            right,
            output,
            drop_inputs,
        } => {
            let l = expect(shadow, left)?.clone();
            let r = expect(shadow, right)?;
            if !l.union_compatible(r) {
                return Err(EvolutionError::InvalidOperator(format!(
                    "tables {left:?} and {right:?} are not union-compatible"
                )));
            }
            if shadow.contains_key(output) && output != left && output != right {
                return Err(exists(output));
            }
            let mut writes = vec![output.as_str()];
            if *drop_inputs {
                shadow.remove(left);
                shadow.remove(right);
                writes.push(left);
                if right != left {
                    writes.push(right);
                }
            }
            shadow.insert(output.clone(), Schema::new(l.columns().to_vec())?);
            Ok(eff(vec![left, right], writes))
        }
        Smo::PartitionTable {
            input,
            predicate,
            satisfying,
            rest,
        } => {
            let s = expect(shadow, input)?.clone();
            for c in predicate.columns() {
                s.column(c)?;
            }
            if satisfying == rest {
                return Err(exists(rest));
            }
            if satisfying != input {
                expect_absent(shadow, satisfying)?;
            }
            if rest != input {
                expect_absent(shadow, rest)?;
            }
            let out = Schema::new(s.columns().to_vec())?;
            shadow.remove(input);
            shadow.insert(satisfying.clone(), out.clone());
            shadow.insert(rest.clone(), out);
            Ok(eff(vec![input], vec![input, satisfying, rest]))
        }
        Smo::DecomposeTable { input, spec } => {
            let s = expect(shadow, input)?.clone();
            if spec.unchanged_name == spec.changed_name {
                return Err(exists(&spec.changed_name));
            }
            if spec.unchanged_name != *input {
                expect_absent(shadow, &spec.unchanged_name)?;
            }
            if spec.changed_name != *input {
                expect_absent(shadow, &spec.changed_name)?;
            }
            let common = check_decomposition_shape(&s, &spec.unchanged_cols, &spec.changed_cols)?;
            let unchanged_names: Vec<&str> =
                spec.unchanged_cols.iter().map(String::as_str).collect();
            let changed_names: Vec<&str> = spec.changed_cols.iter().map(String::as_str).collect();
            let common_refs: Vec<&str> = common.iter().map(String::as_str).collect();
            let unchanged = s.project(&unchanged_names, &[])?;
            let changed = s.project(&changed_names, &common_refs)?;
            shadow.remove(input);
            shadow.insert(spec.unchanged_name.clone(), unchanged);
            shadow.insert(spec.changed_name.clone(), changed);
            Ok(eff(
                vec![input],
                vec![input, &spec.unchanged_name, &spec.changed_name],
            ))
        }
        Smo::MergeTables {
            left,
            right,
            output,
            strategy,
        } => {
            let l = expect(shadow, left)?.clone();
            let r = expect(shadow, right)?.clone();
            if shadow.contains_key(output) {
                return Err(exists(output));
            }
            let join = crate::schema_tools::common_columns(&l, &r);
            if join.is_empty() {
                return Err(EvolutionError::NoCommonColumns(format!(
                    "{left} and {right}"
                )));
            }
            merge::validate_join_schemas(&l, &r, left, right, &join)?;
            let out = match strategy {
                crate::merge::MergeStrategy::KeyForeignKey { keyed } if keyed == left => {
                    merge::merged_schema(&r, &l, &join)?
                }
                crate::merge::MergeStrategy::KeyForeignKey { keyed }
                    if keyed != left && keyed != right =>
                {
                    return Err(EvolutionError::InvalidOperator(format!(
                        "keyed table {keyed:?} is neither input"
                    )));
                }
                _ => merge::merged_schema(&l, &r, &join)?,
            };
            shadow.insert(output.clone(), out);
            Ok(eff(vec![left, right], vec![output]))
        }
        // The column operators share their validation + schema logic with
        // the executor and the fused pass (`simple_ops::*_column_schema`),
        // so the prediction here is the run-time schema by construction.
        Smo::AddColumn {
            table,
            column,
            fill,
        } => {
            let s = expect(shadow, table)?.clone();
            shadow.insert(
                table.clone(),
                crate::simple_ops::add_column_schema(&s, column, fill)?,
            );
            Ok(eff(vec![table], vec![table]))
        }
        Smo::DropColumn { table, column } => {
            let s = expect(shadow, table)?.clone();
            shadow.insert(
                table.clone(),
                crate::simple_ops::drop_column_schema(&s, column)?,
            );
            Ok(eff(vec![table], vec![table]))
        }
        Smo::RenameColumn { table, from, to } => {
            let s = expect(shadow, table)?.clone();
            shadow.insert(
                table.clone(),
                crate::simple_ops::rename_column_schema(&s, from, to)?,
            );
            Ok(eff(vec![table], vec![table]))
        }
    }
}

impl<'c> EvolutionPlan<'c> {
    /// Validates and plans `smos` against a snapshot of `cods`'s catalog.
    pub(crate) fn new(cods: &'c Cods, smos: Vec<Smo>) -> Result<EvolutionPlan<'c>> {
        let t0 = Instant::now();
        let (base_version, snapshot) = cods.catalog().begin_evolution();
        let mut shadow: BTreeMap<String, Schema> = snapshot
            .iter()
            .map(|(n, t)| (n.clone(), t.schema().clone()))
            .collect();

        let mut nodes: Vec<PlanNode> = Vec::with_capacity(smos.len());
        let mut names: HashMap<String, NameState> = HashMap::new();
        let mut written: BTreeSet<String> = BTreeSet::new();
        let mut fusion_notes: Vec<String> = Vec::new();

        for smo in smos {
            let effect = shadow_apply(&mut shadow, &smo)?;
            written.extend(effect.writes.iter().cloned());

            // Fusion: an uninterrupted chain of column ops on one table —
            // the previous writer of the table is itself a column pass on
            // it and nothing read the intermediate version — collapses
            // into that node.
            if let Some(t) = smo.column_op_table() {
                let fuse_into = names.get(t).and_then(|st| {
                    st.last_writer.filter(|&w| {
                        st.readers.is_empty()
                            && match &nodes[w].op {
                                PlanOp::FusedColumns { table, .. } => table == t,
                                PlanOp::Single(s) => s.column_op_table() == Some(t),
                            }
                    })
                });
                if let Some(w) = fuse_into {
                    let node = &mut nodes[w];
                    match &mut node.op {
                        PlanOp::FusedColumns { ops, .. } => ops.push(smo),
                        PlanOp::Single(prev) => {
                            let prev = prev.clone();
                            fusion_notes.push(format!(
                                "column ops on {t:?} fused into one pass (node {w})"
                            ));
                            node.op = PlanOp::FusedColumns {
                                table: t.to_string(),
                                ops: vec![prev, smo],
                            };
                        }
                    }
                    continue;
                }
            }

            // New node: read-after-write, then write-after-(read|write).
            let idx = nodes.len();
            let mut deps: BTreeSet<usize> = BTreeSet::new();
            for r in &effect.reads {
                let st = names.entry(r.clone()).or_default();
                if let Some(w) = st.last_writer {
                    deps.insert(w);
                }
                st.readers.push(idx);
            }
            for w in &effect.writes {
                let st = names.entry(w.clone()).or_default();
                // A node that writes the same name twice (PARTITION back
                // into its input, UNION into one of its inputs) must not
                // depend on itself.
                if let Some(lw) = st.last_writer.filter(|&lw| lw != idx) {
                    deps.insert(lw);
                }
                for &r in &st.readers {
                    if r != idx {
                        deps.insert(r);
                    }
                }
                st.last_writer = Some(idx);
                st.readers.clear();
            }
            nodes.push(PlanNode {
                op: PlanOp::Single(smo),
                deps: deps.into_iter().collect(),
                wave: 0,
            });
        }

        // Waves: the length of the longest dependency chain to each node.
        for i in 0..nodes.len() {
            let wave = nodes[i]
                .deps
                .iter()
                .map(|&d| nodes[d].wave + 1)
                .max()
                .unwrap_or(0);
            nodes[i].wave = wave;
        }
        let n_waves = nodes.iter().map(|n| n.wave + 1).max().unwrap_or(0);
        let mut waves: Vec<Vec<usize>> = vec![Vec::new(); n_waves];
        for (i, n) in nodes.iter().enumerate() {
            waves[n.wave].push(i);
        }

        // Intermediates created and consumed within the plan never enter
        // the catalog (names that existed in the snapshot and end up gone
        // are ordinary drops, not elisions).
        let elided: Vec<String> = written
            .iter()
            .filter(|n| !shadow.contains_key(*n) && !snapshot.contains_key(*n))
            .cloned()
            .collect();

        Ok(EvolutionPlan {
            cods,
            base_version,
            snapshot,
            nodes,
            waves,
            planning: t0.elapsed(),
            fusion_notes,
            elided,
        })
    }

    /// The plan's nodes, in script order.
    pub fn nodes(&self) -> &[PlanNode] {
        &self.nodes
    }

    /// The execution waves: node indices grouped by dependency depth.
    pub fn waves(&self) -> &[Vec<usize>] {
        &self.waves
    }

    /// Tables produced during the plan that never reach the catalog.
    pub fn elided_intermediates(&self) -> &[String] {
        &self.elided
    }

    /// The catalog version the plan was validated against.
    pub fn base_version(&self) -> u64 {
        self.base_version
    }

    /// Executes the plan: each wave's nodes run concurrently against an
    /// in-memory workspace, and on success every catalog mutation commits
    /// in one atomic transaction. Any failure — a data-dependent error in
    /// any node, or a [`StorageError::Conflict`] because the catalog moved
    /// since the plan was taken — leaves the catalog completely untouched.
    pub fn execute(&self) -> Result<PlanReport> {
        let mut report = exec::run(self)?;
        self.cods.record_plan(&mut report);
        Ok(report)
    }

    /// Renders the DAG, the fusion decisions, and the staging summary —
    /// what the CLI `plan` command prints.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "plan: {} node{} in {} wave{}, catalog version {}\n",
            self.nodes.len(),
            if self.nodes.len() == 1 { "" } else { "s" },
            self.waves.len(),
            if self.waves.len() == 1 { "" } else { "s" },
            self.base_version,
        ));
        for (w, wave) in self.waves.iter().enumerate() {
            out.push_str(&format!("wave {w}:\n"));
            for &i in wave {
                let node = &self.nodes[i];
                if node.deps.is_empty() {
                    out.push_str(&format!("  [{i}] {}\n", node.op));
                } else {
                    let deps: Vec<String> = node.deps.iter().map(|d| format!("{d}")).collect();
                    out.push_str(&format!(
                        "  [{i}] {}  (after {})\n",
                        node.op,
                        deps.join(", ")
                    ));
                }
            }
        }
        for note in &self.fusion_notes {
            out.push_str(&format!("fusion: {note}\n"));
        }
        if self.elided.is_empty() {
            out.push_str("no intermediate tables elided\n");
        } else {
            out.push_str(&format!(
                "elided intermediates (never enter the catalog): {}\n",
                self.elided.join(", ")
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::DecomposeSpec;
    use crate::simple_ops::ColumnFill;
    use cods_storage::{ColumnDef, Value, ValueType};

    fn platform() -> Cods {
        let cods = Cods::new();
        let schema = Schema::build(
            &[
                ("k", ValueType::Int),
                ("a", ValueType::Int),
                ("d", ValueType::Int),
            ],
            &[],
        )
        .unwrap();
        let rows: Vec<Vec<Value>> = (0..20)
            .map(|i| vec![Value::int(i % 4), Value::int(i), Value::int((i % 4) * 10)])
            .collect();
        cods.catalog()
            .create(Table::from_rows("R", schema, &rows).unwrap())
            .unwrap();
        cods
    }

    #[test]
    fn validation_rejects_before_any_work() {
        let cods = platform();
        // Third statement references a column the second one dropped.
        let err = cods
            .plan_script("COPY TABLE R TO R2\nDROP COLUMN a FROM R2\nRENAME COLUMN a TO b IN R2");
        assert!(err.is_err());
        assert_eq!(cods.catalog().table_names(), vec!["R"]);
    }

    #[test]
    fn column_chains_fuse_into_one_node() {
        let cods = platform();
        let plan = cods
            .plan_script(
                "ADD COLUMN x int DEFAULT 0 TO R\n\
                 RENAME COLUMN x TO y IN R\n\
                 ADD COLUMN z str DEFAULT 'q' TO R\n\
                 DROP COLUMN z FROM R",
            )
            .unwrap();
        assert_eq!(plan.nodes().len(), 1);
        assert!(matches!(
            &plan.nodes()[0].op,
            PlanOp::FusedColumns { ops, .. } if ops.len() == 4
        ));
        assert!(plan.describe().contains("FUSED COLUMN PASS ON R"));
    }

    #[test]
    fn reader_between_column_ops_blocks_fusion() {
        let cods = platform();
        let plan = cods
            .plan_script(
                "ADD COLUMN x int DEFAULT 0 TO R\n\
                 COPY TABLE R TO R2\n\
                 DROP COLUMN x FROM R",
            )
            .unwrap();
        // The copy reads the intermediate version, so the drop cannot fuse
        // with the add; it depends on both the writer and the reader.
        assert_eq!(plan.nodes().len(), 3);
        assert_eq!(plan.nodes()[2].deps, vec![0, 1]);
    }

    #[test]
    fn independent_branches_share_a_wave() {
        let cods = platform();
        cods.execute(Smo::CopyTable {
            from: "R".into(),
            to: "Q".into(),
        })
        .unwrap();
        let plan = cods
            .plan(vec![
                Smo::DecomposeTable {
                    input: "R".into(),
                    spec: DecomposeSpec::new("S", &["k", "a"], "T", &["k", "d"]),
                },
                Smo::AddColumn {
                    table: "Q".into(),
                    column: ColumnDef::new("extra", ValueType::Int),
                    fill: ColumnFill::Default(Value::int(7)),
                },
                Smo::MergeTables {
                    left: "S".into(),
                    right: "T".into(),
                    output: "R2".into(),
                    strategy: crate::merge::MergeStrategy::Auto,
                },
            ])
            .unwrap();
        assert_eq!(plan.waves().len(), 2);
        assert_eq!(plan.waves()[0], vec![0, 1]);
        assert_eq!(plan.waves()[1], vec![2]);
        assert_eq!(plan.nodes()[2].deps, vec![0]);
    }

    #[test]
    fn elided_intermediates_are_reported() {
        let cods = platform();
        let plan = cods
            .plan_script(
                "PARTITION TABLE R WHERE k < 2 INTO lo, hi\n\
                 UNION TABLES lo, hi INTO R\n\
                 DROP TABLE lo\nDROP TABLE hi",
            )
            .unwrap();
        assert_eq!(
            plan.elided_intermediates(),
            &["hi".to_string(), "lo".to_string()]
        );
    }

    #[test]
    fn double_write_of_one_name_is_not_a_self_dependency() {
        let cods = platform();
        // PARTITION writes R (drop) and R (satisfying output): one node,
        // one wave, no self-edge, no phantom empty stage.
        let plan = cods
            .plan_script("PARTITION TABLE R WHERE k < 2 INTO R, rest")
            .unwrap();
        assert_eq!(plan.nodes().len(), 1);
        assert!(
            plan.nodes()[0].deps.is_empty(),
            "{:?}",
            plan.nodes()[0].deps
        );
        assert_eq!(plan.waves(), &[vec![0]]);
        let report = plan.execute().unwrap();
        assert_eq!(report.log.stages.len(), 1);
        assert!(cods.catalog().contains("R") && cods.catalog().contains("rest"));
    }

    #[test]
    fn shadow_tracks_schema_through_the_chain() {
        let cods = platform();
        // Decompose, then operate on the *predicted* outputs: valid only if
        // the shadow catalog carries the projected schemas forward.
        let plan = cods
            .plan_script(
                "DECOMPOSE TABLE R INTO S (k, a), T (k, d)\n\
                 RENAME COLUMN a TO attr IN S\n\
                 MERGE TABLES S, T INTO R2",
            )
            .unwrap();
        assert_eq!(plan.nodes().len(), 3);
        // Renaming the join column away must be caught at plan time: the
        // predicted schemas of S and T then share no column.
        let err = cods.plan_script(
            "DECOMPOSE TABLE R INTO S (k, a), T (k, d)\n\
             RENAME COLUMN k TO key2 IN T\n\
             MERGE TABLES S, T INTO R2",
        );
        assert!(matches!(err, Err(EvolutionError::NoCommonColumns(_))));
        assert_eq!(cods.catalog().table_names(), vec!["R"]);
    }
}
