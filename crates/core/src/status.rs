//! Evolution status tracking — the "Data Evolution Status" panel of the
//! CODS demo (Section 3). Every data-level operator reports its named steps
//! ("distinction", "bitmap filtering", …) with timings and work counters.

use std::time::{Duration, Instant};

/// One recorded step of an evolution.
#[derive(Clone, Debug)]
pub struct Step {
    /// Step name (e.g. `"distinction"`).
    pub name: String,
    /// Wall time spent.
    pub elapsed: Duration,
    /// Optional work counter (rows scanned, positions produced, …).
    pub items: Option<u64>,
}

/// Collects the step log of one evolution execution.
#[derive(Debug)]
pub struct StatusTracker {
    started: Instant,
    last: Instant,
    steps: Vec<Step>,
}

impl Default for StatusTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl StatusTracker {
    /// Starts tracking.
    pub fn new() -> Self {
        let now = Instant::now();
        StatusTracker {
            started: now,
            last: now,
            steps: Vec::new(),
        }
    }

    /// Records a step ending now (timed since the previous step).
    pub fn step(&mut self, name: impl Into<String>) {
        self.step_items_opt(name, None);
    }

    /// Records a step with a work counter.
    pub fn step_items(&mut self, name: impl Into<String>, items: u64) {
        self.step_items_opt(name, Some(items));
    }

    fn step_items_opt(&mut self, name: impl Into<String>, items: Option<u64>) {
        let now = Instant::now();
        self.steps.push(Step {
            name: name.into(),
            elapsed: now - self.last,
            items,
        });
        self.last = now;
    }

    /// The recorded steps.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Total elapsed time since tracking started.
    pub fn total(&self) -> Duration {
        self.last - self.started
    }

    /// Finalizes into an [`EvolutionStatus`].
    pub fn finish(self) -> EvolutionStatus {
        EvolutionStatus {
            total: self.last - self.started,
            steps: self.steps,
        }
    }
}

/// Completed status log of one evolution.
#[derive(Clone, Debug, Default)]
pub struct EvolutionStatus {
    /// Total wall time.
    pub total: Duration,
    /// Steps in order.
    pub steps: Vec<Step>,
}

impl EvolutionStatus {
    /// Renders the log as the demo would display it.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.steps {
            match s.items {
                Some(n) => out.push_str(&format!(
                    "  {} ({n} items): {:.3} ms\n",
                    s.name,
                    s.elapsed.as_secs_f64() * 1e3
                )),
                None => out.push_str(&format!(
                    "  {}: {:.3} ms\n",
                    s.name,
                    s.elapsed.as_secs_f64() * 1e3
                )),
            }
        }
        out.push_str(&format!(
            "  total: {:.3} ms\n",
            self.total.as_secs_f64() * 1e3
        ));
        out
    }

    /// Looks up a step by name.
    pub fn step(&self, name: &str) -> Option<&Step> {
        self.steps.iter().find(|s| s.name == name)
    }
}

/// One stage (dependency wave) of a plan execution: the operators that ran
/// concurrently, each with its own step log.
#[derive(Clone, Debug)]
pub struct PlanStageLog {
    /// Zero-based wave index.
    pub wave: usize,
    /// `(rendered operator, status)` per node, in node order.
    pub operators: Vec<(String, EvolutionStatus)>,
}

/// Per-stage log of one planned evolution: validation, the dependency
/// waves, and the atomic commit — the plan-level analogue of
/// [`EvolutionStatus`].
#[derive(Clone, Debug, Default)]
pub struct PlanLog {
    /// Time spent validating and building the DAG.
    pub planning: Duration,
    /// One entry per executed wave.
    pub stages: Vec<PlanStageLog>,
    /// Time spent in the atomic catalog commit.
    pub commit: Duration,
    /// Total wall time from plan to commit.
    pub total: Duration,
    /// `true` when the commit was acknowledged by a durability sink (the
    /// catalog's commit log fsynced it) rather than being memory-only.
    pub durable: bool,
}

impl PlanLog {
    /// Renders the log as the demo's status panel would display it: one
    /// block per stage, one line per operator.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "plan: {:.3} ms\n",
            self.planning.as_secs_f64() * 1e3
        ));
        for stage in &self.stages {
            out.push_str(&format!(
                "stage {} ({} operator{}):\n",
                stage.wave,
                stage.operators.len(),
                if stage.operators.len() == 1 { "" } else { "s" }
            ));
            for (op, status) in &stage.operators {
                out.push_str(&format!(
                    "  {op}: {:.3} ms\n",
                    status.total.as_secs_f64() * 1e3
                ));
            }
        }
        out.push_str(&format!(
            "commit: {:.3} ms{}\ntotal: {:.3} ms\n",
            self.commit.as_secs_f64() * 1e3,
            if self.durable { " (durable)" } else { "" },
            self.total.as_secs_f64() * 1e3
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_log_renders_stages() {
        let log = PlanLog {
            planning: Duration::from_millis(1),
            stages: vec![PlanStageLog {
                wave: 0,
                operators: vec![("DROP TABLE t".into(), EvolutionStatus::default())],
            }],
            commit: Duration::from_millis(2),
            total: Duration::from_millis(4),
            durable: true,
        };
        let text = log.render();
        assert!(text.contains("stage 0 (1 operator)"));
        assert!(text.contains("DROP TABLE t"));
        assert!(text.contains("commit:"));
        assert!(text.contains("(durable)"));
    }

    #[test]
    fn records_steps_in_order() {
        let mut t = StatusTracker::new();
        t.step("distinction");
        t.step_items("bitmap filtering", 42);
        let status = t.finish();
        assert_eq!(status.steps.len(), 2);
        assert_eq!(status.steps[0].name, "distinction");
        assert_eq!(status.steps[1].items, Some(42));
        assert!(status.total >= status.steps[0].elapsed);
    }

    #[test]
    fn render_mentions_every_step() {
        let mut t = StatusTracker::new();
        t.step("distinction");
        t.step_items("bitmap filtering", 7);
        let s = t.finish();
        let text = s.render();
        assert!(text.contains("distinction"));
        assert!(text.contains("bitmap filtering (7 items)"));
        assert!(text.contains("total"));
    }

    #[test]
    fn step_lookup() {
        let mut t = StatusTracker::new();
        t.step("a");
        let s = t.finish();
        assert!(s.step("a").is_some());
        assert!(s.step("b").is_none());
    }
}
