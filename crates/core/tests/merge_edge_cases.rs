//! Edge-case suite for the mergence algorithms: pathological cardinalities,
//! dictionary mismatches, string keys, and output clustering guarantees.

use cods::{merge, merge_general, merge_key_fk, MergeStrategy, UsedStrategy};
use cods_storage::{Schema, Table, Value, ValueType};
use std::collections::HashMap;

fn t(name: &str, cols: &[(&str, ValueType)], rows: Vec<Vec<Value>>) -> Table {
    Table::from_rows(name, Schema::build(cols, &[]).unwrap(), &rows).unwrap()
}

fn multiset(t: &Table) -> HashMap<Vec<Value>, u64> {
    t.tuple_multiset()
}

fn naive_join(a: &Table, b: &Table) -> HashMap<Vec<Value>, u64> {
    // Join on column 0 of both; output (k, a.rest…, b.rest…).
    let mut m = HashMap::new();
    for ra in a.to_rows() {
        for rb in b.to_rows() {
            if ra[0] == rb[0] {
                let mut row = ra.clone();
                row.extend(rb[1..].iter().cloned());
                *m.entry(row).or_insert(0) += 1;
            }
        }
    }
    m
}

#[test]
fn single_row_tables() {
    let a = t(
        "A",
        &[("k", ValueType::Int), ("x", ValueType::Int)],
        vec![vec![Value::int(1), Value::int(2)]],
    );
    let b = t(
        "B",
        &[("k", ValueType::Int), ("y", ValueType::Int)],
        vec![vec![Value::int(1), Value::int(3)]],
    );
    let out = merge(&a, &b, "AB", &MergeStrategy::Auto).unwrap();
    assert_eq!(out.output.rows(), 1);
    assert_eq!(
        out.output.row(0),
        vec![Value::int(1), Value::int(2), Value::int(3)]
    );
}

#[test]
fn all_rows_same_key_cross_product() {
    let a = t(
        "A",
        &[("k", ValueType::Int), ("x", ValueType::Int)],
        (0..40)
            .map(|i| vec![Value::int(7), Value::int(i)])
            .collect(),
    );
    let b = t(
        "B",
        &[("k", ValueType::Int), ("y", ValueType::Int)],
        (0..25)
            .map(|i| vec![Value::int(7), Value::int(100 + i)])
            .collect(),
    );
    let out = merge_general(&a, &b, "AB", &["k".into()]).unwrap();
    assert_eq!(out.output.rows(), 40 * 25);
    out.output.check_invariants().unwrap();
    assert_eq!(multiset(&out.output), naive_join(&a, &b));
}

#[test]
fn string_keys_with_disjoint_dictionaries() {
    // Dictionaries assign different ids to the same strings on each side.
    let a = t(
        "A",
        &[("k", ValueType::Str), ("x", ValueType::Int)],
        vec![
            vec![Value::str("zebra"), Value::int(1)],
            vec![Value::str("ant"), Value::int(2)],
            vec![Value::str("bee"), Value::int(3)],
        ],
    );
    let b = t(
        "B",
        &[("k", ValueType::Str), ("y", ValueType::Int)],
        vec![
            vec![Value::str("bee"), Value::int(10)],
            vec![Value::str("cat"), Value::int(20)],
            vec![Value::str("zebra"), Value::int(30)],
        ],
    );
    let out = merge_general(&a, &b, "AB", &["k".into()]).unwrap();
    assert_eq!(multiset(&out.output), naive_join(&a, &b));
    assert_eq!(out.output.rows(), 2);
}

#[test]
fn null_join_values_match_each_other() {
    // NULL is a dictionary value like any other, so NULL = NULL joins.
    // (Document: SQL would drop these; CODS mergence is a value-level join.)
    let a = t(
        "A",
        &[("k", ValueType::Int), ("x", ValueType::Int)],
        vec![
            vec![Value::Null, Value::int(1)],
            vec![Value::int(5), Value::int(2)],
        ],
    );
    let b = t(
        "B",
        &[("k", ValueType::Int), ("y", ValueType::Int)],
        vec![vec![Value::Null, Value::int(7)]],
    );
    let out = merge_general(&a, &b, "AB", &["k".into()]).unwrap();
    assert_eq!(out.output.rows(), 1);
    assert_eq!(
        out.output.row(0),
        vec![Value::Null, Value::int(1), Value::int(7)]
    );
}

#[test]
fn key_fk_with_unreferenced_dimension_rows() {
    // T rows never referenced by S must not appear in the output and their
    // payload values must be compacted away.
    let s = t(
        "S",
        &[("k", ValueType::Int), ("x", ValueType::Int)],
        vec![
            vec![Value::int(1), Value::int(10)],
            vec![Value::int(1), Value::int(11)],
        ],
    );
    let keyed = t(
        "T",
        &[("k", ValueType::Int), ("d", ValueType::Str)],
        vec![
            vec![Value::int(1), Value::str("used")],
            vec![Value::int(2), Value::str("orphan")],
        ],
    );
    let out = merge_key_fk(&s, &keyed, "R", &["k".into()]).unwrap();
    assert_eq!(out.output.rows(), 2);
    let d_col = out.output.column_by_name("d").unwrap();
    assert_eq!(d_col.distinct_count(), 1, "orphan value not compacted");
    assert_eq!(d_col.value_at(0), &Value::str("used"));
}

#[test]
fn general_merge_output_is_clustered_by_join_value() {
    let a = t(
        "A",
        &[("k", ValueType::Int), ("x", ValueType::Int)],
        (0..100)
            .map(|i| vec![Value::int(i % 5), Value::int(i)])
            .collect(),
    );
    let b = t(
        "B",
        &[("k", ValueType::Int), ("y", ValueType::Int)],
        (0..20)
            .map(|i| vec![Value::int(i % 5), Value::int(i)])
            .collect(),
    );
    let out = merge_general(&a, &b, "AB", &["k".into()]).unwrap();
    // Clustered: the k column's bitmaps are single fill runs.
    let k_col = out.output.column_by_name("k").unwrap();
    for id in 0..k_col.distinct_count() as u32 {
        let bm = k_col.value_bitmap(id);
        assert_eq!(
            bm.iter_intervals().count(),
            1,
            "join column not clustered into one run"
        );
    }
}

#[test]
fn three_way_composite_join_columns() {
    let a = t(
        "A",
        &[
            ("k1", ValueType::Int),
            ("k2", ValueType::Int),
            ("k3", ValueType::Int),
            ("x", ValueType::Int),
        ],
        (0..60)
            .map(|i| {
                vec![
                    Value::int(i % 2),
                    Value::int(i % 3),
                    Value::int(i % 5),
                    Value::int(i),
                ]
            })
            .collect(),
    );
    let b = t(
        "B",
        &[
            ("k1", ValueType::Int),
            ("k2", ValueType::Int),
            ("k3", ValueType::Int),
            ("y", ValueType::Int),
        ],
        (0..30)
            .map(|i| {
                vec![
                    Value::int(i % 2),
                    Value::int(i % 3),
                    Value::int(i % 5),
                    Value::int(i),
                ]
            })
            .collect(),
    );
    let out = merge_general(&a, &b, "AB", &["k1".into(), "k2".into(), "k3".into()]).unwrap();
    out.output.check_invariants().unwrap();
    // Oracle.
    let mut expected = HashMap::new();
    for ra in a.to_rows() {
        for rb in b.to_rows() {
            if ra[..3] == rb[..3] {
                let mut row = ra.clone();
                row.push(rb[3].clone());
                *expected.entry(row).or_insert(0u64) += 1;
            }
        }
    }
    assert_eq!(multiset(&out.output), expected);
}

#[test]
fn auto_on_both_sides_unique_prefers_right_keyed() {
    let a = t(
        "A",
        &[("k", ValueType::Int), ("x", ValueType::Int)],
        vec![
            vec![Value::int(1), Value::int(10)],
            vec![Value::int(2), Value::int(20)],
        ],
    );
    let b = t(
        "B",
        &[("k", ValueType::Int), ("y", ValueType::Int)],
        vec![
            vec![Value::int(1), Value::int(30)],
            vec![Value::int(2), Value::int(40)],
        ],
    );
    let out = merge(&a, &b, "AB", &MergeStrategy::Auto).unwrap();
    assert_eq!(out.strategy, UsedStrategy::KeyForeignKey);
    assert_eq!(out.output.schema().names(), vec!["k", "x", "y"]);
    assert_eq!(multiset(&out.output), naive_join(&a, &b));
}
