//! Edge-case suite for decomposition: degenerate key layouts, composite
//! keys equal to the whole table, null keys, and status accounting.

use cods::{decompose, DecomposeSpec, EvolutionError};
use cods_storage::{Schema, Table, Value, ValueType};

fn t(cols: &[(&str, ValueType)], rows: Vec<Vec<Value>>) -> Table {
    Table::from_rows("R", Schema::build(cols, &[]).unwrap(), &rows).unwrap()
}

#[test]
fn key_unique_per_row_changed_side_keeps_all_rows() {
    // Every key distinct: the "changed" table has as many rows as the input.
    let input = t(
        &[
            ("k", ValueType::Int),
            ("a", ValueType::Int),
            ("d", ValueType::Int),
        ],
        (0..50)
            .map(|i| vec![Value::int(i), Value::int(i % 7), Value::int(i * 2)])
            .collect(),
    );
    let out = decompose(
        &input,
        &DecomposeSpec::new("S", &["k", "a"], "T", &["k", "d"]),
    )
    .unwrap();
    assert_eq!(out.changed.rows(), 50);
    assert_eq!(out.distinct_keys, 50);
    out.changed.verify_key().unwrap();
}

#[test]
fn single_key_value_changed_side_has_one_row() {
    let input = t(
        &[
            ("k", ValueType::Int),
            ("a", ValueType::Int),
            ("d", ValueType::Int),
        ],
        (0..50)
            .map(|i| vec![Value::int(9), Value::int(i), Value::int(42)])
            .collect(),
    );
    let out = decompose(
        &input,
        &DecomposeSpec::new("S", &["k", "a"], "T", &["k", "d"]),
    )
    .unwrap();
    assert_eq!(out.changed.rows(), 1);
    assert_eq!(out.changed.row(0), vec![Value::int(9), Value::int(42)]);
}

#[test]
fn null_keys_form_their_own_group() {
    let input = t(
        &[
            ("k", ValueType::Int),
            ("a", ValueType::Int),
            ("d", ValueType::Int),
        ],
        vec![
            vec![Value::Null, Value::int(1), Value::int(100)],
            vec![Value::int(5), Value::int(2), Value::int(200)],
            vec![Value::Null, Value::int(3), Value::int(100)],
        ],
    );
    let out = decompose(
        &input,
        &DecomposeSpec::new("S", &["k", "a"], "T", &["k", "d"]),
    )
    .unwrap();
    assert_eq!(out.changed.rows(), 2); // NULL group + key 5
    let mut rows = out.changed.to_rows();
    rows.sort();
    assert_eq!(rows[0], vec![Value::Null, Value::int(100)]);
}

#[test]
fn changed_side_may_be_just_the_key() {
    // T = (k) alone: a pure distinct-values table.
    let input = t(
        &[("k", ValueType::Int), ("a", ValueType::Int)],
        (0..30)
            .map(|i| vec![Value::int(i % 4), Value::int(i)])
            .collect(),
    );
    let out = decompose(&input, &DecomposeSpec::new("S", &["k", "a"], "T", &["k"])).unwrap();
    assert_eq!(out.changed.rows(), 4);
    assert_eq!(out.changed.arity(), 1);
}

#[test]
fn overlapping_non_key_columns_are_rejected_only_if_absent() {
    // Both sides may carry extra shared columns — the shape check accepts
    // any overlap; the common columns are all shared ones.
    let input = t(
        &[
            ("k", ValueType::Int),
            ("a", ValueType::Int),
            ("d", ValueType::Int),
        ],
        (0..20)
            .map(|i| vec![Value::int(i % 3), Value::int(i), Value::int((i % 3) * 7)])
            .collect(),
    );
    // Share both k and d: common = {k, d}; FD (k, d) → nothing extra on the
    // changed side, trivially lossless.
    let out = decompose(
        &input,
        &DecomposeSpec::new("S", &["k", "a", "d"], "T", &["k", "d"]),
    )
    .unwrap();
    assert_eq!(out.changed.rows(), 3); // 3 distinct (k, d) pairs
}

#[test]
fn fd_check_reports_offending_column() {
    let input = t(
        &[
            ("k", ValueType::Int),
            ("a", ValueType::Int),
            ("d", ValueType::Int),
        ],
        vec![
            vec![Value::int(1), Value::int(1), Value::int(10)],
            vec![Value::int(1), Value::int(2), Value::int(20)],
        ],
    );
    let err = decompose(
        &input,
        &DecomposeSpec::new("S", &["k", "a"], "T", &["k", "d"]),
    )
    .unwrap_err();
    match err {
        EvolutionError::FdViolation(msg) => assert!(msg.contains("\"d\""), "{msg}"),
        other => panic!("wrong error: {other}"),
    }
}

#[test]
fn status_counts_match_outputs() {
    let input = t(
        &[
            ("k", ValueType::Int),
            ("a", ValueType::Int),
            ("d", ValueType::Int),
        ],
        (0..100)
            .map(|i| vec![Value::int(i % 10), Value::int(i), Value::int(i % 10)])
            .collect(),
    );
    let out = decompose(
        &input,
        &DecomposeSpec::new("S", &["k", "a"], "T", &["k", "d"]),
    )
    .unwrap();
    assert_eq!(out.status.step("distinction").unwrap().items, Some(10));
    assert_eq!(
        out.status.step("reuse unchanged columns").unwrap().items,
        Some(2)
    );
    assert!(out.status.step("verify functional dependency").is_some());
    assert!(out.status.total.as_nanos() > 0);
}

#[test]
fn wide_table_decomposition() {
    // Ten columns, split 6/5 with one shared key column.
    let cols: Vec<(String, ValueType)> =
        (0..10).map(|i| (format!("c{i}"), ValueType::Int)).collect();
    let col_refs: Vec<(&str, ValueType)> = cols.iter().map(|(n, t)| (n.as_str(), *t)).collect();
    let rows: Vec<Vec<Value>> = (0..200)
        .map(|r| {
            (0..10)
                .map(|c| {
                    if c == 0 {
                        Value::int(r % 8)
                    } else if c < 6 {
                        Value::int(r * 10 + c)
                    } else {
                        Value::int((r % 8) * 100 + c) // FD c0 → c6..c9
                    }
                })
                .collect()
        })
        .collect();
    let input = Table::from_rows("R", Schema::build(&col_refs, &[]).unwrap(), &rows).unwrap();
    let out = decompose(
        &input,
        &DecomposeSpec::new(
            "S",
            &["c0", "c1", "c2", "c3", "c4", "c5"],
            "T",
            &["c0", "c6", "c7", "c8", "c9"],
        ),
    )
    .unwrap();
    assert_eq!(out.unchanged.arity(), 6);
    assert_eq!(out.changed.arity(), 5);
    assert_eq!(out.changed.rows(), 8);
    out.changed.verify_key().unwrap();
}
