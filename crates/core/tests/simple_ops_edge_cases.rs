//! Edge-case suite for the simple SMOs: empty tables, extreme predicates,
//! unions of empties, and column operations on evolution outputs.

use cods::simple_ops::{add_column, partition_table, union_tables, ColumnFill};
use cods::{decompose, DecomposeSpec};
use cods_query::Predicate;
use cods_storage::{ColumnDef, Schema, Table, Value, ValueType};

fn t(rows: Vec<Vec<Value>>) -> Table {
    let schema = Schema::build(&[("k", ValueType::Int), ("v", ValueType::Int)], &[]).unwrap();
    Table::from_rows("t", schema, &rows).unwrap()
}

#[test]
fn partition_all_or_nothing() {
    let input = t((0..40)
        .map(|i| vec![Value::int(i), Value::int(i)])
        .collect());
    // Everything satisfies.
    let (sat, rest, _) = partition_table(&input, &Predicate::True, "a", "b").unwrap();
    assert_eq!(sat.rows(), 40);
    assert_eq!(rest.rows(), 0);
    rest.check_invariants().unwrap();
    // Nothing satisfies.
    let (sat, rest, _) = partition_table(&input, &Predicate::True.not(), "a", "b").unwrap();
    assert_eq!(sat.rows(), 0);
    assert_eq!(rest.rows(), 40);
}

#[test]
fn partition_of_empty_table() {
    let input = t(vec![]);
    let (sat, rest, _) = partition_table(&input, &Predicate::eq("k", 1i64), "a", "b").unwrap();
    assert_eq!(sat.rows(), 0);
    assert_eq!(rest.rows(), 0);
}

#[test]
fn union_with_empty_side() {
    let a = t((0..10)
        .map(|i| vec![Value::int(i), Value::int(i)])
        .collect());
    let empty = t(vec![]);
    let (u1, _) = union_tables(&a, &empty, "u").unwrap();
    assert_eq!(u1.rows(), 10);
    u1.check_invariants().unwrap();
    let (u2, _) = union_tables(&empty, &a, "u").unwrap();
    assert_eq!(u2.tuple_multiset(), a.tuple_multiset());
    let (u3, _) = union_tables(&empty, &empty, "u").unwrap();
    assert_eq!(u3.rows(), 0);
}

#[test]
fn union_of_table_with_itself_doubles() {
    let a = t((0..5)
        .map(|i| vec![Value::int(i % 2), Value::int(i)])
        .collect());
    let (u, _) = union_tables(&a, &a, "u").unwrap();
    assert_eq!(u.rows(), 10);
    for (row, count) in u.tuple_multiset() {
        assert_eq!(count % 2, 0, "odd count for {row:?}");
    }
}

#[test]
fn add_column_to_empty_table_then_grow() {
    let empty = t(vec![]);
    let (with_col, _) = add_column(
        &empty,
        ColumnDef::new("flag", ValueType::Bool),
        &ColumnFill::Default(Value::Bool(true)),
    )
    .unwrap();
    assert_eq!(with_col.arity(), 3);
    assert_eq!(with_col.rows(), 0);
    with_col.check_invariants().unwrap();
}

#[test]
fn column_ops_compose_with_decompose() {
    // Add a column, decompose keeping it on the changed side, verify the
    // default value survived through bitmap filtering.
    let input = t((0..60)
        .map(|i| vec![Value::int(i % 6), Value::int((i % 6) * 10)])
        .collect());
    let (wide, _) = add_column(
        &input,
        ColumnDef::new("src", ValueType::Str),
        &ColumnFill::Default(Value::str("gen")),
    )
    .unwrap();
    let out = decompose(
        &wide,
        &DecomposeSpec::new("S", &["k"], "T", &["k", "v", "src"]),
    )
    .unwrap();
    assert_eq!(out.changed.rows(), 6);
    for row in out.changed.to_rows() {
        assert_eq!(row[2], Value::str("gen"));
    }
    // The filtered default column is still a single fill bitmap.
    let src_col = out.changed.column_by_name("src").unwrap();
    assert_eq!(src_col.distinct_count(), 1);
}

#[test]
fn predicate_mask_on_float_and_string_columns() {
    let schema = Schema::build(
        &[("name", ValueType::Str), ("score", ValueType::Float)],
        &[],
    )
    .unwrap();
    let rows: Vec<Vec<Value>> = (0..20)
        .map(|i| {
            vec![
                Value::str(format!("user{}", i % 4)),
                Value::float(i as f64 / 2.0),
            ]
        })
        .collect();
    let table = Table::from_rows("t", schema, &rows).unwrap();
    let (sat, rest, _) = partition_table(
        &table,
        &Predicate::eq("name", "user1").or(Predicate::ge("score", 8.0)),
        "a",
        "b",
    )
    .unwrap();
    assert_eq!(sat.rows() + rest.rows(), 20);
    for row in sat.to_rows() {
        let is_user1 = row[0] == Value::str("user1");
        let high = matches!(&row[1], Value::Float(f) if f.0 >= 8.0);
        assert!(is_user1 || high, "{row:?} wrongly satisfied");
    }
}
