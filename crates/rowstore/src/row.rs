//! Row (tuple) encoding for the row-oriented baseline engine.
//!
//! Rows are serialized to a compact byte format and stored in slotted pages,
//! as a disk-resident row store would. The encode/decode cost is part of the
//! baseline's honest query-level evolution price: every tuple the evolution
//! query touches is decoded, and every output tuple re-encoded.

use bytes::{Buf, BufMut};
use cods_storage::{StorageError, Value};

/// Serializes a row into `buf`.
pub fn encode_row<B: BufMut>(buf: &mut B, row: &[Value]) {
    buf.put_u16_le(row.len() as u16);
    for v in row {
        match v {
            Value::Null => buf.put_u8(0),
            Value::Bool(b) => {
                buf.put_u8(1);
                buf.put_u8(u8::from(*b));
            }
            Value::Int(i) => {
                buf.put_u8(2);
                buf.put_i64_le(*i);
            }
            Value::Float(f) => {
                buf.put_u8(3);
                buf.put_f64_le(f.0);
            }
            Value::Str(s) => {
                buf.put_u8(4);
                buf.put_u32_le(s.len() as u32);
                buf.put_slice(s.as_bytes());
            }
        }
    }
}

/// Size in bytes [`encode_row`] will produce.
pub fn encoded_row_len(row: &[Value]) -> usize {
    2 + row
        .iter()
        .map(|v| match v {
            Value::Null => 1,
            Value::Bool(_) => 2,
            Value::Int(_) | Value::Float(_) => 9,
            Value::Str(s) => 5 + s.len(),
        })
        .sum::<usize>()
}

/// Deserializes a row from `buf`.
pub fn decode_row<B: Buf>(buf: &mut B) -> Result<Vec<Value>, StorageError> {
    let eof = || StorageError::Corrupt("truncated row".into());
    if buf.remaining() < 2 {
        return Err(eof());
    }
    let arity = buf.get_u16_le() as usize;
    let mut row = Vec::with_capacity(arity);
    for _ in 0..arity {
        if buf.remaining() < 1 {
            return Err(eof());
        }
        row.push(match buf.get_u8() {
            0 => Value::Null,
            1 => {
                if buf.remaining() < 1 {
                    return Err(eof());
                }
                Value::Bool(buf.get_u8() != 0)
            }
            2 => {
                if buf.remaining() < 8 {
                    return Err(eof());
                }
                Value::Int(buf.get_i64_le())
            }
            3 => {
                if buf.remaining() < 8 {
                    return Err(eof());
                }
                Value::float(buf.get_f64_le())
            }
            4 => {
                if buf.remaining() < 4 {
                    return Err(eof());
                }
                let len = buf.get_u32_le() as usize;
                if buf.remaining() < len {
                    return Err(eof());
                }
                let mut bytes = vec![0u8; len];
                buf.copy_to_slice(&mut bytes);
                Value::Str(
                    String::from_utf8(bytes)
                        .map_err(|e| StorageError::Corrupt(format!("bad utf8: {e}")))?
                        .into(),
                )
            }
            k => return Err(StorageError::Corrupt(format!("unknown value kind {k}"))),
        });
    }
    Ok(row)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    #[test]
    fn round_trip_all_types() {
        let row = vec![
            Value::Null,
            Value::Bool(true),
            Value::int(-42),
            Value::float(2.75),
            Value::str("hello world"),
        ];
        let mut buf = BytesMut::new();
        encode_row(&mut buf, &row);
        assert_eq!(buf.len(), encoded_row_len(&row));
        let back = decode_row(&mut buf.freeze()).unwrap();
        assert_eq!(back, row);
    }

    #[test]
    fn empty_row() {
        let mut buf = BytesMut::new();
        encode_row(&mut buf, &[]);
        let back = decode_row(&mut buf.freeze()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn truncation_detected() {
        let row = vec![Value::str("abcdef")];
        let mut buf = BytesMut::new();
        encode_row(&mut buf, &row);
        let bytes = buf.freeze();
        for cut in [0, 1, 3, bytes.len() - 1] {
            assert!(decode_row(&mut bytes.slice(0..cut)).is_err(), "cut {cut}");
        }
    }
}
