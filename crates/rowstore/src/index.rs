//! B-tree secondary indexes for the row-store baselines.
//!
//! The "C+I" curve of the paper's Figure 3 is the commercial row store *with
//! indexes*: every tuple inserted into an evolution target table also pays an
//! ordered-index maintenance cost, and after a bulk load the index must be
//! built from scratch. Both costs are realized here.

use crate::heap::RowId;
use cods_storage::Value;
use std::collections::BTreeMap;
use std::ops::Bound;

/// An ordered index from (composite) key values to row ids.
#[derive(Debug, Default)]
pub struct BTreeIndex {
    /// Indices of the indexed columns within the table schema.
    key_columns: Vec<usize>,
    map: BTreeMap<Vec<Value>, Vec<RowId>>,
    entries: u64,
}

impl BTreeIndex {
    /// Creates an empty index over the given column positions.
    pub fn new(key_columns: Vec<usize>) -> Self {
        BTreeIndex {
            key_columns,
            map: BTreeMap::new(),
            entries: 0,
        }
    }

    /// The indexed column positions.
    pub fn key_columns(&self) -> &[usize] {
        &self.key_columns
    }

    /// Extracts this index's key from a full row.
    pub fn key_of(&self, row: &[Value]) -> Vec<Value> {
        self.key_columns.iter().map(|&i| row[i].clone()).collect()
    }

    /// Inserts one entry (index maintenance on the insert path).
    pub fn insert(&mut self, row: &[Value], rid: RowId) {
        let key = self.key_of(row);
        self.map.entry(key).or_default().push(rid);
        self.entries += 1;
    }

    /// Exact-match lookup.
    pub fn lookup(&self, key: &[Value]) -> &[RowId] {
        self.map.get(key).map_or(&[], |v| v.as_slice())
    }

    /// Range scan over `[lo, hi]` (inclusive bounds on present ends).
    pub fn range<'a>(
        &'a self,
        lo: Option<&'a [Value]>,
        hi: Option<&'a [Value]>,
    ) -> impl Iterator<Item = (&'a Vec<Value>, &'a [RowId])> + 'a {
        let lo_bound = lo.map_or(Bound::Unbounded, |k| Bound::Included(k.to_vec()));
        let hi_bound = hi.map_or(Bound::Unbounded, |k| Bound::Included(k.to_vec()));
        self.map
            .range((lo_bound, hi_bound))
            .map(|(k, v)| (k, v.as_slice()))
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Total entries.
    pub fn len(&self) -> u64 {
        self.entries
    }

    /// Returns `true` when the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Iterates all `(key, rids)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<Value>, &[RowId])> {
        self.map.iter().map(|(k, v)| (k, v.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(n: u32) -> RowId {
        RowId { page: n, slot: 0 }
    }

    #[test]
    fn insert_and_lookup() {
        let mut idx = BTreeIndex::new(vec![0]);
        idx.insert(&[Value::int(5), Value::str("x")], rid(0));
        idx.insert(&[Value::int(5), Value::str("y")], rid(1));
        idx.insert(&[Value::int(7), Value::str("z")], rid(2));
        assert_eq!(idx.lookup(&[Value::int(5)]), &[rid(0), rid(1)]);
        assert_eq!(idx.lookup(&[Value::int(7)]), &[rid(2)]);
        assert!(idx.lookup(&[Value::int(9)]).is_empty());
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.distinct_keys(), 2);
    }

    #[test]
    fn composite_keys() {
        let mut idx = BTreeIndex::new(vec![1, 0]);
        idx.insert(&[Value::int(1), Value::str("a")], rid(0));
        idx.insert(&[Value::int(2), Value::str("a")], rid(1));
        assert_eq!(idx.lookup(&[Value::str("a"), Value::int(2)]), &[rid(1)]);
    }

    #[test]
    fn range_scan_ordered() {
        let mut idx = BTreeIndex::new(vec![0]);
        for i in 0..10 {
            idx.insert(&[Value::int(i)], rid(i as u32));
        }
        let lo = [Value::int(3)];
        let hi = [Value::int(6)];
        let keys: Vec<i64> = idx
            .range(Some(&lo), Some(&hi))
            .map(|(k, _)| match &k[0] {
                Value::Int(i) => *i,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(keys, vec![3, 4, 5, 6]);
        assert_eq!(idx.range(None, None).count(), 10);
    }

    #[test]
    fn empty_index() {
        let idx = BTreeIndex::new(vec![0]);
        assert!(idx.is_empty());
        assert_eq!(idx.iter().count(), 0);
    }
}
