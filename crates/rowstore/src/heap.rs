//! Heap files: an append-only sequence of slotted pages plus row addressing.

use crate::page::{Page, PAGE_SIZE};

/// Physical address of a row: page number and slot within the page.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RowId {
    /// Page index within the heap file.
    pub page: u32,
    /// Slot index within the page.
    pub slot: u16,
}

/// An append-only heap file of slotted pages.
#[derive(Default)]
pub struct HeapFile {
    pages: Vec<Page>,
    rows: u64,
}

impl HeapFile {
    /// Creates an empty heap file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pages allocated.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Number of rows stored.
    pub fn row_count(&self) -> u64 {
        self.rows
    }

    /// Approximate on-disk footprint.
    pub fn size_bytes(&self) -> usize {
        self.pages.len() * PAGE_SIZE
    }

    /// Appends a record, allocating a new page when the last one is full.
    ///
    /// # Panics
    /// Panics if the record is larger than a page.
    pub fn insert(&mut self, record: &[u8]) -> RowId {
        assert!(
            record.len() + 8 <= PAGE_SIZE,
            "record of {} bytes exceeds page size",
            record.len()
        );
        if self.pages.is_empty() || !self.pages.last().unwrap().fits(record.len()) {
            self.pages.push(Page::new());
        }
        let page = self.pages.len() - 1;
        let slot = self
            .pages
            .last_mut()
            .unwrap()
            .insert(record)
            .expect("record fits after page allocation");
        self.rows += 1;
        RowId {
            page: page as u32,
            slot,
        }
    }

    /// Reads the record at `rid`.
    pub fn record(&self, rid: RowId) -> &[u8] {
        self.pages[rid.page as usize].record(rid.slot)
    }

    /// Full scan in insertion order, yielding `(RowId, record bytes)`.
    pub fn scan(&self) -> impl Iterator<Item = (RowId, &[u8])> {
        self.pages.iter().enumerate().flat_map(|(pno, page)| {
            (0..page.slot_count()).map(move |slot| {
                (
                    RowId {
                        page: pno as u32,
                        slot,
                    },
                    page.record(slot),
                )
            })
        })
    }

    /// Mutable access to a page (journaling).
    pub fn page_mut(&mut self, page: u32) -> &mut Page {
        &mut self.pages[page as usize]
    }

    /// Shared access to a page.
    pub fn page(&self, page: u32) -> &Page {
        &self.pages[page as usize]
    }

    /// Index of the page the *next* insert of `len` bytes would land on.
    pub fn target_page(&self, len: usize) -> u32 {
        if self.pages.is_empty() || !self.pages.last().unwrap().fits(len) {
            self.pages.len() as u32
        } else {
            (self.pages.len() - 1) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_across_pages() {
        let mut h = HeapFile::new();
        let rec = vec![1u8; 3000];
        let ids: Vec<RowId> = (0..10).map(|_| h.insert(&rec)).collect();
        assert_eq!(h.row_count(), 10);
        assert!(h.page_count() >= 4); // 2 per page
        assert_ne!(ids[0].page, ids[9].page);
        for id in ids {
            assert_eq!(h.record(id), rec.as_slice());
        }
    }

    #[test]
    fn scan_preserves_order() {
        let mut h = HeapFile::new();
        for i in 0u32..100 {
            h.insert(&i.to_le_bytes());
        }
        let scanned: Vec<u32> = h
            .scan()
            .map(|(_, r)| u32::from_le_bytes(r.try_into().unwrap()))
            .collect();
        assert_eq!(scanned, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn target_page_predicts_insert() {
        let mut h = HeapFile::new();
        assert_eq!(h.target_page(100), 0);
        let rid = h.insert(&[0u8; 100]);
        assert_eq!(rid.page, 0);
        // Something enormous forces a new page (8 KiB minus header minus the
        // 100 bytes already used no longer fits 8150 bytes).
        assert_eq!(h.target_page(8150), 1);
    }

    #[test]
    #[should_panic(expected = "exceeds page size")]
    fn oversized_record_panics() {
        HeapFile::new().insert(&vec![0u8; PAGE_SIZE]);
    }
}
