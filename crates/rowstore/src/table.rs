//! Row-oriented tables: heap file + optional B-tree indexes.

use crate::heap::{HeapFile, RowId};
use crate::index::BTreeIndex;
use crate::journal::Journal;
use crate::row::{decode_row, encode_row, encoded_row_len};
use cods_storage::{Schema, StorageError, Value};

/// A mutable row-oriented table.
pub struct RowTable {
    name: String,
    schema: Schema,
    heap: HeapFile,
    indexes: Vec<BTreeIndex>,
}

impl RowTable {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        RowTable {
            name: name.into(),
            schema,
            heap: HeapFile::new(),
            indexes: Vec::new(),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn row_count(&self) -> u64 {
        self.heap.row_count()
    }

    /// Number of heap pages.
    pub fn page_count(&self) -> usize {
        self.heap.page_count()
    }

    /// The secondary indexes.
    pub fn indexes(&self) -> &[BTreeIndex] {
        &self.indexes
    }

    /// Declares an index over the given column positions. If the table
    /// already has rows the index is built by a full scan (the "rebuild
    /// indexes from scratch" cost of query-level evolution).
    pub fn create_index(&mut self, key_columns: Vec<usize>) -> Result<(), StorageError> {
        for &c in &key_columns {
            if c >= self.schema.arity() {
                return Err(StorageError::InvalidSchema(format!(
                    "index column {c} out of range"
                )));
            }
        }
        let mut idx = BTreeIndex::new(key_columns);
        for (rid, rec) in self.heap.scan() {
            let mut bytes = rec;
            let row = decode_row(&mut bytes)?;
            idx.insert(&row, rid);
        }
        self.indexes.push(idx);
        Ok(())
    }

    fn validate(&self, row: &[Value]) -> Result<(), StorageError> {
        if row.len() != self.schema.arity() {
            return Err(StorageError::RowMismatch(format!(
                "row has {} values, schema has {}",
                row.len(),
                self.schema.arity()
            )));
        }
        for (v, c) in row.iter().zip(self.schema.columns()) {
            if !v.conforms_to(c.ty) {
                return Err(StorageError::RowMismatch(format!(
                    "value {v} does not conform to column {:?} of type {}",
                    c.name, c.ty
                )));
            }
        }
        Ok(())
    }

    /// Inserts a row, maintaining all indexes.
    pub fn insert(&mut self, row: &[Value]) -> Result<RowId, StorageError> {
        self.validate(row)?;
        let mut buf = Vec::with_capacity(encoded_row_len(row));
        encode_row(&mut buf, row);
        let rid = self.heap.insert(&buf);
        for idx in &mut self.indexes {
            idx.insert(row, rid);
        }
        Ok(rid)
    }

    /// Inserts a row under rollback-journal protection: the before-image of
    /// the target page is copied into `journal` before the page is modified
    /// (the SQLite-style per-statement cost).
    pub fn insert_journaled(
        &mut self,
        row: &[Value],
        journal: &mut Journal,
    ) -> Result<RowId, StorageError> {
        self.validate(row)?;
        let mut buf = Vec::with_capacity(encoded_row_len(row));
        encode_row(&mut buf, row);
        let target = self.heap.target_page(buf.len());
        if (target as usize) < self.heap.page_count() {
            journal.record_before_image(target, self.heap.page(target).image());
        } else {
            // Fresh page: journal only needs the allocation record, modeled
            // as journaling a zero page the first time.
            static ZERO: [u8; crate::page::PAGE_SIZE] = [0u8; crate::page::PAGE_SIZE];
            journal.record_before_image(target, &ZERO);
        }
        let rid = self.heap.insert(&buf);
        for idx in &mut self.indexes {
            idx.insert(row, rid);
        }
        Ok(rid)
    }

    /// Reads one row by id.
    pub fn row(&self, rid: RowId) -> Result<Vec<Value>, StorageError> {
        decode_row(&mut self.heap.record(rid))
    }

    /// Full scan decoding every tuple — the access path query-level
    /// evolution is forced to use.
    pub fn scan(&self) -> impl Iterator<Item = (RowId, Vec<Value>)> + '_ {
        self.heap.scan().map(|(rid, mut rec)| {
            let row = decode_row(&mut rec).expect("heap row decodes");
            (rid, row)
        })
    }

    /// Approximate on-disk footprint.
    pub fn size_bytes(&self) -> usize {
        self.heap.size_bytes()
    }

    /// Renames the table.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cods_storage::ValueType;

    fn schema() -> Schema {
        Schema::build(&[("id", ValueType::Int), ("name", ValueType::Str)], &["id"]).unwrap()
    }

    #[test]
    fn insert_scan_round_trip() {
        let mut t = RowTable::new("t", schema());
        for i in 0..100 {
            t.insert(&[Value::int(i), Value::str(format!("n{i}"))])
                .unwrap();
        }
        assert_eq!(t.row_count(), 100);
        let rows: Vec<Vec<Value>> = t.scan().map(|(_, r)| r).collect();
        assert_eq!(rows.len(), 100);
        assert_eq!(rows[42], vec![Value::int(42), Value::str("n42")]);
    }

    #[test]
    fn validation_rejects_bad_rows() {
        let mut t = RowTable::new("t", schema());
        assert!(t.insert(&[Value::int(1)]).is_err());
        assert!(t.insert(&[Value::str("x"), Value::str("y")]).is_err());
    }

    #[test]
    fn index_maintained_on_insert() {
        let mut t = RowTable::new("t", schema());
        t.create_index(vec![1]).unwrap();
        let rid = t.insert(&[Value::int(1), Value::str("alice")]).unwrap();
        t.insert(&[Value::int(2), Value::str("bob")]).unwrap();
        assert_eq!(t.indexes()[0].lookup(&[Value::str("alice")]), &[rid]);
    }

    #[test]
    fn index_built_from_existing_rows() {
        let mut t = RowTable::new("t", schema());
        for i in 0..50 {
            t.insert(&[Value::int(i), Value::str(format!("n{}", i % 5))])
                .unwrap();
        }
        t.create_index(vec![1]).unwrap();
        assert_eq!(t.indexes()[0].len(), 50);
        assert_eq!(t.indexes()[0].distinct_keys(), 5);
        assert_eq!(t.indexes()[0].lookup(&[Value::str("n3")]).len(), 10);
    }

    #[test]
    fn journaled_inserts_copy_pages() {
        let mut t = RowTable::new("t", schema());
        let mut j = Journal::new();
        for i in 0..100 {
            t.insert_journaled(&[Value::int(i), Value::str("x")], &mut j)
                .unwrap();
            j.commit(); // autocommit per row
        }
        assert_eq!(j.commits, 100);
        // Every row journaled its target page once per transaction.
        assert_eq!(j.pages_journaled, 100);
    }

    #[test]
    fn bad_index_column_rejected() {
        let mut t = RowTable::new("t", schema());
        assert!(t.create_index(vec![5]).is_err());
    }
}
