//! # cods-rowstore
//!
//! Row-oriented baseline storage engine for the CODS reproduction. The
//! paper's Figure 3 compares CODS against a commercial row RDBMS ("C"), the
//! same with indexes ("C+I"), and SQLite ("S"); this crate supplies the
//! substrate those baselines run on:
//!
//! * [`page`] — 8 KiB slotted pages;
//! * [`heap`] — append-only heap files with [`heap::RowId`] addressing;
//! * [`row`] — tuple (de)serialization;
//! * [`index`] — B-tree secondary indexes built or maintained per insert;
//! * [`journal`] — rollback journal copying page before-images
//!   (the SQLite-style durability cost, minus only the fsync);
//! * [`table`] / [`engine`] — tables and the [`engine::RowDb`] database with
//!   the three insert policies that realize the C / C+I / S baselines.
//!
//! Query-level data evolution over this engine lives in `cods-query`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod heap;
pub mod index;
pub mod journal;
pub mod page;
pub mod row;
pub mod table;

pub use engine::{InsertPolicy, RowDb};
pub use heap::{HeapFile, RowId};
pub use index::BTreeIndex;
pub use journal::Journal;
pub use page::{Page, PAGE_SIZE};
pub use table::RowTable;
