//! The row-store database engine: a table namespace plus the insert policies
//! that distinguish the paper's baselines.
//!
//! * [`InsertPolicy::Batch`] — the plain commercial row store ("C"): rows are
//!   appended to heap pages, one commit per statement.
//! * [`InsertPolicy::Indexed`] — "C+I": like `Batch`, but every target-table
//!   insert also maintains the declared B-tree indexes.
//! * [`InsertPolicy::JournaledAutocommit`] — the SQLite-like engine ("S"):
//!   every row insert runs as its own transaction, copying the before-image
//!   of each dirtied page into a rollback journal.

use crate::journal::Journal;
use crate::table::RowTable;
use cods_storage::{Schema, StorageError, Value};
use std::collections::HashMap;

/// How inserts are executed (selects which baseline the engine models).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InsertPolicy {
    /// Heap append, one commit per statement ("C").
    Batch,
    /// Heap append plus index maintenance ("C+I").
    Indexed,
    /// One journaled transaction per row ("S", SQLite-like).
    JournaledAutocommit,
}

/// A row-oriented database instance.
pub struct RowDb {
    policy: InsertPolicy,
    tables: HashMap<String, RowTable>,
    journal: Journal,
}

impl RowDb {
    /// Creates an empty database with the given insert policy. Under
    /// [`InsertPolicy::JournaledAutocommit`] the journal is file-backed
    /// (a real journal file in the temp directory, truncated per commit,
    /// like SQLite's default mode); pass-through to an in-memory journal
    /// happens only if the file cannot be created.
    pub fn new(policy: InsertPolicy) -> Self {
        let journal = if policy == InsertPolicy::JournaledAutocommit {
            Journal::with_temp_file().unwrap_or_else(|_| Journal::new())
        } else {
            Journal::new()
        };
        RowDb {
            policy,
            tables: HashMap::new(),
            journal,
        }
    }

    /// The configured insert policy.
    pub fn policy(&self) -> InsertPolicy {
        self.policy
    }

    /// Creates a table.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> Result<(), StorageError> {
        if self.tables.contains_key(name) {
            return Err(StorageError::TableExists(name.to_string()));
        }
        self.tables
            .insert(name.to_string(), RowTable::new(name, schema));
        Ok(())
    }

    /// Drops a table.
    pub fn drop_table(&mut self, name: &str) -> Result<RowTable, StorageError> {
        self.tables
            .remove(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// Shared access to a table.
    pub fn table(&self, name: &str) -> Result<&RowTable, StorageError> {
        self.tables
            .get(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// Mutable access to a table.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut RowTable, StorageError> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// Returns `true` if the table exists.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Sorted table names.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        names.sort();
        names
    }

    /// Inserts one row into `table` under the configured policy.
    pub fn insert(&mut self, table: &str, row: &[Value]) -> Result<(), StorageError> {
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| StorageError::UnknownTable(table.to_string()))?;
        match self.policy {
            InsertPolicy::Batch | InsertPolicy::Indexed => {
                t.insert(row)?;
            }
            InsertPolicy::JournaledAutocommit => {
                t.insert_journaled(row, &mut self.journal)?;
                self.journal.commit();
            }
        }
        Ok(())
    }

    /// Bulk-inserts rows as one statement (one commit under journaled mode).
    pub fn insert_many<'a, I: IntoIterator<Item = &'a [Value]>>(
        &mut self,
        table: &str,
        rows: I,
    ) -> Result<u64, StorageError> {
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| StorageError::UnknownTable(table.to_string()))?;
        let mut n = 0;
        match self.policy {
            InsertPolicy::Batch | InsertPolicy::Indexed => {
                for row in rows {
                    t.insert(row)?;
                    n += 1;
                }
            }
            InsertPolicy::JournaledAutocommit => {
                for row in rows {
                    t.insert_journaled(row, &mut self.journal)?;
                    self.journal.commit();
                    n += 1;
                }
            }
        }
        Ok(n)
    }

    /// Journal statistics (pages journaled, commits).
    pub fn journal_stats(&self) -> (u64, u64) {
        (self.journal.pages_journaled, self.journal.commits)
    }

    /// Renames a table.
    pub fn rename_table(&mut self, from: &str, to: &str) -> Result<(), StorageError> {
        if self.tables.contains_key(to) {
            return Err(StorageError::TableExists(to.to_string()));
        }
        let mut t = self
            .tables
            .remove(from)
            .ok_or_else(|| StorageError::UnknownTable(from.to_string()))?;
        t.set_name(to);
        self.tables.insert(to.to_string(), t);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cods_storage::ValueType;

    fn schema() -> Schema {
        Schema::build(&[("a", ValueType::Int), ("b", ValueType::Str)], &[]).unwrap()
    }

    #[test]
    fn create_insert_scan() {
        let mut db = RowDb::new(InsertPolicy::Batch);
        db.create_table("t", schema()).unwrap();
        db.insert("t", &[Value::int(1), Value::str("x")]).unwrap();
        db.insert("t", &[Value::int(2), Value::str("y")]).unwrap();
        assert_eq!(db.table("t").unwrap().row_count(), 2);
        assert!(db.create_table("t", schema()).is_err());
        assert!(db
            .insert("missing", &[Value::int(1), Value::str("x")])
            .is_err());
    }

    #[test]
    fn journaled_policy_journals_every_row() {
        let mut db = RowDb::new(InsertPolicy::JournaledAutocommit);
        db.create_table("t", schema()).unwrap();
        for i in 0..50 {
            db.insert("t", &[Value::int(i), Value::str("v")]).unwrap();
        }
        let (pages, commits) = db.journal_stats();
        assert_eq!(commits, 50);
        assert_eq!(pages, 50);
    }

    #[test]
    fn batch_policy_never_journals() {
        let mut db = RowDb::new(InsertPolicy::Batch);
        db.create_table("t", schema()).unwrap();
        let rows: Vec<Vec<Value>> = (0..20)
            .map(|i| vec![Value::int(i), Value::str("v")])
            .collect();
        let n = db
            .insert_many("t", rows.iter().map(|r| r.as_slice()))
            .unwrap();
        assert_eq!(n, 20);
        assert_eq!(db.journal_stats(), (0, 0));
    }

    #[test]
    fn rename_and_drop() {
        let mut db = RowDb::new(InsertPolicy::Batch);
        db.create_table("a", schema()).unwrap();
        db.rename_table("a", "b").unwrap();
        assert!(db.contains("b"));
        assert!(!db.contains("a"));
        assert_eq!(db.table("b").unwrap().name(), "b");
        db.drop_table("b").unwrap();
        assert!(db.table_names().is_empty());
    }
}
