//! Rollback journal, modeling the SQLite-style durability cost.
//!
//! SQLite's default (rollback-journal) mode copies the *before image* of
//! every page a statement dirties into a journal file before modifying it,
//! and truncates the journal on commit. For a bulk `INSERT INTO … SELECT`
//! executed row at a time under autocommit (the "S" curve of Figure 3a),
//! that is one 8 KiB journal write plus a truncate per transaction. This
//! module reproduces exactly that work: the page copies and journal-file
//! writes are real; only the fsync is elided (documented substitution —
//! DESIGN.md §2 — because synchronous-I/O latency would measure the disk,
//! not the algorithms).
//!
//! The on-disk records are [`cods_storage::wal::JournalWriter`] frames —
//! the same checksummed format the column store's crash-safe save protocol
//! journals with — with the page number as the frame tag and the 8 KiB
//! before-image as the payload. This journal never *seals* (sealing is
//! the fsync this model elides), which also means a leftover file is
//! always read back as torn and discarded, exactly what rollback-journal
//! semantics want for a journal whose transaction never committed.

use crate::page::PAGE_SIZE;
use cods_storage::wal::JournalWriter;
use std::path::PathBuf;

/// A rollback journal holding before-images of dirtied pages.
#[derive(Default)]
pub struct Journal {
    /// Before-images spilled this transaction (page number, image).
    images: Vec<(u32, Box<[u8; PAGE_SIZE]>)>,
    /// Pages already journaled this transaction.
    journaled: std::collections::HashSet<u32>,
    /// Journal file (SQLite-like persistent journal); `None` keeps the
    /// journal purely in memory.
    file: Option<(PathBuf, JournalWriter)>,
    /// Statistics: total pages journaled across all transactions.
    pub pages_journaled: u64,
    /// Statistics: committed transactions.
    pub commits: u64,
    /// Statistics: bytes written to the journal file.
    pub bytes_written: u64,
}

impl Journal {
    /// Creates an in-memory journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a file-backed journal at `path` (truncating any previous
    /// content). The file is removed on drop.
    pub fn with_file(path: PathBuf) -> std::io::Result<Self> {
        let writer = JournalWriter::create(&path)?;
        let mut j = Journal::new();
        j.bytes_written = writer.bytes_written();
        j.file = Some((path, writer));
        Ok(j)
    }

    /// Creates a file-backed journal in the system temp directory with a
    /// unique name.
    pub fn with_temp_file() -> std::io::Result<Self> {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("cods-journal-{}-{n}.tmp", std::process::id()));
        Self::with_file(path)
    }

    /// Returns `true` when the journal is file-backed.
    pub fn is_file_backed(&self) -> bool {
        self.file.is_some()
    }

    /// Records the before-image of `page_no` unless already recorded in this
    /// transaction. Returns `true` if a copy was made.
    pub fn record_before_image(&mut self, page_no: u32, image: &[u8; PAGE_SIZE]) -> bool {
        if !self.journaled.insert(page_no) {
            return false;
        }
        // The actual 8 KiB copy — the cost the baseline pays per dirty page.
        let mut copy = Box::new([0u8; PAGE_SIZE]);
        copy.copy_from_slice(image);
        if let Some((_, w)) = &mut self.file {
            // SQLite writes the page number + page image to the journal
            // before the page may be modified (one buffered record): a
            // frame tagged with the page number, carrying the image.
            w.append(page_no, &copy[..]).expect("journal write");
            self.bytes_written = w.bytes_written();
        }
        self.images.push((page_no, copy));
        self.pages_journaled += 1;
        true
    }

    /// Commits the transaction: the journal is truncated and per-transaction
    /// state reset.
    pub fn commit(&mut self) {
        self.images.clear();
        self.journaled.clear();
        if let Some((_, w)) = &mut self.file {
            // PERSIST journal mode: rewind and overwrite instead of
            // truncating (SQLite offers this exactly because per-commit
            // ftruncate is expensive; the journaled bytes are identical).
            w.rewind().expect("journal rewind");
        }
        self.commits += 1;
    }

    /// Pages journaled in the current (uncommitted) transaction.
    pub fn pending_pages(&self) -> usize {
        self.images.len()
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        if let Some((path, _)) = &self.file {
            std::fs::remove_file(path).ok();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_each_page_once_per_txn() {
        let mut j = Journal::new();
        let img = Box::new([7u8; PAGE_SIZE]);
        assert!(j.record_before_image(3, &img));
        assert!(!j.record_before_image(3, &img));
        assert!(j.record_before_image(4, &img));
        assert_eq!(j.pending_pages(), 2);
        assert_eq!(j.pages_journaled, 2);
        assert!(!j.is_file_backed());
    }

    #[test]
    fn commit_resets_transaction() {
        let mut j = Journal::new();
        let img = Box::new([0u8; PAGE_SIZE]);
        j.record_before_image(1, &img);
        j.commit();
        assert_eq!(j.pending_pages(), 0);
        assert_eq!(j.commits, 1);
        // Same page journaled again in the next transaction.
        assert!(j.record_before_image(1, &img));
        assert_eq!(j.pages_journaled, 2);
    }

    #[test]
    fn file_backed_journal_writes_and_rewinds() {
        use cods_storage::wal::{FRAME_OVERHEAD_BYTES, JOURNAL_HEADER_BYTES};
        let record = PAGE_SIZE as u64 + FRAME_OVERHEAD_BYTES;
        let mut j = Journal::with_temp_file().unwrap();
        assert!(j.is_file_backed());
        let img = Box::new([9u8; PAGE_SIZE]);
        j.record_before_image(1, &img);
        j.record_before_image(2, &img);
        assert_eq!(j.bytes_written, JOURNAL_HEADER_BYTES + 2 * record);
        j.commit();
        j.record_before_image(1, &img);
        j.commit();
        assert_eq!(j.bytes_written, JOURNAL_HEADER_BYTES + 3 * record);
        assert_eq!(j.commits, 2);
    }

    #[test]
    fn temp_file_removed_on_drop() {
        let path;
        {
            let j = Journal::with_temp_file().unwrap();
            path = j.file.as_ref().unwrap().0.clone();
            assert!(path.exists());
        }
        assert!(!path.exists());
    }
}
