//! Slotted pages: the unit of storage and journaling in the row-store
//! baseline. Fixed 8 KiB pages with a slot directory growing from the end,
//! record bytes growing from the start — the classic heap-file layout.

/// Page size in bytes (8 KiB, SQLite-like default scale).
pub const PAGE_SIZE: usize = 8192;

/// Bytes of per-page header: record-area watermark + slot count.
const HEADER: usize = 4;
/// Bytes per slot directory entry: offset + length.
const SLOT: usize = 4;

/// A fixed-size slotted page.
#[derive(Clone)]
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
    /// Byte offset where the next record would start.
    free_start: usize,
    /// Number of slots in the directory.
    slots: u16,
    /// Dirty flag (set by inserts, cleared by the journal on snapshot).
    dirty: bool,
}

impl Default for Page {
    fn default() -> Self {
        Self::new()
    }
}

impl Page {
    /// Creates an empty page.
    pub fn new() -> Self {
        Page {
            data: Box::new([0u8; PAGE_SIZE]),
            free_start: HEADER,
            slots: 0,
            dirty: false,
        }
    }

    /// Number of records stored.
    pub fn slot_count(&self) -> u16 {
        self.slots
    }

    /// Free bytes remaining for one more record of `len` bytes (including
    /// its slot entry).
    pub fn fits(&self, len: usize) -> bool {
        let slot_area = (self.slots as usize + 1) * SLOT;
        self.free_start + len + slot_area <= PAGE_SIZE
    }

    /// Inserts a record, returning its slot number, or `None` if it does not
    /// fit.
    pub fn insert(&mut self, record: &[u8]) -> Option<u16> {
        if !self.fits(record.len()) {
            return None;
        }
        let off = self.free_start;
        self.data[off..off + record.len()].copy_from_slice(record);
        self.free_start += record.len();
        let slot = self.slots;
        let dir = PAGE_SIZE - (slot as usize + 1) * SLOT;
        self.data[dir..dir + 2].copy_from_slice(&(off as u16).to_le_bytes());
        self.data[dir + 2..dir + 4].copy_from_slice(&(record.len() as u16).to_le_bytes());
        self.slots += 1;
        self.dirty = true;
        Some(slot)
    }

    /// Reads the record in `slot`.
    ///
    /// # Panics
    /// Panics if `slot` is out of range.
    pub fn record(&self, slot: u16) -> &[u8] {
        assert!(slot < self.slots, "slot {slot} out of range {}", self.slots);
        let dir = PAGE_SIZE - (slot as usize + 1) * SLOT;
        let off = u16::from_le_bytes([self.data[dir], self.data[dir + 1]]) as usize;
        let len = u16::from_le_bytes([self.data[dir + 2], self.data[dir + 3]]) as usize;
        &self.data[off..off + len]
    }

    /// Iterates all records in slot order.
    pub fn records(&self) -> impl Iterator<Item = &[u8]> {
        (0..self.slots).map(move |s| self.record(s))
    }

    /// Whether the page was modified since the last journal snapshot.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Clears the dirty flag (called by the journal after snapshotting).
    pub fn clear_dirty(&mut self) {
        self.dirty = false;
    }

    /// Raw page image (for journaling).
    pub fn image(&self) -> &[u8; PAGE_SIZE] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_read_back() {
        let mut p = Page::new();
        let s0 = p.insert(b"hello").unwrap();
        let s1 = p.insert(b"world!").unwrap();
        assert_eq!(p.record(s0), b"hello");
        assert_eq!(p.record(s1), b"world!");
        assert_eq!(p.slot_count(), 2);
        assert!(p.is_dirty());
    }

    #[test]
    fn fills_up_and_rejects() {
        let mut p = Page::new();
        let rec = vec![7u8; 1000];
        let mut n = 0;
        while p.insert(&rec).is_some() {
            n += 1;
        }
        // 8 pages of ~1004 bytes each fit in 8 KiB.
        assert!((7..=8).contains(&n), "fit {n} records");
        assert!(!p.fits(1000));
        assert!(p.fits(10));
    }

    #[test]
    fn empty_record_is_fine() {
        let mut p = Page::new();
        let s = p.insert(b"").unwrap();
        assert_eq!(p.record(s), b"");
    }

    #[test]
    fn records_iterates_in_order() {
        let mut p = Page::new();
        p.insert(b"a").unwrap();
        p.insert(b"bb").unwrap();
        p.insert(b"ccc").unwrap();
        let all: Vec<&[u8]> = p.records().collect();
        assert_eq!(all, vec![b"a".as_ref(), b"bb".as_ref(), b"ccc".as_ref()]);
    }

    #[test]
    fn dirty_flag_lifecycle() {
        let mut p = Page::new();
        assert!(!p.is_dirty());
        p.insert(b"x").unwrap();
        assert!(p.is_dirty());
        p.clear_dirty();
        assert!(!p.is_dirty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_slot_panics() {
        Page::new().record(0);
    }
}
