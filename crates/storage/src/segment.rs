//! Row-range segments: the unit of storage, parallelism, and pruning of a
//! segmented [`EncodedColumn`](crate::encoded::EncodedColumn).
//!
//! A column is a column-global dictionary plus a directory of segments,
//! each covering a consecutive row range (nominally
//! [`DEFAULT_SEGMENT_ROWS`] rows) in its own encoding. The bitmap
//! [`Segment`] defined here stores one WAH bitmap per value id *that occurs
//! in its range* — sparse, so a value concentrated in one part of the table
//! costs nothing elsewhere — along with per-segment statistics (row count,
//! present ids, per-id ones, compressed size) that scans use to prune
//! entire segments without touching bitmap words. Its RLE twin lives in
//! [`rle_segment`](crate::rle_segment).
//!
//! Segments are immutable and `Arc`-shared: appending tables (UNION) and
//! row-range extraction reuse existing segments by reference instead of
//! rewriting bitmaps.

use cods_bitmap::Wah;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;

/// Default number of rows per segment (64 Ki).
pub const DEFAULT_SEGMENT_ROWS: u64 = 64 * 1024;

/// The zone map of one segment: the present value ids whose values are the
/// segment's minimum and maximum **in value order**. Ids (not ranks) are
/// stored because ids are stable under dictionary growth; range scans
/// resolve them to ranks through the dictionary's lazily built
/// [`ValueOrder`](crate::dictionary::ValueOrder) and skip segments whose
/// `[min, max]` value interval cannot intersect a predicate's satisfying
/// range — O(1) per segment instead of a walk over its present-id stats.
///
/// Zones are maintained *incrementally*: splicing directories (UNION
/// concat, compaction merges) folds source zones instead of rescanning
/// payload, and fresh segments derive their zone from present-id stats —
/// never from bitmap words or runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Zone {
    /// Present id with the minimal value (by value order).
    pub min_id: u32,
    /// Present id with the maximal value (by value order).
    pub max_id: u32,
}

impl Zone {
    /// Derives the zone of a segment from its present-id stats and the
    /// dictionary's rank permutation. O(present) integer comparisons; the
    /// payload (bitmaps/runs) is never touched.
    pub fn of_ids(ids: &[u32], ranks: &[u32]) -> Zone {
        debug_assert!(!ids.is_empty(), "zone of an empty segment");
        let mut min = ids[0];
        let mut max = ids[0];
        for &id in &ids[1..] {
            if ranks[id as usize] < ranks[min as usize] {
                min = id;
            }
            if ranks[id as usize] > ranks[max as usize] {
                max = id;
            }
        }
        Zone {
            min_id: min,
            max_id: max,
        }
    }

    /// Folds two zones into the zone of their spliced segment (O(1)).
    pub fn merge(self, other: Zone, ranks: &[u32]) -> Zone {
        Zone {
            min_id: if ranks[other.min_id as usize] < ranks[self.min_id as usize] {
                other.min_id
            } else {
                self.min_id
            },
            max_id: if ranks[other.max_id as usize] > ranks[self.max_id as usize] {
                other.max_id
            } else {
                self.max_id
            },
        }
    }

    /// Translates the zone through an id mapping (dictionary merge or
    /// compaction). Values are preserved by such mappings, so the
    /// translated ids still name the segment's extreme values.
    ///
    /// # Panics
    /// Panics if either extreme id was dropped by the mapping (it cannot
    /// be: zone ids are present in the segment).
    pub fn remap(self, map: &[Option<u32>]) -> Zone {
        Zone {
            min_id: map[self.min_id as usize].expect("zone min id dropped by remap"),
            max_id: map[self.max_id as usize].expect("zone max id dropped by remap"),
        }
    }
}

/// One group of consecutive input segments rewritten together by a
/// compaction pass, and the output piece sizes it is re-chunked into.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompactionGroup {
    /// Input segment indices covered by this group.
    pub segs: Range<usize>,
    /// Output piece sizes (their sum equals the group's row count). A group
    /// whose single piece equals its single input segment is untouched and
    /// reused by reference.
    pub pieces: Vec<u64>,
}

impl CompactionGroup {
    /// Returns `true` when the group passes one input segment through
    /// unchanged (the Arc-reuse case).
    pub fn is_untouched(&self, sizes: &[u64]) -> bool {
        self.segs.len() == 1 && self.pieces.len() == 1 && self.pieces[0] == sizes[self.segs.start]
    }
}

/// The shared threshold trigger for both encodings: a directory is
/// fragmented enough to compact when its segment count exceeds twice what
/// the nominal size calls for, or some segment is oversized (> 2·nominal).
/// Long `concat`/`slice` (UNION) chains are what drive it here.
pub fn needs_compaction(sizes: &[u64], nominal: u64) -> bool {
    let rows: u64 = sizes.iter().sum();
    if rows == 0 {
        return false;
    }
    let nominal_count = rows.div_ceil(nominal).max(1);
    sizes.len() as u64 > 2 * nominal_count || sizes.iter().any(|&s| s > 2 * nominal)
}

/// Computes the re-chunk schedule of a compaction pass from segment sizes
/// alone (shared by the bitmap and RLE encodings): adjacent undersized
/// segments (< ½·nominal) are merged toward the nominal size and oversized
/// ones (> 2·nominal) are split into balanced pieces, so every output
/// segment lands in `[½·nominal, 2·nominal]` (the whole column being
/// smaller than ½·nominal is the one unavoidable exception). Returns `None`
/// when the directory is already within bounds — the caller reuses every
/// segment by reference.
pub fn compaction_plan(sizes: &[u64], nominal: u64) -> Option<Vec<CompactionGroup>> {
    assert!(nominal > 0, "nominal segment size must be positive");
    let min = nominal / 2;
    let max = 2 * nominal;
    let mut groups: Vec<Range<usize>> = Vec::new();
    let mut start = 0usize;
    let mut cur_rows = 0u64;
    for (i, &s) in sizes.iter().enumerate() {
        cur_rows += s;
        if cur_rows >= min.max(1) {
            groups.push(start..i + 1);
            start = i + 1;
            cur_rows = 0;
        }
    }
    if start < sizes.len() {
        // Trailing rows below the minimum: fold them into the last group
        // (splitting below restores the upper bound if needed).
        match groups.last_mut() {
            Some(last) => last.end = sizes.len(),
            None => groups.push(start..sizes.len()),
        }
    }
    let mut plan = Vec::with_capacity(groups.len());
    let mut identity = true;
    for segs in groups {
        let rows: u64 = sizes[segs.clone()].iter().sum();
        let pieces = if rows <= max {
            vec![rows]
        } else {
            let k = rows.div_ceil(nominal);
            let base = rows / k;
            let extra = rows % k;
            (0..k).map(|i| base + u64::from(i < extra)).collect()
        };
        let group = CompactionGroup { segs, pieces };
        identity &= group.is_untouched(sizes);
        plan.push(group);
    }
    if identity {
        None
    } else {
        Some(plan)
    }
}

/// Splits a non-decreasing global position list into per-segment spans:
/// `(segment index, range into positions)`. Shared by both encodings'
/// serial filter paths and the segment-parallel executors in `cods` core.
///
/// # Panics
/// Panics when a position is outside the rows covered by `seg_sizes`.
pub(crate) fn position_spans(seg_sizes: &[u64], positions: &[u64]) -> Vec<(usize, Range<usize>)> {
    let mut spans = Vec::new();
    let mut lo = 0usize;
    let mut start = 0u64;
    for (seg_idx, &rows) in seg_sizes.iter().enumerate() {
        if lo == positions.len() {
            break;
        }
        let end_row = start + rows;
        let hi = lo + positions[lo..].partition_point(|&p| p < end_row);
        if hi > lo {
            spans.push((seg_idx, lo..hi));
            lo = hi;
        }
        start = end_row;
    }
    // Hard check (not debug-only): an out-of-range position must panic
    // like a dense id-gather would, not silently shrink the output.
    assert_eq!(
        lo,
        positions.len(),
        "position {} out of range for {} rows",
        positions[lo.min(positions.len().saturating_sub(1))],
        seg_sizes.iter().sum::<u64>()
    );
    spans
}

/// One immutable row-range segment: sparse per-value bitmaps over the
/// segment's rows, plus cached statistics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Segment {
    rows: u64,
    /// Ascending global value ids present in this segment (`Arc`-shared so
    /// the buffer manager's resident metadata can alias them zero-copy).
    ids: Arc<[u32]>,
    /// One bitmap per present id (parallel to `ids`), each of length `rows`.
    bitmaps: Vec<Wah>,
    /// Cached `count_ones` per bitmap (parallel to `ids`).
    ones: Arc<[u64]>,
    /// Cached total compressed bytes of the bitmaps.
    bytes: usize,
    /// Cached total maximal constant-value runs (summed set-bit interval
    /// counts) — the chooser consults this repeatedly.
    runs: u64,
}

impl Segment {
    /// Assembles a segment from present ids and their bitmaps. `pairs` need
    /// not be sorted; empty bitmaps are rejected in debug builds (callers
    /// drop them before constructing).
    pub fn new(rows: u64, mut pairs: Vec<(u32, Wah)>) -> Segment {
        pairs.sort_unstable_by_key(|(id, _)| *id);
        let mut ids = Vec::with_capacity(pairs.len());
        let mut bitmaps = Vec::with_capacity(pairs.len());
        let mut ones = Vec::with_capacity(pairs.len());
        let mut bytes = 0;
        let mut runs = 0u64;
        for (id, bm) in pairs {
            debug_assert!(bm.any(), "empty bitmap for id {id} in segment");
            debug_assert_eq!(bm.len(), rows, "bitmap length mismatch in segment");
            ones.push(bm.count_ones());
            bytes += bm.size_bytes();
            runs += bm.iter_intervals().count() as u64;
            ids.push(id);
            bitmaps.push(bm);
        }
        Segment {
            rows,
            ids: ids.into(),
            bitmaps,
            ones: ones.into(),
            bytes,
            runs,
        }
    }

    /// Number of rows covered.
    #[inline]
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// The ascending value ids present in this segment.
    #[inline]
    pub fn present_ids(&self) -> &[u32] {
        &self.ids
    }

    /// Number of distinct values present.
    #[inline]
    pub fn distinct_count(&self) -> usize {
        self.ids.len()
    }

    /// The per-id bitmaps, parallel to [`Segment::present_ids`].
    #[inline]
    pub fn bitmaps(&self) -> &[Wah] {
        &self.bitmaps
    }

    /// Index of `id` within the present-id list, if present.
    #[inline]
    pub fn position_of(&self, id: u32) -> Option<usize> {
        self.ids.binary_search(&id).ok()
    }

    /// Returns `true` when `id` occurs in this segment (O(log present)).
    #[inline]
    pub fn contains_id(&self, id: u32) -> bool {
        self.position_of(id).is_some()
    }

    /// The bitmap of `id`, if present.
    pub fn bitmap_for(&self, id: u32) -> Option<&Wah> {
        self.position_of(id).map(|i| &self.bitmaps[i])
    }

    /// Number of rows carrying `id` (0 when absent; O(log present)).
    pub fn count_for(&self, id: u32) -> u64 {
        self.position_of(id).map_or(0, |i| self.ones[i])
    }

    /// Cached per-present-id set-bit counts, parallel to
    /// [`Segment::present_ids`].
    #[inline]
    pub fn ones(&self) -> &[u64] {
        &self.ones
    }

    /// `Arc` handle on the present-id list (zero-copy stat sharing with the
    /// buffer manager's resident metadata).
    #[inline]
    pub(crate) fn ids_arc(&self) -> Arc<[u32]> {
        Arc::clone(&self.ids)
    }

    /// `Arc` handle on the per-id ones counts.
    #[inline]
    pub(crate) fn ones_arc(&self) -> Arc<[u64]> {
        Arc::clone(&self.ones)
    }

    /// Total compressed bitmap bytes (cached).
    #[inline]
    pub fn compressed_bytes(&self) -> usize {
        self.bytes
    }

    /// The value id at segment-local `row` (O(present) bitmap probes).
    pub fn id_at(&self, row: u64) -> Option<u32> {
        debug_assert!(row < self.rows);
        self.ids
            .iter()
            .zip(&self.bitmaps)
            .find(|(_, bm)| bm.get(row))
            .map(|(&id, _)| id)
    }

    /// Total maximal constant-value runs in row order — the statistic the
    /// adaptive encoding chooser weighs against rows and distinct count.
    /// Each present value's maximal set-bit intervals are exactly its value
    /// runs, so the sum over present values is the segment's run count
    /// (what an RLE re-encoding would store). Cached at construction from
    /// one compressed interval walk, so the chooser's repeated consults
    /// are O(1).
    pub fn run_count(&self) -> u64 {
        self.runs
    }

    /// Splices consecutive segments into one, combining cached statistics
    /// from the parts instead of recounting them: per-id ones are summed,
    /// present ids merged, and bitmaps concatenated with zero fills — the
    /// compaction merge path (undersized directory fragments after long
    /// UNION chains) never rescans payload to rebuild stats.
    pub fn splice(parts: &[&Segment]) -> Segment {
        if parts.len() == 1 {
            return parts[0].clone();
        }
        let rows: u64 = parts.iter().map(|s| s.rows).sum();
        // id → (bitmap so far, rows emitted so far, summed ones).
        let mut acc: HashMap<u32, (Wah, u64, u64)> = HashMap::new();
        let mut offset = 0u64;
        for part in parts {
            for ((&id, bm), &ones) in part.ids.iter().zip(&part.bitmaps).zip(part.ones.iter()) {
                let (out, emitted, total) = acc.entry(id).or_insert_with(|| (Wah::new(), 0, 0));
                if *emitted < offset {
                    out.append_run(false, offset - *emitted);
                }
                out.append_bitmap(bm);
                *emitted = offset + part.rows;
                *total += ones;
            }
            offset += part.rows;
        }
        let mut entries: Vec<(u32, Wah, u64)> = acc
            .into_iter()
            .map(|(id, (mut bm, emitted, ones))| {
                if emitted < rows {
                    bm.append_run(false, rows - emitted);
                }
                (id, bm, ones)
            })
            .collect();
        entries.sort_unstable_by_key(|&(id, _, _)| id);
        let mut ids = Vec::with_capacity(entries.len());
        let mut bitmaps = Vec::with_capacity(entries.len());
        let mut ones = Vec::with_capacity(entries.len());
        let mut bytes = 0usize;
        let mut runs = 0u64;
        for (id, bm, n) in entries {
            debug_assert_eq!(bm.count_ones(), n, "spliced ones stat for id {id}");
            bytes += bm.size_bytes();
            // Runs cannot be spliced from the parts (a run crossing the
            // boundary fuses), so recount on the compressed form.
            runs += bm.iter_intervals().count() as u64;
            ids.push(id);
            bitmaps.push(bm);
            ones.push(n);
        }
        Segment {
            rows,
            ids: ids.into(),
            bitmaps,
            ones: ones.into(),
            bytes,
            runs,
        }
    }

    /// Writes each row's value id into `out` (segment-local coordinates).
    pub(crate) fn fill_ids(&self, out: &mut [u32]) {
        for (&id, bm) in self.ids.iter().zip(&self.bitmaps) {
            for pos in bm.iter_ones() {
                debug_assert_eq!(out[pos as usize], u32::MAX, "overlapping bitmaps");
                out[pos as usize] = id;
            }
        }
    }

    /// Writes each row's *local slot index* (position in `present_ids`)
    /// into `out`.
    pub(crate) fn fill_local_slots(&self, out: &mut [u32]) {
        for (slot, bm) in self.bitmaps.iter().enumerate() {
            for pos in bm.iter_ones() {
                out[pos as usize] = slot as u32;
            }
        }
    }

    /// Re-expresses the segment as an unaligned [`SegmentChunk`] (bitmaps
    /// cloned), the form compaction feeds back through an assembler when
    /// regrouping.
    pub fn to_chunk(&self) -> SegmentChunk {
        SegmentChunk {
            ids: self.ids.to_vec(),
            bitmaps: self.bitmaps.clone(),
            rows: self.rows,
        }
    }

    /// Rewrites the segment under an id translation (`map[old] = Some(new)`
    /// or `None` to drop the value's rows — only valid when the bitmap is
    /// unused). Used by dictionary merges and compaction.
    pub(crate) fn remap(&self, map: &[Option<u32>]) -> Segment {
        let pairs: Vec<(u32, Wah)> = self
            .ids
            .iter()
            .zip(&self.bitmaps)
            .filter_map(|(&old, bm)| map[old as usize].map(|new| (new, bm.clone())))
            .collect();
        Segment::new(self.rows, pairs)
    }

    /// Validates the per-segment invariants: sorted unique ids, bitmap
    /// lengths, non-empty bitmaps, cached stats, and the partition property
    /// (each row covered exactly once).
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.ids.len() != self.bitmaps.len() || self.ids.len() != self.ones.len() {
            return Err("ids/bitmaps/ones length mismatch".into());
        }
        if self.ids.windows(2).any(|w| w[0] >= w[1]) {
            return Err("present ids not strictly ascending".into());
        }
        let mut total_ones = 0u64;
        let mut bytes = 0usize;
        for ((id, bm), &ones) in self.ids.iter().zip(&self.bitmaps).zip(self.ones.iter()) {
            bm.check_invariants()
                .map_err(|e| format!("bitmap of id {id}: {e}"))?;
            if bm.len() != self.rows {
                return Err(format!(
                    "bitmap of id {id} has length {}, segment has {} rows",
                    bm.len(),
                    self.rows
                ));
            }
            if !bm.any() {
                return Err(format!("empty bitmap for id {id} (segment not sparse)"));
            }
            if bm.count_ones() != ones {
                return Err(format!("stale ones cache for id {id}"));
            }
            total_ones += ones;
            bytes += bm.size_bytes();
        }
        if total_ones != self.rows {
            return Err(format!(
                "partition invariant violated: {total_ones} ones over {} rows",
                self.rows
            ));
        }
        if bytes != self.bytes {
            return Err("stale byte-size cache".into());
        }
        let runs: u64 = self
            .bitmaps
            .iter()
            .map(|bm| bm.iter_intervals().count() as u64)
            .sum();
        if runs != self.runs {
            return Err("stale run-count cache".into());
        }
        // Ones totalling rows plus full coverage implies disjointness;
        // verify coverage on small segments via an OR-fold.
        if self.rows > 0 && self.rows <= 10_000 {
            let union = Wah::union_many(self.bitmaps.iter(), self.rows);
            if union.count_ones() != self.rows {
                return Err("partition invariant violated: overlapping bitmaps".into());
            }
        }
        Ok(())
    }
}

/// Accumulates per-value bitmaps with lazy zero padding: values absent
/// from a stretch of rows are back-filled with a zero run the next time
/// they appear (and at finish), so cost is proportional to the values
/// actually present. The one shared implementation of the idiom used by
/// RLE→bitmap transcoding and the unified assembler's mixed-piece seal.
pub(crate) struct PaddedBitmaps {
    acc: HashMap<u32, (Wah, u64)>,
}

impl PaddedBitmaps {
    pub(crate) fn new() -> PaddedBitmaps {
        PaddedBitmaps {
            acc: HashMap::new(),
        }
    }

    /// Appends `len` set rows of value `id` starting at absolute row `at`.
    pub(crate) fn append_run(&mut self, id: u32, at: u64, len: u64) {
        let (bm, emitted) = self.acc.entry(id).or_insert_with(|| (Wah::new(), 0));
        if *emitted < at {
            bm.append_run(false, at - *emitted);
        }
        bm.append_run(true, len);
        *emitted = at + len;
    }

    /// Appends an existing bitmap piece of value `id` covering absolute
    /// rows `[offset, offset + piece.len())`.
    pub(crate) fn append_bitmap(&mut self, id: u32, piece: &Wah, offset: u64) {
        let (bm, emitted) = self.acc.entry(id).or_insert_with(|| (Wah::new(), 0));
        if *emitted < offset {
            bm.append_run(false, offset - *emitted);
        }
        bm.append_bitmap(piece);
        *emitted = offset + piece.len();
    }

    /// Pads every bitmap to `rows` and returns the `(id, bitmap)` pairs.
    pub(crate) fn finish(self, rows: u64) -> Vec<(u32, Wah)> {
        self.acc
            .into_iter()
            .map(|(id, (mut bm, emitted))| {
                if emitted < rows {
                    bm.append_run(false, rows - emitted);
                }
                (id, bm)
            })
            .collect()
    }
}

/// The output of one per-segment operation: sparse per-value bitmaps over a
/// run of consecutive output rows, not yet aligned to segment boundaries.
/// Chunks are produced independently (and in parallel) per input segment
/// and spliced into output segments by a [`SegmentAssembler`].
#[derive(Debug)]
pub struct SegmentChunk {
    /// Present value ids (need not be sorted).
    pub ids: Vec<u32>,
    /// One bitmap per id in `ids`, each `rows` long.
    pub bitmaps: Vec<Wah>,
    /// Output rows covered by this chunk.
    pub rows: u64,
}

impl SegmentChunk {
    /// A chunk covering zero rows.
    pub fn empty() -> SegmentChunk {
        SegmentChunk {
            ids: Vec::new(),
            bitmaps: Vec::new(),
            rows: 0,
        }
    }

    /// Builds a chunk from a stream of value ids, one per output row in
    /// order. `distinct_hint` is the id-space size (dictionary length);
    /// when it is small relative to the chunk a dense builder array is
    /// used, otherwise a hash map — so cost is O(rows) either way without
    /// a huge allocation for sparse chunks.
    pub fn from_ids<I: IntoIterator<Item = u32>>(
        ids: I,
        rows: u64,
        distinct_hint: usize,
    ) -> SegmentChunk {
        let mut out_ids = Vec::new();
        let mut out_bitmaps = Vec::new();
        if (distinct_hint as u64) <= rows.max(4096) {
            let mut builders: Vec<cods_bitmap::OneStreamBuilder> = Vec::new();
            builders.resize_with(distinct_hint, cods_bitmap::OneStreamBuilder::new);
            let mut active: Vec<u32> = Vec::new();
            for (row, id) in ids.into_iter().enumerate() {
                let b = &mut builders[id as usize];
                if b.ones() == 0 {
                    active.push(id);
                }
                b.push_one(row as u64);
            }
            active.sort_unstable();
            for id in active {
                let b = std::mem::replace(
                    &mut builders[id as usize],
                    cods_bitmap::OneStreamBuilder::new(),
                );
                out_ids.push(id);
                out_bitmaps.push(b.finish(rows));
            }
        } else {
            let mut builders: HashMap<u32, cods_bitmap::OneStreamBuilder> = HashMap::new();
            for (row, id) in ids.into_iter().enumerate() {
                builders.entry(id).or_default().push_one(row as u64);
            }
            for (id, b) in builders {
                out_ids.push(id);
                out_bitmaps.push(b.finish(rows));
            }
        }
        SegmentChunk {
            ids: out_ids,
            bitmaps: out_bitmaps,
            rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_stats_and_lookup() {
        let s = Segment::new(
            6,
            vec![
                (7, Wah::from_sorted_positions([0u64, 3, 5], 6)),
                (2, Wah::from_sorted_positions([1u64, 2, 4], 6)),
            ],
        );
        s.check_invariants().unwrap();
        assert_eq!(s.present_ids(), &[2, 7]);
        assert_eq!(s.count_for(7), 3);
        assert_eq!(s.count_for(9), 0);
        assert!(s.contains_id(2));
        assert!(!s.contains_id(3));
        assert_eq!(s.id_at(0), Some(7));
        assert_eq!(s.id_at(1), Some(2));
    }

    #[test]
    fn zone_of_ids_merge_and_remap() {
        // ranks: id 0 → rank 2, id 1 → rank 0, id 2 → rank 1.
        let ranks = [2u32, 0, 1];
        let z = Zone::of_ids(&[0, 2], &ranks);
        assert_eq!(
            z,
            Zone {
                min_id: 2,
                max_id: 0
            }
        );
        let w = Zone::of_ids(&[1], &ranks);
        let m = z.merge(w, &ranks);
        assert_eq!(
            m,
            Zone {
                min_id: 1,
                max_id: 0
            }
        );
        let r = m.remap(&[Some(5), Some(6), Some(7)]);
        assert_eq!(
            r,
            Zone {
                min_id: 6,
                max_id: 5
            }
        );
    }

    #[test]
    fn splice_combines_stats_without_recounting() {
        let a = Segment::new(
            4,
            vec![
                (1, Wah::from_sorted_positions([0u64, 1], 4)),
                (3, Wah::from_sorted_positions([2u64, 3], 4)),
            ],
        );
        let b = Segment::new(
            3,
            vec![
                (3, Wah::from_sorted_positions([0u64], 3)),
                (8, Wah::from_sorted_positions([1u64, 2], 3)),
            ],
        );
        let s = Segment::splice(&[&a, &b]);
        s.check_invariants().unwrap();
        assert_eq!(s.rows(), 7);
        assert_eq!(s.present_ids(), &[1, 3, 8]);
        assert_eq!(s.count_for(3), 3);
        assert_eq!(
            s.bitmap_for(3).unwrap().to_positions(),
            vec![2, 3, 4],
            "value 3 spans the splice boundary"
        );
        assert_eq!(s.bitmap_for(8).unwrap().to_positions(), vec![5, 6]);
    }

    #[test]
    fn run_count_counts_value_runs() {
        // Rows: 7 7 2 2 7 → runs [7, 2, 7] = 3.
        let s = Segment::new(
            5,
            vec![
                (7, Wah::from_sorted_positions([0u64, 1, 4], 5)),
                (2, Wah::from_sorted_positions([2u64, 3], 5)),
            ],
        );
        assert_eq!(s.run_count(), 3);
    }

    #[test]
    fn remap_translates_and_resorts() {
        let s = Segment::new(
            3,
            vec![
                (0, Wah::from_sorted_positions([0u64], 3)),
                (1, Wah::from_sorted_positions([1u64, 2], 3)),
            ],
        );
        let r = s.remap(&[Some(4), Some(1)]);
        r.check_invariants().unwrap();
        assert_eq!(r.present_ids(), &[1, 4]);
        assert_eq!(r.count_for(1), 2);
        assert_eq!(r.count_for(4), 1);
    }
}
