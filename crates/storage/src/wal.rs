//! Write-ahead rollback journal — the crash-safety layer under every save.
//!
//! ## Commit protocol
//!
//! An append-save overwrites `[meta_off, EOF)` of a live file in place
//! (the old metadata region + footer). Before the first byte of the target
//! is touched, [`TailGuard::begin`] copies the old tail into a sidecar
//! journal (`<file>.wal`), checksums it, seals it, and `fsync`s it. Only
//! then is the target written, truncated to its new length, and synced.
//! **The commit point is the deletion of the journal** (SQLite hot-journal
//! semantics): a reader that finds a sealed journal next to a file knows a
//! save died mid-overwrite and [`recover`] rolls the tail back to the last
//! durable footer; a reader that finds a *torn* journal knows the save
//! died while journaling — before the target was modified — and simply
//! discards it. Every crash point therefore lands on exactly the old or
//! the new catalog:
//!
//! ```text
//! crash while journaling  → torn journal, target untouched   → new ignored, OLD wins
//! crash while overwriting → sealed journal, torn target      → rollback,    OLD wins
//! crash before wal unlink → sealed journal, complete target  → rollback,    OLD wins
//! after wal unlink        → committed                        → NEW wins
//! ```
//!
//! Full rewrites don't need a journal: they build the new image in a
//! sibling temp file, sync it, and `rename(2)` over the target — the
//! rename is the commit point.
//!
//! ## The frame format
//!
//! The journal body is a sequence of checksummed frames, reusable by any
//! subsystem that needs a rollback log (the `rowstore` page journal writes
//! through [`JournalWriter`] too):
//!
//! ```text
//! file  := magic:u32 version:u16 frame* seal
//! frame := tag:u32 len:u64 payload:[u8; len] fnv:u64
//! seal  := SEAL_TAG:u32 0:u64 fnv:u64
//! ```
//!
//! `fnv` is FNV-1a over `tag || len || payload`. A journal is *valid* only
//! if every frame checksums and the seal is the final bytes of the file —
//! anything else is torn and is treated as absent.

use crate::error::StorageError;
use crate::fault;
use std::collections::HashMap;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

/// Journal file magic ("CODS WAL").
const JOURNAL_MAGIC: u32 = 0xC0D5_0A11;
/// Journal format version.
const JOURNAL_VERSION: u16 = 1;
/// Tag of the closing seal frame.
const SEAL_TAG: u32 = u32::MAX;
/// Frame tag used by [`TailGuard`] for the saved tail before-image.
const TAIL_TAG: u32 = 1;

/// Bytes of the journal file header (magic + version).
pub const JOURNAL_HEADER_BYTES: u64 = 6;
/// Fixed bytes added around every frame payload (tag + len + checksum).
pub const FRAME_OVERHEAD_BYTES: u64 = 20;
/// Bytes of the seal frame.
pub const SEAL_BYTES: u64 = FRAME_OVERHEAD_BYTES;

/// FNV-1a 64-bit over a list of byte chunks.
pub(crate) fn fnv1a64(chunks: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for chunk in chunks {
        for &b in *chunk {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Serializes one frame (`tag len payload fnv`) — the unit both the
/// rollback journal and the catalog commit log append.
pub(crate) fn encode_frame(tag: u32, payload: &[u8]) -> Vec<u8> {
    let tag_b = tag.to_le_bytes();
    let len_b = (payload.len() as u64).to_le_bytes();
    let sum = fnv1a64(&[&tag_b, &len_b, payload]).to_le_bytes();
    let mut frame = Vec::with_capacity(FRAME_OVERHEAD_BYTES as usize + payload.len());
    frame.extend_from_slice(&tag_b);
    frame.extend_from_slice(&len_b);
    frame.extend_from_slice(payload);
    frame.extend_from_slice(&sum);
    frame
}

/// Scans a frame area (file header already stripped) for the longest valid
/// frame prefix: frames are accepted until the first one that is
/// incomplete or fails its checksum. Returns the accepted frames and the
/// byte length of the valid prefix — anything past it is a torn tail.
///
/// This is the acknowledged-prefix reader of the commit log
/// ([`crate::commitlog`]): unlike [`read_frames`], it requires no seal and
/// never rejects the whole file because of a torn append at the end.
pub(crate) fn scan_frame_prefix(bytes: &[u8]) -> (Vec<(u32, Vec<u8>)>, usize) {
    let mut frames = Vec::new();
    let mut at = 0usize;
    loop {
        if bytes.len().saturating_sub(at) < FRAME_OVERHEAD_BYTES as usize {
            return (frames, at);
        }
        let tag = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
        let len = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().unwrap());
        let Some(end) = (at as u64)
            .checked_add(FRAME_OVERHEAD_BYTES)
            .and_then(|v| v.checked_add(len))
            .and_then(|v| usize::try_from(v).ok())
        else {
            return (frames, at);
        };
        if bytes.len() < end {
            return (frames, at);
        }
        let payload = &bytes[at + 12..end - 8];
        let sum = u64::from_le_bytes(bytes[end - 8..end].try_into().unwrap());
        if sum != fnv1a64(&[&bytes[at..at + 4], &bytes[at + 4..at + 12], payload]) {
            return (frames, at);
        }
        frames.push((tag, payload.to_vec()));
        at = end;
    }
}

/// What [`journal_status`] found next to a target file — the read-only
/// inspection behind the CLI's `wal` command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalStatus {
    /// No `<file>.wal` sidecar: the last save committed cleanly.
    Absent,
    /// A sealed rollback journal: a save died mid-overwrite and the next
    /// open will roll the target back.
    Sealed {
        /// Bytes of the journal file.
        bytes: u64,
    },
    /// A torn journal: the save died while journaling, before the target
    /// was touched; the next open discards it.
    Torn {
        /// Bytes of the journal file.
        bytes: u64,
    },
}

/// Inspects the rollback journal of `target` without recovering it.
pub fn journal_status(target: &Path) -> JournalStatus {
    let wal = wal_path(target);
    let Ok(meta) = std::fs::metadata(&wal) else {
        return JournalStatus::Absent;
    };
    match read_frames(&wal) {
        Some(_) => JournalStatus::Sealed { bytes: meta.len() },
        None => JournalStatus::Torn { bytes: meta.len() },
    }
}

/// Appends checksummed frames to a journal file. Writes go through the
/// fault-injection layer so crash tests cover journaling itself.
pub struct JournalWriter {
    file: File,
    bytes: u64,
}

impl JournalWriter {
    /// Creates (truncating) a journal at `path` and writes the header.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let mut file = fault::create(path)?;
        let mut header = [0u8; JOURNAL_HEADER_BYTES as usize];
        header[..4].copy_from_slice(&JOURNAL_MAGIC.to_le_bytes());
        header[4..6].copy_from_slice(&JOURNAL_VERSION.to_le_bytes());
        fault::write_all(&mut file, &header)?;
        Ok(JournalWriter {
            file,
            bytes: JOURNAL_HEADER_BYTES,
        })
    }

    /// Appends one frame. `tag` is caller-defined (page number, record
    /// kind, …) but must not collide with the seal tag `u32::MAX`.
    pub fn append(&mut self, tag: u32, payload: &[u8]) -> std::io::Result<()> {
        debug_assert_ne!(tag, SEAL_TAG);
        let frame = encode_frame(tag, payload);
        fault::write_all(&mut self.file, &frame)?;
        self.bytes += frame.len() as u64;
        Ok(())
    }

    /// Writes the seal frame and `fsync`s: after this returns, the journal
    /// is durably valid and will be honored by [`recover`].
    pub fn seal(&mut self) -> std::io::Result<()> {
        let frame = encode_frame(SEAL_TAG, &[]);
        fault::write_all(&mut self.file, &frame)?;
        self.bytes += frame.len() as u64;
        fault::sync(&self.file)
    }

    /// Rewinds to just past the header so the next transaction overwrites
    /// the previous frames in place (SQLite PERSIST journal mode — offered
    /// exactly because per-commit `ftruncate` is expensive).
    pub fn rewind(&mut self) -> std::io::Result<()> {
        self.file.seek(SeekFrom::Start(JOURNAL_HEADER_BYTES))?;
        Ok(())
    }

    /// Total bytes written to the journal, header included.
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }
}

/// Reads back a journal. Returns the frame list, or `None` when the file
/// is torn or invalid in any way (bad header, bad checksum, missing seal,
/// trailing garbage) — a torn journal is treated as absent.
fn read_frames(path: &Path) -> Option<Vec<(u32, Vec<u8>)>> {
    let mut f = File::open(path).ok()?;
    let mut bytes = Vec::new();
    f.read_to_end(&mut bytes).ok()?;
    if bytes.len() < JOURNAL_HEADER_BYTES as usize {
        return None;
    }
    if u32::from_le_bytes(bytes[..4].try_into().ok()?) != JOURNAL_MAGIC
        || u16::from_le_bytes(bytes[4..6].try_into().ok()?) != JOURNAL_VERSION
    {
        return None;
    }
    let mut frames = Vec::new();
    let mut at = JOURNAL_HEADER_BYTES as usize;
    loop {
        if bytes.len() < at + FRAME_OVERHEAD_BYTES as usize {
            return None; // ran out before a seal: torn
        }
        let tag = u32::from_le_bytes(bytes[at..at + 4].try_into().ok()?);
        let len = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().ok()?) as usize;
        if tag == SEAL_TAG {
            let sum = u64::from_le_bytes(bytes[at + 12..at + 20].try_into().ok()?);
            if len != 0 || sum != fnv1a64(&[&bytes[at..at + 4], &bytes[at + 4..at + 12]]) {
                return None;
            }
            if at + FRAME_OVERHEAD_BYTES as usize != bytes.len() {
                return None; // trailing garbage after the seal
            }
            return Some(frames);
        }
        let end = at
            .checked_add(FRAME_OVERHEAD_BYTES as usize)?
            .checked_add(len)?;
        if bytes.len() < end {
            return None;
        }
        let payload = &bytes[at + 12..at + 12 + len];
        let sum = u64::from_le_bytes(bytes[end - 8..end].try_into().ok()?);
        if sum != fnv1a64(&[&bytes[at..at + 4], &bytes[at + 4..at + 12], payload]) {
            return None;
        }
        frames.push((tag, payload.to_vec()));
        at = end;
    }
}

/// The sidecar journal path for a target file: `<file>.wal`.
pub fn wal_path(target: &Path) -> PathBuf {
    let mut name = target.file_name().unwrap_or_default().to_os_string();
    name.push(".wal");
    target.with_file_name(name)
}

/// Guards an in-place tail overwrite of `target`. Constructed *before* the
/// target is touched; [`TailGuard::commit`] (journal deletion) is the
/// commit point, [`TailGuard::abort`] rolls the target back in-process.
pub(crate) struct TailGuard {
    target: PathBuf,
    wal: PathBuf,
}

impl TailGuard {
    /// Journals the current `[meta_off, EOF)` tail of `target` durably.
    /// After this returns the target may be overwritten from `meta_off`:
    /// any crash will roll back to the state captured here.
    pub(crate) fn begin(target: &Path, meta_off: u64) -> Result<TailGuard, StorageError> {
        let old_len = std::fs::metadata(target)?.len();
        if meta_off > old_len {
            return Err(StorageError::Corrupt(format!(
                "cannot journal tail at {meta_off} past EOF {old_len} of {}",
                target.display()
            )));
        }
        let mut f = File::open(target)?;
        f.seek(SeekFrom::Start(meta_off))?;
        let mut tail = Vec::with_capacity((old_len - meta_off) as usize);
        f.read_to_end(&mut tail)?;

        // payload := meta_off:u64 old_len:u64 tail
        let mut payload = Vec::with_capacity(16 + tail.len());
        payload.extend_from_slice(&meta_off.to_le_bytes());
        payload.extend_from_slice(&old_len.to_le_bytes());
        payload.extend_from_slice(&tail);

        let wal = wal_path(target);
        let mut w = JournalWriter::create(&wal)?;
        w.append(TAIL_TAG, &payload)?;
        w.seal()?; // durable before the target is touched
        Ok(TailGuard {
            target: target.to_path_buf(),
            wal,
        })
    }

    /// Commit point: deletes the journal. The overwrite it guarded must be
    /// fully written *and synced* before calling this.
    pub(crate) fn commit(self) -> std::io::Result<()> {
        fault::remove_file(&self.wal)
    }

    /// Rolls the target back in-process after a failed overwrite — the
    /// same work [`recover`] would do on next open. Best-effort: under an
    /// injected crash the rollback itself fails (as it would have had the
    /// process died), and recovery happens at the next open instead.
    pub(crate) fn abort(self) {
        let _ = recover(&self.target);
    }
}

/// What [`recover`] found (and did).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recovery {
    /// No journal: the file committed cleanly.
    Clean,
    /// A sealed journal was found — a save died mid-overwrite — and the
    /// tail was rolled back to the last durable footer.
    RolledBack,
    /// A torn journal was found — a save died while journaling, before the
    /// target was modified — and discarded.
    DiscardedTornJournal,
}

/// Recovers `target` from an interrupted save, if one is detected.
///
/// Call with the file's [`path_lock`] held (the save and vacuum paths do
/// this automatically). Uses the fault-injected fs wrappers so a crash
/// *during* recovery is itself recoverable.
pub fn recover(target: &Path) -> Result<Recovery, StorageError> {
    let wal = wal_path(target);
    if !wal.exists() {
        return Ok(Recovery::Clean);
    }
    let frames = read_frames(&wal);
    let rollback = frames.as_ref().and_then(|fr| {
        // Exactly one tail frame with a well-formed payload; anything else
        // is not a tail journal we understand — discard it.
        match fr.as_slice() {
            [(TAIL_TAG, payload)] if payload.len() >= 16 => {
                let meta_off = u64::from_le_bytes(payload[..8].try_into().ok()?);
                let old_len = u64::from_le_bytes(payload[8..16].try_into().ok()?);
                let tail = &payload[16..];
                (meta_off + tail.len() as u64 == old_len).then_some((meta_off, old_len, tail))
            }
            _ => None,
        }
    });
    match rollback {
        None => {
            // Torn or foreign journal ⇒ the guarded overwrite never began
            // (the journal is synced before the target is touched), so the
            // target is intact as-is.
            fault::remove_file(&wal)?;
            Ok(Recovery::DiscardedTornJournal)
        }
        Some((meta_off, old_len, tail)) => {
            let mut f = fault::open_rw(target)?;
            f.seek(SeekFrom::Start(meta_off))?;
            fault::write_all(&mut f, tail)?;
            fault::set_len(&f, old_len)?;
            fault::sync(&f)?;
            drop(f);
            fault::remove_file(&wal)?;
            Ok(Recovery::RolledBack)
        }
    }
}

/// Per-path save/vacuum lock. Serializes mutating operations (save,
/// recovery, vacuum) on the same file within this process, so a
/// threshold-triggered background vacuum can never interleave with — or
/// lose the update of — a concurrent save.
pub(crate) fn path_lock(path: &Path) -> Arc<Mutex<()>> {
    static LOCKS: OnceLock<Mutex<HashMap<PathBuf, Arc<Mutex<()>>>>> = OnceLock::new();
    let key = normalize(path);
    let mut map = LOCKS
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    map.entry(key).or_default().clone()
}

/// Best-effort stable key for a path: resolve symlinks when the file (or
/// at least its parent directory) exists, fall back to an absolutized
/// lexical path otherwise.
fn normalize(path: &Path) -> PathBuf {
    if let Ok(c) = path.canonicalize() {
        return c;
    }
    if let (Some(parent), Some(name)) = (path.parent(), path.file_name()) {
        let parent = if parent.as_os_str().is_empty() {
            Path::new(".")
        } else {
            parent
        };
        if let Ok(c) = parent.canonicalize() {
            return c.join(name);
        }
    }
    match std::env::current_dir() {
        Ok(cwd) if path.is_relative() => cwd.join(path),
        _ => path.to_path_buf(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "cods-wal-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn frames_round_trip_and_torn_journals_read_as_none() {
        let p = scratch("j1.wal");
        let mut w = JournalWriter::create(&p).unwrap();
        w.append(7, b"abc").unwrap();
        w.append(9, b"").unwrap();
        w.seal().unwrap();
        assert_eq!(
            w.bytes_written(),
            JOURNAL_HEADER_BYTES + (FRAME_OVERHEAD_BYTES + 3) + FRAME_OVERHEAD_BYTES + SEAL_BYTES
        );
        let frames = read_frames(&p).unwrap();
        assert_eq!(frames, vec![(7, b"abc".to_vec()), (9, Vec::new())]);

        // Chop one byte off the end: torn.
        let bytes = std::fs::read(&p).unwrap();
        for cut in [bytes.len() - 1, bytes.len() - SEAL_BYTES as usize, 3, 0] {
            std::fs::write(&p, &bytes[..cut]).unwrap();
            assert!(read_frames(&p).is_none(), "cut at {cut} should be torn");
        }
        // Flip a payload byte: checksum failure.
        let mut flipped = bytes.clone();
        flipped[JOURNAL_HEADER_BYTES as usize + 12] ^= 0xff;
        std::fs::write(&p, &flipped).unwrap();
        assert!(read_frames(&p).is_none());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn tail_guard_rolls_back_an_overwrite() {
        let p = scratch("t1.bin");
        std::fs::write(&p, b"HEAP|OLDTAIL").unwrap();
        let guard = TailGuard::begin(&p, 5).unwrap();
        // Clobber the tail with something longer, as an append-save would.
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new().write(true).open(&p).unwrap();
        f.seek(SeekFrom::Start(5)).unwrap();
        f.write_all(b"NEWMUCHLONGERTAIL").unwrap();
        drop(f);
        guard.abort();
        assert_eq!(std::fs::read(&p).unwrap(), b"HEAP|OLDTAIL");
        assert!(!wal_path(&p).exists());
        assert_eq!(recover(&p).unwrap(), Recovery::Clean);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn torn_journal_is_discarded_and_target_untouched() {
        let p = scratch("t2.bin");
        std::fs::write(&p, b"ORIGINAL").unwrap();
        // A journal that never got sealed.
        let mut w = JournalWriter::create(&wal_path(&p)).unwrap();
        w.append(TAIL_TAG, b"garbage-before-image").unwrap();
        drop(w);
        assert_eq!(recover(&p).unwrap(), Recovery::DiscardedTornJournal);
        assert!(!wal_path(&p).exists());
        assert_eq!(std::fs::read(&p).unwrap(), b"ORIGINAL");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn sealed_journal_rolls_back_on_recover() {
        let p = scratch("t3.bin");
        std::fs::write(&p, b"HEAP|TAIL").unwrap();
        let _guard = TailGuard::begin(&p, 5); // leak the guard: simulated crash
        std::fs::write(&p, b"HEAP|TORN-NEW-TAIL-XYZ").unwrap();
        assert_eq!(recover(&p).unwrap(), Recovery::RolledBack);
        assert_eq!(std::fs::read(&p).unwrap(), b"HEAP|TAIL");
        assert!(!wal_path(&p).exists());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn path_lock_is_stable_across_spellings() {
        let p = scratch("lock.bin");
        std::fs::write(&p, b"x").unwrap();
        let a = path_lock(&p);
        let b = path_lock(&p.canonicalize().unwrap());
        assert!(Arc::ptr_eq(&a, &b));
        std::fs::remove_file(&p).ok();
    }
}
