//! The segment buffer manager: demand-paged directory slots behind one
//! process-wide, byte-budgeted cache.
//!
//! Since format v6 a column opens as *metadata only* — schema, dictionary,
//! per-segment stats, zones, encoding/pin tags — while segment payloads stay
//! on disk. Each directory entry is a [`SegSlot`]: resident metadata
//! ([`SegMeta`]) plus a payload that is either decoded in memory or a
//! [`DiskLoc`] into the file's payload heap. The first payload touch faults
//! the segment in through the global [`SegmentStore`], which runs a clock
//! (second-chance) eviction sweep over decoded segments whenever the
//! configured byte budget is exceeded.
//!
//! Eviction rules:
//! * fresh segments (built in memory, never saved) have no disk location and
//!   are **never** evicted — there is nowhere to reload them from;
//! * pinned segments are never evicted;
//! * everything else is fair game, in clock order, with one second chance
//!   for recently touched slots.
//!
//! Slots are `Arc`-shared across table versions (UNION concat, slices,
//! catalog snapshots), so a cached segment serves every snapshot that
//! references it and is charged to the budget once.

use crate::encoded::{Encoding, SegmentEnc};
use crate::error::StorageError;
use crate::rle_segment::RleSegment;
use crate::segment::Segment;
use bytes::{Buf, BufMut, Bytes};
use cods_bitmap::{RleSeq, Wah};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, Weak};

/// Resident per-segment metadata: everything scans need to prune a segment
/// without touching its payload. The id/ones slices are `Arc`-shared with
/// the decoded segment when one exists (zero-copy for fresh columns).
#[derive(Clone, Debug)]
pub struct SegMeta {
    /// Rows covered by the segment.
    pub rows: u64,
    /// Ascending global value ids present in the segment.
    pub present_ids: Arc<[u32]>,
    /// Rows carrying each present id (parallel to `present_ids`).
    pub ones: Arc<[u64]>,
    /// Total maximal constant-value runs (the chooser's statistic).
    pub runs: u64,
    /// Compressed payload bytes — the cache charge of the decoded form.
    pub bytes: usize,
    /// The segment's physical encoding.
    pub encoding: Encoding,
}

impl SegMeta {
    /// Captures the metadata of a decoded segment (stat slices shared).
    pub fn of(enc: &SegmentEnc) -> SegMeta {
        match enc {
            SegmentEnc::Bitmap(s) => SegMeta {
                rows: s.rows(),
                present_ids: s.ids_arc(),
                ones: s.ones_arc(),
                runs: s.run_count(),
                bytes: s.compressed_bytes(),
                encoding: Encoding::Bitmap,
            },
            SegmentEnc::Rle(s) => SegMeta {
                rows: s.rows(),
                present_ids: s.ids_arc(),
                ones: s.ones_arc(),
                runs: s.num_runs() as u64,
                bytes: s.compressed_bytes(),
                encoding: Encoding::Rle,
            },
        }
    }
}

/// A stable identity for an open file: `(device, inode)` on unix. Saves
/// and vacuums compare it against the file currently at a path to detect
/// stale handles — after a vacuum rewrote a file via rename, slots opened
/// from the *old* inode must not donate their (now meaningless) offsets to
/// an append-save onto the new one.
pub(crate) type FileId = (u64, u64);

/// The identity of the file behind `meta`, when the platform exposes one.
#[cfg(unix)]
pub(crate) fn file_id_of(meta: &std::fs::Metadata) -> Option<FileId> {
    use std::os::unix::fs::MetadataExt;
    Some((meta.dev(), meta.ino()))
}

/// Fallback for platforms without stable file identities: callers fall
/// back to path equality (the pre-vacuum behavior).
#[cfg(not(unix))]
pub(crate) fn file_id_of(_meta: &std::fs::Metadata) -> Option<FileId> {
    None
}

/// Where a segment payload lives when it is not decoded in memory.
#[derive(Debug)]
pub enum PayloadSource {
    /// An in-memory v6 image (the `decode_table`/`decode_catalog` path).
    Bytes(Bytes),
    /// An open v6 file (the `read_table`/`read_catalog` path). The path is
    /// canonical, so append-save can recognise saves onto the same file.
    File {
        /// The open file handle (positional reads, no shared cursor on unix).
        file: std::fs::File,
        /// Canonicalized path of the file.
        path: std::path::PathBuf,
        /// Identity of the inode the handle is bound to (see [`FileId`]).
        id: Option<FileId>,
    },
}

impl PayloadSource {
    /// Wraps an open file, capturing its identity.
    pub(crate) fn for_file(file: std::fs::File, path: std::path::PathBuf) -> PayloadSource {
        let id = file.metadata().ok().and_then(|m| file_id_of(&m));
        PayloadSource::File { file, path, id }
    }

    /// The identity of the backing inode, when file-backed and known.
    pub(crate) fn file_id(&self) -> Option<FileId> {
        match self {
            PayloadSource::Bytes(_) => None,
            PayloadSource::File { id, .. } => *id,
        }
    }
    /// Reads `len` bytes at `offset`.
    pub(crate) fn read_at(&self, offset: u64, len: u64) -> std::io::Result<Vec<u8>> {
        match self {
            PayloadSource::Bytes(b) => {
                let lo = usize::try_from(offset).ok();
                let hi = lo.and_then(|lo| lo.checked_add(len as usize));
                match (lo, hi) {
                    (Some(lo), Some(hi)) if hi <= b.len() => Ok(b.as_slice()[lo..hi].to_vec()),
                    _ => Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "segment payload outside the in-memory image",
                    )),
                }
            }
            #[cfg(unix)]
            PayloadSource::File { file, .. } => {
                use std::os::unix::fs::FileExt;
                let mut buf = vec![0u8; len as usize];
                file.read_exact_at(&mut buf, offset)?;
                Ok(buf)
            }
            #[cfg(not(unix))]
            PayloadSource::File { file, .. } => {
                use std::io::{Read, Seek, SeekFrom};
                let mut f = file;
                f.seek(SeekFrom::Start(offset))?;
                let mut buf = vec![0u8; len as usize];
                f.read_exact(&mut buf)?;
                Ok(buf)
            }
        }
    }

    /// The canonical file path, when file-backed.
    pub(crate) fn path(&self) -> Option<&std::path::Path> {
        match self {
            PayloadSource::Bytes(_) => None,
            PayloadSource::File { path, .. } => Some(path),
        }
    }
}

/// The on-disk location of one segment payload.
#[derive(Clone, Debug)]
pub struct DiskLoc {
    /// The backing image or file.
    pub(crate) source: Arc<PayloadSource>,
    /// Byte offset of the payload in the source.
    pub(crate) offset: u64,
    /// Payload length in bytes.
    pub(crate) len: u64,
}

/// Shared innards of a [`SegSlot`].
#[derive(Debug)]
pub(crate) struct SlotInner {
    meta: SegMeta,
    /// Where the payload can be reloaded from. Fresh slots gain a location
    /// when the table is saved (and only then become evictable); a vacuum
    /// *rebinds* the location to the compacted file it just wrote.
    disk: RwLock<Option<DiskLoc>>,
    /// The decoded payload, `None` while paged out.
    payload: RwLock<Option<SegmentEnc>>,
    /// Pinned slots are never evicted.
    pinned: AtomicBool,
    /// Clock reference bit: set on every payload touch, cleared by the
    /// sweep's second chance.
    touched: AtomicBool,
}

impl Drop for SlotInner {
    fn drop(&mut self) {
        // A cache-managed (disk-backed) slot that dies while resident gives
        // its bytes back to the gauge; ring entries are reaped lazily.
        if self.disk.get_mut().is_some() && self.payload.get_mut().is_some() {
            segment_cache()
                .resident
                .fetch_sub(self.meta.bytes as u64, Ordering::Relaxed);
        }
    }
}

/// One entry of a column's segment directory: resident stats plus a payload
/// that is either decoded or on disk. Cloning shares the slot.
#[derive(Clone)]
pub struct SegSlot(Arc<SlotInner>);

impl SegSlot {
    /// Wraps a freshly built (in-memory) segment. Fresh slots are resident
    /// and stay resident: with no disk location they are never evicted.
    pub(crate) fn fresh(enc: SegmentEnc) -> SegSlot {
        SegSlot(Arc::new(SlotInner {
            meta: SegMeta::of(&enc),
            disk: RwLock::new(None),
            payload: RwLock::new(Some(enc)),
            pinned: AtomicBool::new(false),
            touched: AtomicBool::new(false),
        }))
    }

    /// Builds a paged-out slot from decoded metadata and a disk location
    /// (the v6 open path).
    pub(crate) fn on_disk(meta: SegMeta, loc: DiskLoc, pinned: bool) -> SegSlot {
        SegSlot(Arc::new(SlotInner {
            meta,
            disk: RwLock::new(Some(loc)),
            payload: RwLock::new(None),
            pinned: AtomicBool::new(pinned),
            touched: AtomicBool::new(false),
        }))
    }

    /// The resident metadata.
    #[inline]
    pub(crate) fn meta(&self) -> &SegMeta {
        &self.0.meta
    }

    /// Returns `true` while the payload is decoded in memory.
    pub fn is_resident(&self) -> bool {
        self.0.payload.read().is_some()
    }

    /// The payload's reload location, when the slot is disk-backed.
    /// (A clone: `DiskLoc` is an `Arc` plus two integers.)
    pub(crate) fn disk_loc(&self) -> Option<DiskLoc> {
        self.0.disk.read().clone()
    }

    /// Attaches a reload location to a fresh slot after a save. Returns
    /// `true` when newly attached (the caller then enrols the slot in the
    /// cache); a second save is a no-op.
    pub(crate) fn attach_disk(&self, loc: DiskLoc) -> bool {
        let mut guard = self.0.disk.write();
        if guard.is_some() {
            return false;
        }
        *guard = Some(loc);
        true
    }

    /// Rebinds the reload location unconditionally — the vacuum path,
    /// after it rewrote the backing file and every offset moved. Returns
    /// `true` when the slot was fresh (had no location) before, in which
    /// case the caller must enrol it in the cache like a first save.
    pub(crate) fn rebind_disk(&self, loc: DiskLoc) -> bool {
        let mut guard = self.0.disk.write();
        let was_fresh = guard.is_none();
        *guard = Some(loc);
        was_fresh
    }

    /// Canonical path of the backing file, when the slot is file-backed.
    pub fn backing_path(&self) -> Option<std::path::PathBuf> {
        self.0
            .disk
            .read()
            .as_ref()
            .and_then(|loc| loc.source.path().map(|p| p.to_path_buf()))
    }

    /// Whether this slot is pinned against eviction.
    pub(crate) fn pinned(&self) -> bool {
        self.0.pinned.load(Ordering::Relaxed)
    }

    /// Pins or unpins the slot against eviction.
    pub(crate) fn set_pinned(&self, pinned: bool) {
        self.0.pinned.store(pinned, Ordering::Relaxed);
    }

    /// Identity comparison: do two directory entries share one slot?
    pub fn ptr_eq(&self, other: &SegSlot) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }

    /// A stable identity key for dedup maps (the shared allocation's
    /// address) — the persist writer uses it to place each distinct slot's
    /// payload in the heap exactly once, however many directory entries
    /// (or table versions) share it.
    pub(crate) fn ident(&self) -> usize {
        Arc::as_ptr(&self.0) as usize
    }

    /// The decoded payload, faulting it in from disk on first touch.
    ///
    /// # Panics
    /// Panics when the payload cannot be reloaded (I/O error or corrupt
    /// bytes under a valid footer — both indicate the file changed under
    /// us). Use [`SegSlot::try_enc`] to observe the error instead.
    pub fn enc(&self) -> SegmentEnc {
        self.try_enc()
            .unwrap_or_else(|e| panic!("segment fault failed: {e}"))
    }

    /// The decoded payload, faulting it in from disk on first touch.
    pub fn try_enc(&self) -> Result<SegmentEnc, StorageError> {
        let store = segment_cache();
        {
            let guard = self.0.payload.read();
            if let Some(enc) = &*guard {
                self.0.touched.store(true, Ordering::Relaxed);
                if self.0.disk.read().is_some() {
                    store.hits.fetch_add(1, Ordering::Relaxed);
                }
                return Ok(enc.clone());
            }
        }
        let enc = {
            let mut guard = self.0.payload.write();
            if let Some(enc) = &*guard {
                // Another thread faulted it in while we waited.
                self.0.touched.store(true, Ordering::Relaxed);
                store.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(enc.clone());
            }
            let loc = self
                .0
                .disk
                .read()
                .clone()
                .expect("paged-out slot without a disk location");
            let raw = loc.source.read_at(loc.offset, loc.len)?;
            let enc = decode_payload(&self.0.meta, raw)?;
            *guard = Some(enc.clone());
            self.0.touched.store(true, Ordering::Relaxed);
            enc
        };
        store.record_fault(self);
        Ok(enc)
    }

    /// Number of rows covered (metadata; never faults).
    #[inline]
    pub fn rows(&self) -> u64 {
        self.0.meta.rows
    }

    /// The ascending value ids present in this segment (metadata).
    #[inline]
    pub fn present_ids(&self) -> &[u32] {
        &self.0.meta.present_ids
    }

    /// Cached per-present-id row counts, parallel to
    /// [`SegSlot::present_ids`] (metadata).
    #[inline]
    pub fn ones(&self) -> &[u64] {
        &self.0.meta.ones
    }

    /// Number of distinct values present (metadata).
    #[inline]
    pub fn distinct_count(&self) -> usize {
        self.0.meta.present_ids.len()
    }

    /// Returns `true` when `id` occurs in this segment (metadata,
    /// O(log present)).
    #[inline]
    pub fn contains_id(&self, id: u32) -> bool {
        self.0.meta.present_ids.binary_search(&id).is_ok()
    }

    /// Number of rows carrying `id` (0 when absent; metadata).
    pub fn count_for(&self, id: u32) -> u64 {
        self.0
            .meta
            .present_ids
            .binary_search(&id)
            .map_or(0, |i| self.0.meta.ones[i])
    }

    /// Compressed payload bytes (metadata).
    #[inline]
    pub fn compressed_bytes(&self) -> usize {
        self.0.meta.bytes
    }

    /// Total maximal constant-value runs (metadata).
    #[inline]
    pub fn run_count(&self) -> u64 {
        self.0.meta.runs
    }

    /// The segment's physical encoding (metadata).
    #[inline]
    pub fn encoding(&self) -> Encoding {
        self.0.meta.encoding
    }

    /// What the stats-driven chooser would pick for this segment
    /// (metadata; matches [`SegmentEnc::choose_encoding`]).
    pub fn choose_encoding(&self) -> Encoding {
        crate::encoded::choose_encoding_from_stats(
            self.0.meta.runs,
            self.0.meta.rows,
            self.0.meta.present_ids.len() as u64,
            1,
        )
    }

    /// Re-encodes to `encoding`, sharing the slot when already there.
    /// The result is a fresh (resident) slot when a transcode happens.
    pub(crate) fn recoded(&self, encoding: Encoding) -> SegSlot {
        if self.encoding() == encoding {
            self.clone()
        } else {
            SegSlot::fresh(self.enc().recoded(encoding))
        }
    }

    /// Rewrites the segment under an id translation (faults in; the result
    /// is a fresh resident slot).
    pub(crate) fn remap(&self, map: &[Option<u32>]) -> SegSlot {
        SegSlot::fresh(self.enc().remap(map))
    }

    /// Validates the payload against the resident metadata and the
    /// per-segment invariants (faults the payload in).
    pub fn check_invariants(&self) -> Result<(), String> {
        let enc = self.try_enc().map_err(|e| e.to_string())?;
        enc.check_invariants()?;
        let m = &self.0.meta;
        if enc.rows() != m.rows
            || enc.present_ids() != &*m.present_ids
            || enc.ones() != &*m.ones
            || enc.encoding() != m.encoding
        {
            return Err("resident metadata does not match payload".into());
        }
        if enc.compressed_bytes() != m.bytes || enc.run_count() != m.runs {
            return Err("stale payload-size/run metadata".into());
        }
        Ok(())
    }
}

impl std::fmt::Debug for SegSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegSlot")
            .field("rows", &self.0.meta.rows)
            .field("encoding", &self.0.meta.encoding)
            .field("distinct", &self.0.meta.present_ids.len())
            .field("resident", &self.is_resident())
            .field("on_disk", &self.0.disk.read().is_some())
            .finish()
    }
}

impl PartialEq for SegSlot {
    /// Payload equality (faults both sides in — test/verification use).
    fn eq(&self, other: &SegSlot) -> bool {
        self.ptr_eq(other) || self.enc() == other.enc()
    }
}

/// Serializes a segment payload in the v6 heap format: bitmap segments as
/// the concatenation of each present id's WAH stream in id order, RLE
/// segments as the run-sequence codec.
pub(crate) fn encode_payload<B: BufMut>(enc: &SegmentEnc, buf: &mut B) {
    match enc {
        SegmentEnc::Bitmap(s) => {
            for bm in s.bitmaps() {
                bm.encode(buf);
            }
        }
        SegmentEnc::Rle(s) => s.seq().encode(buf),
    }
}

/// Encoded length of [`encode_payload`]'s output.
pub(crate) fn payload_encoded_len(enc: &SegmentEnc) -> usize {
    match enc {
        SegmentEnc::Bitmap(s) => s.bitmaps().iter().map(|bm| bm.encoded_len()).sum(),
        SegmentEnc::Rle(s) => s.seq().encoded_len(),
    }
}

/// Decodes a payload against its resident metadata, validating that the
/// recomputed stats match (a mismatch means the bytes are not the segment
/// the footer index promised).
pub(crate) fn decode_payload(meta: &SegMeta, raw: Vec<u8>) -> Result<SegmentEnc, StorageError> {
    let corrupt = |m: &str| StorageError::PersistError(format!("segment payload: {m}"));
    let mut buf = Bytes::from(raw);
    let enc = match meta.encoding {
        Encoding::Bitmap => {
            let mut pairs = Vec::with_capacity(meta.present_ids.len());
            for &id in meta.present_ids.iter() {
                let bm = Wah::decode(&mut buf)?;
                if bm.len() != meta.rows {
                    return Err(corrupt("bitmap length does not match segment rows"));
                }
                if !bm.any() {
                    return Err(corrupt("empty bitmap for a present id"));
                }
                pairs.push((id, bm));
            }
            SegmentEnc::Bitmap(Arc::new(Segment::new(meta.rows, pairs)))
        }
        Encoding::Rle => {
            let seq = RleSeq::decode(&mut buf)?;
            if seq.len() != meta.rows {
                return Err(corrupt("run sequence does not cover segment rows"));
            }
            SegmentEnc::Rle(Arc::new(RleSegment::new(seq)))
        }
    };
    if buf.remaining() != 0 {
        return Err(corrupt("trailing bytes after payload"));
    }
    if enc.present_ids() != &*meta.present_ids || enc.ones() != &*meta.ones {
        return Err(corrupt("decoded stats do not match the footer metadata"));
    }
    Ok(enc)
}

/// A snapshot of the buffer cache's telemetry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheStats {
    /// Byte budget (`u64::MAX` = unlimited).
    pub budget: u64,
    /// Decoded bytes currently charged to the cache (disk-backed slots).
    pub resident_bytes: u64,
    /// Payload touches served from memory.
    pub hits: u64,
    /// Payload faults (reload + decode from disk).
    pub misses: u64,
    /// Paged-out segments.
    pub evictions: u64,
    /// Total bytes decoded by faults (the cold-open/IO-work meter).
    pub decoded_bytes: u64,
}

/// Clock-ring state: weak handles on cache-managed slots plus the hand.
#[derive(Debug, Default)]
struct Ring {
    slots: Vec<Weak<SlotInner>>,
    hand: usize,
}

/// The process-wide segment buffer manager. Obtain it via
/// [`segment_cache`]; all faults, adoptions, and evictions go through it.
#[derive(Debug)]
pub struct SegmentStore {
    budget: AtomicU64,
    resident: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    decoded_bytes: AtomicU64,
    ring: Mutex<Ring>,
}

impl SegmentStore {
    fn new() -> SegmentStore {
        SegmentStore {
            budget: AtomicU64::new(u64::MAX),
            resident: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            decoded_bytes: AtomicU64::new(0),
            ring: Mutex::new(Ring::default()),
        }
    }

    /// Sets the byte budget (`u64::MAX` = unlimited) and immediately sweeps
    /// down to it.
    pub fn set_budget(&self, bytes: u64) {
        self.budget.store(bytes, Ordering::Relaxed);
        self.maybe_evict();
    }

    /// The current byte budget (`u64::MAX` = unlimited).
    pub fn budget(&self) -> u64 {
        self.budget.load(Ordering::Relaxed)
    }

    /// A telemetry snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            budget: self.budget.load(Ordering::Relaxed),
            resident_bytes: self.resident.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            decoded_bytes: self.decoded_bytes.load(Ordering::Relaxed),
        }
    }

    /// Zeroes the hit/miss/eviction/decoded counters (benchmark bracketing;
    /// the resident gauge and budget are left alone).
    pub fn reset_counters(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.decoded_bytes.store(0, Ordering::Relaxed);
    }

    /// Books a fault: counters, the resident gauge, and clock enrolment.
    fn record_fault(&self, slot: &SegSlot) {
        let bytes = slot.0.meta.bytes as u64;
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.decoded_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.resident.fetch_add(bytes, Ordering::Relaxed);
        self.ring.lock().slots.push(Arc::downgrade(&slot.0));
        self.maybe_evict();
    }

    /// Enrols a formerly fresh slot that a save just made disk-backed: its
    /// resident bytes now count against the budget and it becomes
    /// evictable like any other cached segment.
    pub(crate) fn adopt(&self, slot: &SegSlot) {
        debug_assert!(slot.0.disk.read().is_some());
        self.resident
            .fetch_add(slot.0.meta.bytes as u64, Ordering::Relaxed);
        slot.0.touched.store(true, Ordering::Relaxed);
        self.ring.lock().slots.push(Arc::downgrade(&slot.0));
        self.maybe_evict();
    }

    /// The clock sweep: while over budget, advance the hand, skipping
    /// pinned slots, giving touched slots a second chance, and paging out
    /// the first cold candidate. Bounded at two revolutions per call so a
    /// ring full of pinned/busy slots cannot spin.
    fn maybe_evict(&self) {
        if self.budget.load(Ordering::Relaxed) == u64::MAX {
            return;
        }
        let mut ring = self.ring.lock();
        let mut steps = 2 * ring.slots.len().max(1);
        while self.resident.load(Ordering::Relaxed) > self.budget.load(Ordering::Relaxed)
            && !ring.slots.is_empty()
            && steps > 0
        {
            steps -= 1;
            if ring.hand >= ring.slots.len() {
                ring.hand = 0;
            }
            let idx = ring.hand;
            let Some(inner) = ring.slots[idx].upgrade() else {
                // The slot died (its resident bytes were returned by Drop);
                // reap the entry without advancing past the swapped-in tail.
                ring.slots.swap_remove(idx);
                continue;
            };
            if inner.pinned.load(Ordering::Relaxed) {
                ring.hand += 1;
                continue;
            }
            if inner.touched.swap(false, Ordering::Relaxed) {
                ring.hand += 1; // second chance
                continue;
            }
            let Some(mut guard) = inner.payload.try_write() else {
                ring.hand += 1; // someone is faulting/reading it right now
                continue;
            };
            let evicted = guard.take().is_some();
            drop(guard);
            ring.slots.swap_remove(idx);
            if evicted {
                self.resident
                    .fetch_sub(inner.meta.bytes as u64, Ordering::Relaxed);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// The process-wide segment cache.
pub fn segment_cache() -> &'static SegmentStore {
    static STORE: OnceLock<SegmentStore> = OnceLock::new();
    STORE.get_or_init(SegmentStore::new)
}

#[cfg(test)]
pub(crate) fn budget_guard() -> parking_lot::MutexGuard<'static, ()> {
    // Serializes tests that shrink the global budget so parallel tests
    // never observe each other's evictions.
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(())).lock()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoded::EncodedColumn;
    use crate::value::{Value, ValueType};

    fn column(n: i64, seg_rows: u64) -> EncodedColumn {
        let vals: Vec<Value> = (0..n).map(|i| Value::int(i / 16)).collect();
        EncodedColumn::from_values_with(ValueType::Int, &vals, seg_rows).unwrap()
    }

    fn slot_on_bytes(enc: &SegmentEnc, pinned: bool) -> SegSlot {
        let mut raw = Vec::new();
        encode_payload(enc, &mut raw);
        assert_eq!(raw.len(), payload_encoded_len(enc));
        let len = raw.len() as u64;
        let source = Arc::new(PayloadSource::Bytes(Bytes::from(raw)));
        SegSlot::on_disk(
            SegMeta::of(enc),
            DiskLoc {
                source,
                offset: 0,
                len,
            },
            pinned,
        )
    }

    #[test]
    fn fresh_slot_mirrors_its_payload_stats() {
        let col = column(100, 64);
        let slot = &col.segments()[0];
        let enc = slot.enc();
        assert!(slot.is_resident());
        assert_eq!(slot.rows(), enc.rows());
        assert_eq!(slot.present_ids(), enc.present_ids());
        assert_eq!(slot.ones(), enc.ones());
        assert_eq!(slot.distinct_count(), enc.distinct_count());
        assert_eq!(slot.compressed_bytes(), enc.compressed_bytes());
        assert_eq!(slot.run_count(), enc.run_count());
        assert_eq!(slot.encoding(), enc.encoding());
        assert_eq!(slot.choose_encoding(), enc.choose_encoding());
        assert!(slot.contains_id(0));
        assert_eq!(slot.count_for(0), enc.count_for(0));
        slot.check_invariants().unwrap();
    }

    #[test]
    fn payload_round_trips_through_the_heap_format() {
        let col = column(200, 64);
        for slot in col.segments() {
            for enc in [slot.enc(), slot.enc().recoded(Encoding::Rle)] {
                let mut raw = Vec::new();
                encode_payload(&enc, &mut raw);
                let back = decode_payload(&SegMeta::of(&enc), raw).unwrap();
                assert_eq!(back, enc);
            }
        }
    }

    #[test]
    fn corrupt_payload_is_rejected() {
        let col = column(100, 64);
        let enc = col.segments()[0].enc();
        let mut raw = Vec::new();
        encode_payload(&enc, &mut raw);
        // Truncation and bit flips both fail decode or the stat check.
        let cut = raw[..raw.len() / 2].to_vec();
        assert!(decode_payload(&SegMeta::of(&enc), cut).is_err());
        let mut flipped = raw.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0xFF;
        assert!(decode_payload(&SegMeta::of(&enc), flipped).is_err());
    }

    #[test]
    fn paged_out_slot_faults_in_on_first_touch() {
        let _g = budget_guard();
        let col = column(100, 64);
        let enc = col.segments()[0].enc();
        let slot = slot_on_bytes(&enc, false);
        assert!(!slot.is_resident());
        // Metadata works without faulting.
        assert_eq!(slot.rows(), enc.rows());
        assert_eq!(slot.present_ids(), enc.present_ids());
        assert!(!slot.is_resident(), "metadata access must not fault");
        let before = segment_cache().stats();
        assert_eq!(slot.enc(), enc);
        assert!(slot.is_resident());
        let after = segment_cache().stats();
        assert!(after.misses > before.misses);
        assert!(after.decoded_bytes >= before.decoded_bytes + enc.compressed_bytes() as u64);
        // Second touch is a hit.
        let _ = slot.enc();
        assert!(segment_cache().stats().hits > after.hits);
        slot.check_invariants().unwrap();
    }

    #[test]
    fn tiny_budget_forces_eviction_and_reload() {
        let _g = budget_guard();
        let store = segment_cache();
        let col = column(4096, 256);
        let slots: Vec<SegSlot> = col
            .segments()
            .iter()
            .map(|s| slot_on_bytes(&s.enc(), false))
            .collect();
        let one = slots[0].meta().bytes as u64;
        store.set_budget(one); // room for about one segment
        for s in &slots {
            let _ = s.enc();
        }
        let resident = slots.iter().filter(|s| s.is_resident()).count();
        assert!(
            resident < slots.len(),
            "a tiny budget must page something out"
        );
        assert!(store.stats().evictions > 0);
        // Every slot still reloads to identical payload.
        for (s, orig) in slots.iter().zip(col.segments()) {
            assert_eq!(s.enc(), orig.enc());
        }
        store.set_budget(u64::MAX);
    }

    #[test]
    fn pinned_and_fresh_slots_survive_pressure() {
        let _g = budget_guard();
        let store = segment_cache();
        let col = column(4096, 256);
        let pinned: Vec<SegSlot> = col
            .segments()
            .iter()
            .map(|s| slot_on_bytes(&s.enc(), true))
            .collect();
        store.set_budget(1);
        for s in &pinned {
            let _ = s.enc();
        }
        assert!(
            pinned.iter().all(|s| s.is_resident()),
            "pinned slots are never evicted"
        );
        // Fresh slots (no disk location) are untouchable too.
        let fresh = &col.segments()[0];
        store.set_budget(1);
        assert!(fresh.is_resident());
        store.set_budget(u64::MAX);
    }

    #[test]
    fn adopt_makes_a_fresh_slot_evictable() {
        let _g = budget_guard();
        let store = segment_cache();
        let col = column(512, 256);
        let slot = col.segments()[0].clone();
        let enc = slot.enc();
        let mut raw = Vec::new();
        encode_payload(&enc, &mut raw);
        let len = raw.len() as u64;
        let loc = DiskLoc {
            source: Arc::new(PayloadSource::Bytes(Bytes::from(raw))),
            offset: 0,
            len,
        };
        assert!(slot.attach_disk(loc.clone()), "first save attaches");
        store.adopt(&slot);
        assert!(!slot.attach_disk(loc), "second save is a no-op");
        store.set_budget(0);
        store.maybe_evict();
        assert!(!slot.is_resident(), "adopted slot pages out under pressure");
        assert_eq!(slot.enc(), enc, "and reloads from its new location");
        store.set_budget(u64::MAX);
    }

    #[test]
    fn out_of_bounds_read_is_an_error_not_a_panic() {
        let src = PayloadSource::Bytes(Bytes::from(vec![1u8, 2, 3]));
        assert!(src.read_at(2, 5).is_err());
        assert!(src.read_at(u64::MAX, 1).is_err());
        assert_eq!(src.read_at(1, 2).unwrap(), vec![2, 3]);
    }
}
