//! Table schemas: named, typed columns plus an optional candidate key.

use crate::error::StorageError;
use crate::value::ValueType;

/// Definition of a single column.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name (unique within a schema, case-sensitive).
    pub name: String,
    /// Column type.
    pub ty: ValueType,
}

impl ColumnDef {
    /// Creates a column definition.
    pub fn new(name: impl Into<String>, ty: ValueType) -> Self {
        ColumnDef {
            name: name.into(),
            ty,
        }
    }
}

/// A table schema: ordered columns and the indices of the (optional)
/// candidate key attributes.
///
/// The key drives the CODS evolution operators: decomposition requires the
/// common attributes of the outputs to contain a key of one side, and
/// key–foreign-key mergence requires the join attributes to be the key of
/// one input (Sections 2.4–2.5 of the paper).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<ColumnDef>,
    key: Vec<usize>,
}

impl Schema {
    /// Builds a schema without a key.
    pub fn new(columns: Vec<ColumnDef>) -> Result<Self, StorageError> {
        Self::with_key(columns, Vec::new())
    }

    /// Builds a schema whose key is the given column indices.
    pub fn with_key(columns: Vec<ColumnDef>, key: Vec<usize>) -> Result<Self, StorageError> {
        if columns.is_empty() {
            return Err(StorageError::InvalidSchema("schema has no columns".into()));
        }
        for (i, c) in columns.iter().enumerate() {
            if c.name.is_empty() {
                return Err(StorageError::InvalidSchema("empty column name".into()));
            }
            if columns[..i].iter().any(|d| d.name == c.name) {
                return Err(StorageError::InvalidSchema(format!(
                    "duplicate column name {:?}",
                    c.name
                )));
            }
        }
        for &k in &key {
            if k >= columns.len() {
                return Err(StorageError::InvalidSchema(format!(
                    "key index {k} out of range ({} columns)",
                    columns.len()
                )));
            }
        }
        Ok(Schema { columns, key })
    }

    /// Convenience constructor from `(name, type)` pairs and key names.
    pub fn build(cols: &[(&str, ValueType)], key_names: &[&str]) -> Result<Self, StorageError> {
        let columns: Vec<ColumnDef> = cols.iter().map(|&(n, t)| ColumnDef::new(n, t)).collect();
        let mut key = Vec::with_capacity(key_names.len());
        for &k in key_names {
            let idx = columns
                .iter()
                .position(|c| c.name == k)
                .ok_or_else(|| StorageError::UnknownColumn(k.to_string()))?;
            key.push(idx);
        }
        Self::with_key(columns, key)
    }

    /// The ordered column definitions.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Indices of the key attributes (empty if no key is declared).
    pub fn key(&self) -> &[usize] {
        &self.key
    }

    /// Names of the key attributes.
    pub fn key_names(&self) -> Vec<&str> {
        self.key
            .iter()
            .map(|&i| self.columns[i].name.as_str())
            .collect()
    }

    /// Returns `true` if the named column belongs to the key.
    pub fn is_key_column(&self, name: &str) -> bool {
        self.key.iter().any(|&i| self.columns[i].name == name)
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Result<usize, StorageError> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| StorageError::UnknownColumn(name.to_string()))
    }

    /// The definition of a column by name.
    pub fn column(&self, name: &str) -> Result<&ColumnDef, StorageError> {
        Ok(&self.columns[self.index_of(name)?])
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// Returns `true` if `name` is one of the columns.
    pub fn contains(&self, name: &str) -> bool {
        self.columns.iter().any(|c| c.name == name)
    }

    /// Projection: a new schema with the named columns (in the given order)
    /// and `key_names` as its key.
    pub fn project(&self, names: &[&str], key_names: &[&str]) -> Result<Schema, StorageError> {
        let mut columns = Vec::with_capacity(names.len());
        for &n in names {
            columns.push(self.column(n)?.clone());
        }
        let mut key = Vec::with_capacity(key_names.len());
        for &k in key_names {
            let idx = names
                .iter()
                .position(|&n| n == k)
                .ok_or_else(|| StorageError::UnknownColumn(k.to_string()))?;
            key.push(idx);
        }
        Schema::with_key(columns, key)
    }

    /// Returns `true` if the two schemas have identical column names and
    /// types in the same order (keys may differ) — the compatibility test for
    /// UNION TABLES.
    pub fn union_compatible(&self, other: &Schema) -> bool {
        self.columns == other.columns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn employee_schema() -> Schema {
        Schema::build(
            &[
                ("employee", ValueType::Str),
                ("skill", ValueType::Str),
                ("address", ValueType::Str),
            ],
            &[],
        )
        .unwrap()
    }

    #[test]
    fn build_and_lookup() {
        let s = employee_schema();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.index_of("skill").unwrap(), 1);
        assert!(s.contains("address"));
        assert!(!s.contains("missing"));
        assert!(s.index_of("missing").is_err());
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::build(&[("a", ValueType::Int), ("a", ValueType::Int)], &[]);
        assert!(matches!(err, Err(StorageError::InvalidSchema(_))));
    }

    #[test]
    fn empty_schema_rejected() {
        assert!(Schema::new(vec![]).is_err());
    }

    #[test]
    fn key_handling() {
        let s =
            Schema::build(&[("id", ValueType::Int), ("name", ValueType::Str)], &["id"]).unwrap();
        assert_eq!(s.key(), &[0]);
        assert_eq!(s.key_names(), vec!["id"]);
        assert!(s.is_key_column("id"));
        assert!(!s.is_key_column("name"));
    }

    #[test]
    fn bad_key_rejected() {
        assert!(Schema::build(&[("a", ValueType::Int)], &["b"]).is_err());
        assert!(Schema::with_key(vec![ColumnDef::new("a", ValueType::Int)], vec![5]).is_err());
    }

    #[test]
    fn projection() {
        let s = employee_schema();
        let p = s.project(&["employee", "address"], &["employee"]).unwrap();
        assert_eq!(p.arity(), 2);
        assert_eq!(p.names(), vec!["employee", "address"]);
        assert_eq!(p.key(), &[0]);
        assert!(s.project(&["nope"], &[]).is_err());
        assert!(s.project(&["employee"], &["address"]).is_err());
    }

    #[test]
    fn union_compatibility() {
        let a = employee_schema();
        let b = employee_schema();
        assert!(a.union_compatible(&b));
        let c = Schema::build(&[("employee", ValueType::Str)], &[]).unwrap();
        assert!(!a.union_compatible(&c));
    }
}
