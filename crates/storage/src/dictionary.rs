//! Per-column dictionaries mapping values to dense integer ids.
//!
//! A bitmap-encoded column is a dictionary plus one bitmap per id (the `v × r`
//! matrix of Section 2.2 of the paper). Ids are assigned in first-appearance
//! order; evolution operators work on ids and only touch the `Value`s when a
//! dictionary itself must be rewritten (never for reused columns).

use crate::value::Value;
use std::collections::HashMap;

/// Interning dictionary: dense `u32` ids for distinct [`Value`]s.
#[derive(Clone, Debug, Default)]
pub struct Dictionary {
    values: Vec<Value>,
    ids: HashMap<Value, u32>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` when no values are interned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Interns `v`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, v: Value) -> u32 {
        if let Some(&id) = self.ids.get(&v) {
            return id;
        }
        let id = self.values.len() as u32;
        self.values.push(v.clone());
        self.ids.insert(v, id);
        id
    }

    /// Looks up the id of `v` without interning.
    pub fn id_of(&self, v: &Value) -> Option<u32> {
        self.ids.get(v).copied()
    }

    /// The value for `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn value(&self, id: u32) -> &Value {
        &self.values[id as usize]
    }

    /// All values in id order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Iterates `(id, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &Value)> {
        self.values.iter().enumerate().map(|(i, v)| (i as u32, v))
    }

    /// Builds a dictionary from values in id order (values must be distinct).
    pub fn from_values(values: Vec<Value>) -> Result<Self, String> {
        let mut d = Dictionary::new();
        for v in values {
            let before = d.len();
            d.intern(v);
            if d.len() == before {
                return Err("duplicate value in dictionary".into());
            }
        }
        Ok(d)
    }

    /// Keeps only the ids for which `keep(id)` is true, producing the
    /// compacted dictionary and the old-id → new-id mapping (`None` for
    /// dropped ids). Used after bitmap filtering drops values that no longer
    /// occur.
    pub fn compact(&self, mut keep: impl FnMut(u32) -> bool) -> (Dictionary, Vec<Option<u32>>) {
        let mut out = Dictionary::new();
        let mut mapping = Vec::with_capacity(self.values.len());
        for (id, v) in self.iter() {
            if keep(id) {
                mapping.push(Some(out.intern(v.clone())));
            } else {
                mapping.push(None);
            }
        }
        (out, mapping)
    }

    /// Merges `other` into a copy of `self`, returning the merged dictionary
    /// and the mapping from `other`'s ids to merged ids. Used by UNION TABLES.
    pub fn merge(&self, other: &Dictionary) -> (Dictionary, Vec<u32>) {
        let mut merged = self.clone();
        let mapping = other
            .values
            .iter()
            .map(|v| merged.intern(v.clone()))
            .collect();
        (merged, mapping)
    }

    /// Approximate heap footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        let value_bytes: usize = self
            .values
            .iter()
            .map(|v| match v {
                Value::Str(s) => std::mem::size_of::<Value>() + s.len(),
                _ => std::mem::size_of::<Value>(),
            })
            .sum();
        // Values are stored twice (vec + hash map key) plus the id.
        value_bytes * 2 + self.values.len() * 4
    }
}

impl PartialEq for Dictionary {
    fn eq(&self, other: &Self) -> bool {
        self.values == other.values
    }
}
impl Eq for Dictionary {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_assigns_dense_ids() {
        let mut d = Dictionary::new();
        assert_eq!(d.intern(Value::str("a")), 0);
        assert_eq!(d.intern(Value::str("b")), 1);
        assert_eq!(d.intern(Value::str("a")), 0);
        assert_eq!(d.len(), 2);
        assert_eq!(d.value(1), &Value::str("b"));
        assert_eq!(d.id_of(&Value::str("b")), Some(1));
        assert_eq!(d.id_of(&Value::str("zzz")), None);
    }

    #[test]
    fn from_values_rejects_duplicates() {
        assert!(Dictionary::from_values(vec![Value::int(1), Value::int(1)]).is_err());
        let d = Dictionary::from_values(vec![Value::int(1), Value::int(2)]).unwrap();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn compaction() {
        let mut d = Dictionary::new();
        for i in 0..5 {
            d.intern(Value::int(i));
        }
        let (c, map) = d.compact(|id| id % 2 == 0);
        assert_eq!(c.len(), 3);
        assert_eq!(map, vec![Some(0), None, Some(1), None, Some(2)]);
        assert_eq!(c.value(1), &Value::int(2));
    }

    #[test]
    fn merge_maps_other_ids() {
        let mut a = Dictionary::new();
        a.intern(Value::str("x"));
        a.intern(Value::str("y"));
        let mut b = Dictionary::new();
        b.intern(Value::str("y"));
        b.intern(Value::str("z"));
        let (merged, map) = a.merge(&b);
        assert_eq!(merged.len(), 3);
        assert_eq!(map, vec![1, 2]); // y → 1 (existing), z → 2 (new)
    }

    #[test]
    fn equality_ignores_hash_map_internals() {
        let mut a = Dictionary::new();
        a.intern(Value::int(1));
        let b = Dictionary::from_values(vec![Value::int(1)]).unwrap();
        assert_eq!(a, b);
    }
}
