//! Per-column dictionaries mapping values to dense integer ids.
//!
//! A bitmap-encoded column is a dictionary plus one bitmap per id (the `v × r`
//! matrix of Section 2.2 of the paper). Ids are assigned in first-appearance
//! order; evolution operators work on ids and only touch the `Value`s when a
//! dictionary itself must be rewritten (never for reused columns).

use crate::value::Value;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// The lazily built *value-ordered view* of a [`Dictionary`]: ids are
/// assigned in first-appearance order, so id order says nothing about value
/// order — this view is the permutation that makes range reasoning over ids
/// possible. `ordered` lists the ids sorted ascending by their values;
/// `ranks` is its inverse (`ranks[id]` = position of `id`'s value in sorted
/// order). Zone maps store extreme *ids* (stable under dictionary growth)
/// and resolve them to ranks through this view at scan time.
#[derive(Debug, PartialEq, Eq)]
pub struct ValueOrder {
    ordered: Vec<u32>,
    ranks: Vec<u32>,
}

impl ValueOrder {
    fn build(values: &[Value]) -> ValueOrder {
        let mut ordered: Vec<u32> = (0..values.len() as u32).collect();
        ordered.sort_unstable_by(|&a, &b| values[a as usize].cmp(&values[b as usize]));
        let mut ranks = vec![0u32; values.len()];
        for (rank, &id) in ordered.iter().enumerate() {
            ranks[id as usize] = rank as u32;
        }
        ValueOrder { ordered, ranks }
    }

    /// Number of values covered.
    pub fn len(&self) -> usize {
        self.ordered.len()
    }

    /// Returns `true` when the dictionary was empty.
    pub fn is_empty(&self) -> bool {
        self.ordered.is_empty()
    }

    /// Ids sorted ascending by value (`ordered[rank] = id`).
    pub fn ordered(&self) -> &[u32] {
        &self.ordered
    }

    /// Value-order rank per id (`ranks[id] = rank`; inverse of
    /// [`ValueOrder::ordered`]).
    pub fn ranks(&self) -> &[u32] {
        &self.ranks
    }

    /// The rank of one id.
    #[inline]
    pub fn rank_of(&self, id: u32) -> u32 {
        self.ranks[id as usize]
    }
}

/// Interning dictionary: dense `u32` ids for distinct [`Value`]s.
#[derive(Debug, Default)]
pub struct Dictionary {
    values: Vec<Value>,
    ids: HashMap<Value, u32>,
    /// Lazily built value-order permutation; invalidated whenever a new
    /// value is interned. `Arc`-shared so cloning a dictionary keeps the
    /// already-built view for free.
    order: OnceLock<Arc<ValueOrder>>,
}

impl Clone for Dictionary {
    fn clone(&self) -> Dictionary {
        let order = OnceLock::new();
        if let Some(o) = self.order.get() {
            let _ = order.set(Arc::clone(o));
        }
        Dictionary {
            values: self.values.clone(),
            ids: self.ids.clone(),
            order,
        }
    }
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` when no values are interned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Interns `v`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, v: Value) -> u32 {
        if let Some(&id) = self.ids.get(&v) {
            return id;
        }
        let id = self.values.len() as u32;
        self.values.push(v.clone());
        self.ids.insert(v, id);
        // Growth shifts value order: drop the cached view.
        self.order = OnceLock::new();
        id
    }

    /// The value-ordered view of this dictionary, built on first use and
    /// cached until the next growth (O(v log v) to build, O(1) after).
    pub fn value_order(&self) -> &ValueOrder {
        self.order
            .get_or_init(|| Arc::new(ValueOrder::build(&self.values)))
    }

    /// Looks up the id of `v` without interning.
    pub fn id_of(&self, v: &Value) -> Option<u32> {
        self.ids.get(v).copied()
    }

    /// The value for `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn value(&self, id: u32) -> &Value {
        &self.values[id as usize]
    }

    /// All values in id order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Iterates `(id, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &Value)> {
        self.values.iter().enumerate().map(|(i, v)| (i as u32, v))
    }

    /// Builds a dictionary from values in id order (values must be distinct).
    pub fn from_values(values: Vec<Value>) -> Result<Self, String> {
        let mut d = Dictionary::new();
        for v in values {
            let before = d.len();
            d.intern(v);
            if d.len() == before {
                return Err("duplicate value in dictionary".into());
            }
        }
        Ok(d)
    }

    /// Keeps only the ids for which `keep(id)` is true, producing the
    /// compacted dictionary and the old-id → new-id mapping (`None` for
    /// dropped ids). Used after bitmap filtering drops values that no longer
    /// occur.
    pub fn compact(&self, mut keep: impl FnMut(u32) -> bool) -> (Dictionary, Vec<Option<u32>>) {
        let mut out = Dictionary::new();
        let mut mapping = Vec::with_capacity(self.values.len());
        for (id, v) in self.iter() {
            if keep(id) {
                mapping.push(Some(out.intern(v.clone())));
            } else {
                mapping.push(None);
            }
        }
        (out, mapping)
    }

    /// Merges `other` into a copy of `self`, returning the merged dictionary
    /// and the mapping from `other`'s ids to merged ids. Used by UNION TABLES.
    pub fn merge(&self, other: &Dictionary) -> (Dictionary, Vec<u32>) {
        let mut merged = self.clone();
        let mapping = other
            .values
            .iter()
            .map(|v| merged.intern(v.clone()))
            .collect();
        (merged, mapping)
    }

    /// Maps every id in this dictionary to the id of the same value in
    /// `target` (`None` when `target` lacks the value). This is the hash
    /// join's dictionary-reconciliation step: computed once per join-key
    /// column pair, after which probing works entirely in the build side's
    /// id space with no value comparisons on the per-row path.
    pub fn remap_to(&self, target: &Dictionary) -> Vec<Option<u32>> {
        self.values.iter().map(|v| target.id_of(v)).collect()
    }

    /// Approximate heap footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        let value_bytes: usize = self
            .values
            .iter()
            .map(|v| match v {
                Value::Str(s) => std::mem::size_of::<Value>() + s.len(),
                _ => std::mem::size_of::<Value>(),
            })
            .sum();
        // Values are stored twice (vec + hash map key) plus the id.
        value_bytes * 2 + self.values.len() * 4
    }
}

impl PartialEq for Dictionary {
    fn eq(&self, other: &Self) -> bool {
        self.values == other.values
    }
}
impl Eq for Dictionary {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_assigns_dense_ids() {
        let mut d = Dictionary::new();
        assert_eq!(d.intern(Value::str("a")), 0);
        assert_eq!(d.intern(Value::str("b")), 1);
        assert_eq!(d.intern(Value::str("a")), 0);
        assert_eq!(d.len(), 2);
        assert_eq!(d.value(1), &Value::str("b"));
        assert_eq!(d.id_of(&Value::str("b")), Some(1));
        assert_eq!(d.id_of(&Value::str("zzz")), None);
    }

    #[test]
    fn from_values_rejects_duplicates() {
        assert!(Dictionary::from_values(vec![Value::int(1), Value::int(1)]).is_err());
        let d = Dictionary::from_values(vec![Value::int(1), Value::int(2)]).unwrap();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn compaction() {
        let mut d = Dictionary::new();
        for i in 0..5 {
            d.intern(Value::int(i));
        }
        let (c, map) = d.compact(|id| id % 2 == 0);
        assert_eq!(c.len(), 3);
        assert_eq!(map, vec![Some(0), None, Some(1), None, Some(2)]);
        assert_eq!(c.value(1), &Value::int(2));
    }

    #[test]
    fn merge_maps_other_ids() {
        let mut a = Dictionary::new();
        a.intern(Value::str("x"));
        a.intern(Value::str("y"));
        let mut b = Dictionary::new();
        b.intern(Value::str("y"));
        b.intern(Value::str("z"));
        let (merged, map) = a.merge(&b);
        assert_eq!(merged.len(), 3);
        assert_eq!(map, vec![1, 2]); // y → 1 (existing), z → 2 (new)
    }

    #[test]
    fn remap_to_reconciles_id_spaces() {
        let mut a = Dictionary::new();
        a.intern(Value::str("x"));
        a.intern(Value::str("y"));
        a.intern(Value::Null);
        let mut b = Dictionary::new();
        b.intern(Value::str("y"));
        b.intern(Value::Null);
        b.intern(Value::str("w"));
        assert_eq!(a.remap_to(&b), vec![None, Some(0), Some(1)]);
        assert_eq!(b.remap_to(&a), vec![Some(1), Some(2), None]);
        assert_eq!(Dictionary::new().remap_to(&a), Vec::<Option<u32>>::new());
    }

    #[test]
    fn value_order_ranks_by_value_not_id() {
        let mut d = Dictionary::new();
        // First-appearance ids: 9 → 0, 3 → 1, 7 → 2.
        d.intern(Value::int(9));
        d.intern(Value::int(3));
        d.intern(Value::int(7));
        let o = d.value_order();
        assert_eq!(o.ordered(), &[1, 2, 0]); // 3 < 7 < 9
        assert_eq!(o.ranks(), &[2, 0, 1]);
        assert_eq!(o.rank_of(0), 2);
    }

    #[test]
    fn value_order_invalidated_on_growth() {
        let mut d = Dictionary::new();
        d.intern(Value::int(5));
        assert_eq!(d.value_order().ordered(), &[0]);
        d.intern(Value::int(1)); // sorts before 5
        assert_eq!(d.value_order().ordered(), &[1, 0]);
        // Re-interning an existing value keeps the cache valid.
        d.intern(Value::int(5));
        assert_eq!(d.value_order().ordered(), &[1, 0]);
        // Clones share the built view.
        let c = d.clone();
        assert_eq!(c.value_order().ranks(), d.value_order().ranks());
    }

    #[test]
    fn null_sorts_first_in_value_order() {
        let mut d = Dictionary::new();
        d.intern(Value::int(2));
        d.intern(Value::Null);
        assert_eq!(d.value_order().ordered(), &[1, 0]);
    }

    #[test]
    fn equality_ignores_hash_map_internals() {
        let mut a = Dictionary::new();
        a.intern(Value::int(1));
        let b = Dictionary::from_values(vec![Value::int(1)]).unwrap();
        assert_eq!(a, b);
    }
}
